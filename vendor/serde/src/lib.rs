//! Vendored stand-in for `serde`, built for offline use.
//!
//! The real serde could not be fetched in this build environment, so this
//! crate provides the same surface the workspace actually uses: the
//! `Serialize`/`Deserialize` traits (value-model based rather than
//! visitor-based) and the derive macros re-exported from `serde_derive`.
//! `serde_json` in `vendor/` renders and parses the [`Value`] model.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Self-describing intermediate representation every serializable type
/// lowers to. Mirrors the JSON data model, with integers kept exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Null / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (exact; not round-tripped through f64).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to u64, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// Numeric contents widened to i64, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Numeric contents as f64 (integers convert losslessly when possible).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            _ => None,
        }
    }
}

/// Looks up a field of a serialized struct by name.
#[must_use]
pub fn field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that lower themselves to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the intermediate value model.
    fn to_value(&self) -> Value;
}

/// Types that reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the intermediate value model.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn mismatch<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .map_or_else(|| mismatch(stringify!($t), v), Ok)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = i64::from(*self);
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .map_or_else(|| mismatch(stringify!($t), v), Ok)
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
            .and_then(|u| usize::try_from(u).ok())
            .map_or_else(|| mismatch("usize", v), Ok)
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_i64()
            .and_then(|i| isize::try_from(i).ok())
            .map_or_else(|| mismatch("isize", v), Ok)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => mismatch("bool", v),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = f64::from(*self);
                // Like serde_json: non-finite numbers have no JSON form.
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_f64() {
                    Some(f) => Ok(f as $t),
                    None => mismatch(stringify!($t), v),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map_or_else(|| mismatch("string", v), |s| Ok(s.to_string()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_str().map(|s| s.chars().collect::<Vec<_>>()) {
            Some(chars) if chars.len() == 1 => Ok(chars[0]),
            _ => mismatch("char", v),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some(items) => items.iter().map(T::from_value).collect(),
            None => mismatch("sequence", v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v.as_seq() {
                    Some(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => mismatch("tuple sequence", v),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_map() {
            Some(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            None => mismatch("map", v),
        }
    }
}
