//! Vendored stand-in for `parking_lot`, built for offline use.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly, recovering the data if a previous
//! holder panicked (parking_lot has no poisoning at all; recovering is the
//! closest std equivalent).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the data stays reachable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
