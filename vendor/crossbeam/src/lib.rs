//! Vendored stand-in for `crossbeam`'s scoped threads, built for offline
//! use and backed by `std::thread::scope` (stable since Rust 1.63).
//!
//! Matches the crossbeam 0.8 call shape used in this workspace:
//! `crossbeam::scope(|s| { s.spawn(move |_| ...); ... }).expect(...)`.
//! One behavioral difference: a panicking unjoined child propagates the
//! panic (std semantics) instead of surfacing it as `Err`; joined children
//! report panics through `join()` exactly like crossbeam.

/// Handle for spawning threads that may borrow from the enclosing scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result, or `Err` if it
    /// panicked.
    ///
    /// # Errors
    ///
    /// Returns the panic payload when the spawned closure panicked.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope; the closure receives the scope so
    /// it can spawn further threads (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Creates a scope in which threads borrowing local data can be spawned;
/// all are joined before this returns.
///
/// # Errors
///
/// Never returns `Err` in this implementation (panics propagate instead);
/// the `Result` mirrors crossbeam's signature so call sites can `expect`.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, mirroring the upstream layout.
pub mod thread {
    pub use crate::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_panic_is_err() {
        crate::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .expect("scope");
    }
}
