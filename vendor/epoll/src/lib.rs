//! Minimal level-triggered readiness polling shim.
//!
//! Vendored so the workspace stays dependency-free, in the spirit of
//! `vendor/mmap`: on Linux a [`Poller`] wraps the raw
//! `epoll_create1(2)`/`epoll_ctl(2)`/`epoll_wait(2)` syscalls through a
//! tiny `extern "C"` surface; on other unix targets the same API is backed
//! by `poll(2)` over an internally tracked registration table. Both
//! backends are **level-triggered**: a ready fd keeps reporting until it is
//! drained, so callers read/write until `WouldBlock` without fear of lost
//! wakeups.
//!
//! The shim deliberately exposes only what an event-loop server needs:
//! register/re-register/deregister an fd under a `u64` token, and wait with
//! an optional timeout. No ownership of the fds is taken — callers keep
//! their `TcpStream`/`UnixStream` values and must deregister before close.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What readiness a registration asks to be told about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the common state of an idle connection.
    pub const READABLE: Self = Self {
        readable: true,
        writable: false,
    };
    /// Readable and writable — a connection with a backlogged write buffer.
    pub const BOTH: Self = Self {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or the peer closed its write side).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The fd is in an error/hangup state (`EPOLLERR`/`EPOLLHUP`); the
    /// connection should be torn down after draining.
    pub error: bool,
}

/// Converts an optional wait budget into poll/epoll milliseconds:
/// `None` blocks forever, zero returns immediately, and sub-millisecond
/// remainders round *up* so a nearly-due deadline never busy-loops.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if ms == 0 && t.as_nanos() > 0 { 1 } else { ms };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Thin `extern "C"` surface over the libc already linked into every
    //! Rust binary — no external crate needed.
    #![allow(non_camel_case_types)]

    pub type c_int = i32;

    pub const EPOLL_CLOEXEC: c_int = 0x8_0000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of the kernel's `struct epoll_event`. The Linux UAPI packs
    /// it on x86-64 (`__EPOLL_PACKED`) so the 64-bit data field sits at
    /// offset 4; on every other architecture it is naturally aligned.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Level-triggered readiness poller over `epoll(7)`.
#[cfg(target_os = "linux")]
pub struct Poller {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Most events returned by one [`wait`](Self::wait) call.
    pub const MAX_EVENTS: usize = 256;

    /// Creates the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 has no memory preconditions.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { epfd })
    }

    fn ctl(&self, op: sys::c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut events = sys::EPOLLERR | sys::EPOLLHUP;
        if interest.readable {
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::epoll_event {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes an existing registration's token/interest.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stops watching `fd`. Call before closing the fd; a closed fd is
    /// removed by the kernel anyway, but an explicit delete keeps the
    /// table exact when fds are reused.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::epoll_event { events: 0, data: 0 };
        // SAFETY: a non-null event pointer keeps pre-2.6.9 kernels happy.
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits for readiness, appending into `events` (cleared first). A
    /// `None` timeout blocks indefinitely; `EINTR` returns an empty set
    /// rather than an error so callers simply loop.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let mut raw = [sys::epoll_event { events: 0, data: 0 }; Self::MAX_EVENTS];
        // SAFETY: `raw` is a valid buffer of MAX_EVENTS entries.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                raw.as_mut_ptr(),
                Self::MAX_EVENTS as sys::c_int,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &raw[..n as usize] {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd came from a successful epoll_create1 and is closed
        // exactly once.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

// SAFETY: the epoll fd is just an integer handle; epoll_ctl/epoll_wait are
// thread-safe per POSIX.
#[cfg(target_os = "linux")]
unsafe impl Send for Poller {}
#[cfg(target_os = "linux")]
unsafe impl Sync for Poller {}

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback_sys {
    #![allow(non_camel_case_types)]

    pub type c_int = i32;
    pub type c_short = i16;
    pub type nfds_t = usize;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    }
}

/// `poll(2)`-backed fallback with the same API, for unix targets without
/// epoll (macOS and the BSDs). The registration table lives in userspace;
/// every wait rebuilds the pollfd array, which is O(fds) but correct.
#[cfg(all(unix, not(target_os = "linux")))]
pub struct Poller {
    registry: std::sync::Mutex<std::collections::BTreeMap<RawFd, (u64, Interest)>>,
}

#[cfg(all(unix, not(target_os = "linux")))]
impl Poller {
    /// Most events returned by one [`wait`](Self::wait) call.
    pub const MAX_EVENTS: usize = 256;

    /// Creates an empty poller.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            registry: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        })
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.registry
            .lock()
            .expect("poller registry")
            .insert(fd, (token, interest));
        Ok(())
    }

    /// Changes an existing registration's token/interest.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.register(fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.registry.lock().expect("poller registry").remove(&fd);
        Ok(())
    }

    /// Waits for readiness, appending into `events` (cleared first).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let snapshot: Vec<(RawFd, u64, Interest)> = self
            .registry
            .lock()
            .expect("poller registry")
            .iter()
            .map(|(&fd, &(token, interest))| (fd, token, interest))
            .collect();
        let mut fds: Vec<fallback_sys::pollfd> = snapshot
            .iter()
            .map(|&(fd, _, interest)| fallback_sys::pollfd {
                fd,
                events: if interest.readable {
                    fallback_sys::POLLIN
                } else {
                    0
                } | if interest.writable {
                    fallback_sys::POLLOUT
                } else {
                    0
                },
                revents: 0,
            })
            .collect();
        // SAFETY: `fds` is a valid array of pollfd for the call duration.
        let n = unsafe { fallback_sys::poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (pfd, &(_, token, _)) in fds.iter().zip(&snapshot) {
            if pfd.revents == 0 || events.len() == Self::MAX_EVENTS {
                continue;
            }
            events.push(Event {
                token,
                readable: pfd.revents & (fallback_sys::POLLIN | fallback_sys::POLLHUP) != 0,
                writable: pfd.revents & fallback_sys::POLLOUT != 0,
                error: pfd.revents & (fallback_sys::POLLERR | fallback_sys::POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_event_fires_and_clears() {
        let (mut a, mut b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller
            .register(a.as_raw_fd(), 7, Interest::READABLE)
            .expect("register");
        let mut events = Vec::new();
        // Nothing to read yet: a zero timeout returns empty.
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert!(events.is_empty());
        b.write_all(b"x").expect("write");
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Level-triggered: still readable until drained.
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert_eq!(events.len(), 1);
        let mut buf = [0u8; 8];
        let n = a.read(&mut buf).expect("read");
        assert_eq!(n, 1);
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn writable_interest_toggles_with_reregister() {
        let (a, _b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller
            .register(a.as_raw_fd(), 1, Interest::READABLE)
            .expect("register");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert!(events.iter().all(|e| !e.writable));
        // An idle socket with write interest reports writable immediately.
        poller
            .reregister(a.as_raw_fd(), 1, Interest::BOTH)
            .expect("reregister");
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.writable && e.token == 1));
        poller.deregister(a.as_raw_fd()).expect("deregister");
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_reports_readable_for_eof_detection() {
        let (a, b) = UnixStream::pair().expect("pair");
        a.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        poller
            .register(a.as_raw_fd(), 3, Interest::READABLE)
            .expect("register");
        drop(b);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        // The peer closing must surface as readable so the server reads
        // the clean EOF instead of waiting forever.
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
    }

    #[test]
    fn timeout_rounds_up_not_down() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_nanos(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_micros(999))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(7))), 7);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
