//! Vendored stand-in for `proptest`, built for offline use.
//!
//! Implements the subset this workspace relies on: the [`proptest!`] macro
//! (block form with `#![proptest_config(...)]` and inline closure form),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `any::<T>()`, range
//! strategies, tuple strategies, `prop_map`, and
//! `collection::{vec, btree_map}`. Cases are generated from a seed hashed
//! deterministically from the test's module path and name, so failures
//! reproduce run-over-run. No shrinking: a failing case reports the
//! assertion message and case number.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f`; resamples on rejection.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample_value(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range_int(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range_int(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    self.start() + (self.end() - self.start()) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (S0: 0)
        (S0: 0, S1: 1)
        (S0: 0, S1: 1, S2: 2)
        (S0: 0, S1: 1, S2: 2, S3: 3)
        (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4)
        (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5)
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The canonical full-range strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Full bit-pattern coverage: includes NaN, infinities, subnormals.
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )*};
    }
    impl_arbitrary_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

/// Collection strategies: `vec` and `btree_map`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications (a count or a range of counts).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range_int(self.min as i128, self.max_inclusive as i128) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size in the given range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generates maps with sizes in the given range (smaller when the key
    /// space cannot supply enough distinct keys).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Bounded retries: duplicate keys may make the target unreachable.
            let mut attempts = 0;
            while map.len() < target && attempts < target * 20 + 50 {
                attempts += 1;
                map.insert(self.key.sample_value(rng), self.value.sample_value(rng));
            }
            map
        }
    }
}

/// Test configuration, RNG, and case outcomes.
pub mod test_runner {
    /// Runtime knobs for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on generate-reject attempts (via `prop_assume!`).
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Non-panicking case outcomes used by the `prop_*` macros.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip this case, draw another.
        Reject(String),
        /// `prop_assert!` failed: the property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing outcome with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// A rejected (assume-failed) outcome.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Deterministic per-test generator (xoshiro via the vendored `rand`).
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeds from a stable FNV-1a hash of the test's full name.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            use rand::SeedableRng;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[low, high_inclusive]` (i128 to cover all
        /// primitive widths).
        pub fn gen_range_int(&mut self, low: i128, high_inclusive: i128) -> i128 {
            assert!(low <= high_inclusive, "empty integer range");
            let span = (high_inclusive - low + 1) as u128;
            if span == 0 {
                return self.next_u64() as i128;
            }
            let offset = (u128::from(self.next_u64()).wrapping_mul(span & u128::from(u64::MAX))
                >> 64) as i128;
            low + offset
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "assertion failed: `{:?} == {:?}`",
            __lhs,
            __rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs == *__rhs,
            "assertion failed: `{:?} == {:?}`: {}",
            __lhs,
            __rhs,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__lhs, __rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__lhs != *__rhs,
            "assertion failed: `{:?} != {:?}`",
            __lhs,
            __rhs
        );
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run_cases {
    ($cfg:expr, $name:expr, ($($pat:pat),+), ($($strat:expr),+), $body:block) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::TestRng::for_test($name);
        let mut __executed: u32 = 0;
        let mut __rejected: u32 = 0;
        while __executed < __config.cases {
            let ($($pat,)+) = ($($crate::strategy::Strategy::sample_value(&($strat), &mut __rng),)+);
            let __case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            };
            match __case() {
                ::core::result::Result::Ok(()) => __executed += 1,
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                    __rejected += 1;
                    if __rejected > __config.max_global_rejects {
                        panic!(
                            "proptest `{}`: too many prop_assume rejections (last: {})",
                            $name, __why
                        );
                    }
                }
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                    panic!(
                        "proptest `{}` failed at case #{}: {}",
                        $name, __executed, __msg
                    );
                }
            }
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_block {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $test_name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $test_name() {
            $crate::__proptest_run_cases!(
                $cfg,
                concat!(module_path!(), "::", stringify!($test_name)),
                ($($pat),+),
                ($($strat),+),
                $body
            );
        }
        $crate::__proptest_block!{ cfg = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_block!{ cfg = ($cfg); $($rest)* }
    };
    (|($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {
        $crate::__proptest_run_cases!(
            $crate::test_runner::ProptestConfig::default(),
            concat!(module_path!(), "::<closure>"),
            ($($pat),+),
            ($($strat),+),
            $body
        )
    };
    ($($rest:tt)*) => {
        $crate::__proptest_block!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}
