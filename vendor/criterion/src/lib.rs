//! Vendored stand-in for `criterion`, built for offline use.
//!
//! Runs each benchmark closure for a fixed number of timed samples and
//! prints mean, median, and standard deviation of wall-clock time per
//! iteration, plus the iteration count behind the numbers — and, when a
//! group declares `Throughput`, the derived elements- or bytes-per-second
//! rate. No plotting
//! or baselines — just enough to keep `cargo bench` useful and the
//! bench sources compiling unchanged.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Declared throughput for a benchmark: when set on a group, each report
/// line additionally prints the processing rate (elements or bytes per
/// second) derived from the mean time per iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall-clock durations and the iteration count behind
    /// each one, recorded by `iter`.
    result: Option<(Vec<Duration>, u64)>,
}

impl Bencher {
    /// Times `routine`, running enough iterations for a stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly a millisecond, bounded to keep total runtime small.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut durations = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            durations.push(start.elapsed());
        }
        self.result = Some((durations, iters_per_sample));
    }
}

/// Per-iteration summary statistics over a run's timed samples.
#[derive(Clone, Copy, Debug, PartialEq)]
struct SampleStats {
    mean_ns: f64,
    median_ns: f64,
    std_dev_ns: f64,
    total_iters: u64,
}

impl SampleStats {
    /// Reduces per-sample durations (each covering `iters_per_sample`
    /// iterations) to per-iteration mean, median, and standard deviation.
    fn from_samples(durations: &[Duration], iters_per_sample: u64) -> Option<Self> {
        if durations.is_empty() || iters_per_sample == 0 {
            return None;
        }
        let mut per_iter: Vec<f64> = durations
            .iter()
            .map(|d| d.as_nanos() as f64 / iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let n = per_iter.len();
        let mean_ns = per_iter.iter().sum::<f64>() / n as f64;
        let median_ns = if n % 2 == 1 {
            per_iter[n / 2]
        } else {
            (per_iter[n / 2 - 1] + per_iter[n / 2]) / 2.0
        };
        // Sample standard deviation (n - 1); zero for a single sample.
        let std_dev_ns = if n > 1 {
            let var = per_iter.iter().map(|x| (x - mean_ns).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        Some(Self {
            mean_ns,
            median_ns,
            std_dev_ns,
            total_iters: iters_per_sample * n as u64,
        })
    }
}

/// Formats a per-second rate with a K/M/G scale prefix.
fn scaled_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Renders the throughput clause appended to a report line, from the
/// declared per-iteration work and the measured mean time per iteration.
fn throughput_clause(throughput: Option<Throughput>, mean_ns: f64) -> String {
    let Some(t) = throughput else {
        return String::new();
    };
    if mean_ns <= 0.0 {
        return String::new();
    }
    let per_sec = |count: u64| count as f64 / (mean_ns * 1e-9);
    match t {
        Throughput::Elements(n) => format!(", {} elem/s", scaled_rate(per_sec(n))),
        Throughput::Bytes(n) => format!(", {}B/s", scaled_rate(per_sec(n))),
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    let stats = b
        .result
        .as_ref()
        .and_then(|(durations, iters)| SampleStats::from_samples(durations, *iters));
    match stats {
        Some(s) => println!(
            "bench {label:<50} mean {:>12.1} ns/iter, median {:>12.1}, std dev {:>10.1} \
             ({} samples, {} iters){}",
            s.mean_ns,
            s.median_ns,
            s.std_dev_ns,
            samples,
            s.total_iters,
            throughput_clause(throughput, s.mean_ns)
        ),
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; measurement time is derived from
    /// the sample size here.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Hook called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work; subsequent benchmarks in this group
    /// report a derived rate (e.g. `12.50Melem/s`) next to the timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            |b| {
                f(b, input);
            },
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::{throughput_clause, Bencher, SampleStats, Throughput};
    use std::time::Duration;

    #[test]
    fn throughput_clause_scales_rates_and_handles_missing_declarations() {
        // 2000 elements per iteration at 1µs/iter = 2e9 elem/s.
        assert_eq!(
            throughput_clause(Some(Throughput::Elements(2000)), 1000.0),
            ", 2.00G elem/s"
        );
        // 64 bytes at 1µs/iter = 64 MB/s.
        assert_eq!(
            throughput_clause(Some(Throughput::Bytes(64)), 1000.0),
            ", 64.00MB/s"
        );
        // 5 elements at 10ms/iter = 500 elem/s (no scale prefix).
        assert_eq!(
            throughput_clause(Some(Throughput::Elements(5)), 1e7),
            ", 500.0 elem/s"
        );
        assert_eq!(throughput_clause(None, 1000.0), "");
        assert_eq!(throughput_clause(Some(Throughput::Elements(5)), 0.0), "");
    }

    #[test]
    fn stats_reduce_per_sample_durations_to_per_iteration_numbers() {
        // Three samples of 10 iterations each: 100ns, 200ns, 600ns per iter.
        let durations = [
            Duration::from_nanos(1000),
            Duration::from_nanos(2000),
            Duration::from_nanos(6000),
        ];
        let s = SampleStats::from_samples(&durations, 10).expect("stats");
        assert_eq!(s.total_iters, 30);
        assert!((s.mean_ns - 300.0).abs() < 1e-9, "{}", s.mean_ns);
        assert!((s.median_ns - 200.0).abs() < 1e-9, "{}", s.median_ns);
        // Sample std dev of {100, 200, 600} is sqrt(70000).
        assert!(
            (s.std_dev_ns - 70_000f64.sqrt()).abs() < 1e-9,
            "{}",
            s.std_dev_ns
        );
    }

    #[test]
    fn even_sample_counts_take_the_midpoint_median() {
        let durations = [
            Duration::from_nanos(100),
            Duration::from_nanos(400),
            Duration::from_nanos(200),
            Duration::from_nanos(300),
        ];
        let s = SampleStats::from_samples(&durations, 1).expect("stats");
        assert!((s.median_ns - 250.0).abs() < 1e-9, "{}", s.median_ns);
        assert_eq!(s.total_iters, 4);
    }

    #[test]
    fn degenerate_inputs_yield_no_stats_or_zero_spread() {
        assert_eq!(SampleStats::from_samples(&[], 10), None);
        assert_eq!(
            SampleStats::from_samples(&[Duration::from_nanos(5)], 0),
            None
        );
        let single = SampleStats::from_samples(&[Duration::from_nanos(500)], 5).expect("stats");
        assert_eq!(single.std_dev_ns, 0.0);
        assert!((single.mean_ns - 100.0).abs() < 1e-9);
        assert!((single.median_ns - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bencher_records_one_duration_per_sample() {
        let mut b = Bencher {
            samples: 7,
            result: None,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(5)));
        let (durations, iters_per_sample) = b.result.expect("iter ran");
        assert_eq!(durations.len(), 7);
        assert!(iters_per_sample >= 1);
    }
}
