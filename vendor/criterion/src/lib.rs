//! Vendored stand-in for `criterion`, built for offline use.
//!
//! Runs each benchmark closure for a fixed number of timed samples and
//! prints mean wall-clock time per iteration. No statistics, plotting, or
//! baselines — just enough to keep `cargo bench` useful and the bench
//! sources compiling unchanged.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Declared throughput for a benchmark (accepted, not reported).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// (total elapsed, total iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, running enough iterations for a stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly a millisecond, bounded to keep total runtime small.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            iters += iters_per_sample;
        }
        self.result = Some((total, iters));
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total.as_nanos() as f64 / iters as f64;
            println!("bench {label:<50} {per_iter:>14.1} ns/iter ({iters} iters)");
        }
        _ => println!("bench {label:<50} (no measurement)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; measurement time is derived from
    /// the sample size here.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Hook called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
