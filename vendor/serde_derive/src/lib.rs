//! Hand-rolled derive macros for the vendored `serde` facade.
//!
//! Parses the item's token stream directly (no `syn`/`quote`, which are
//! unavailable offline) and emits `impl ::serde::Serialize` /
//! `impl ::serde::Deserialize` blocks as parsed code strings. Supports
//! named-field structs and enums with unit, named-field, and tuple
//! variants — the shapes this workspace derives on. Generic types are
//! rejected with a compile-time panic. Two helper attributes are
//! recognized: `#[serde(skip)]` omits the field on serialize and
//! restores it via `Default::default()` on deserialize, and
//! `#[serde(default)]` serializes normally but falls back to
//! `Default::default()` when the field is absent on deserialize (so
//! schemas can grow fields without invalidating older files).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Returns true when the bracketed attribute body is `serde(... <word> ...)`.
fn attr_is_serde_word(body: &[TokenTree], word: &str) -> bool {
    match body {
        [TokenTree::Ident(i), TokenTree::Group(g)] if i.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == word)),
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes; reports whether any was
/// `#[serde(skip)]` / `#[serde(default)]` as `(skip, default)`.
fn eat_attrs(tokens: &[TokenTree], pos: &mut usize) -> (bool, bool) {
    let mut skip = false;
    let mut default = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let body: Vec<TokenTree> = g.stream().into_iter().collect();
        skip |= attr_is_serde_word(&body, "skip");
        default |= attr_is_serde_word(&body, "default");
        *pos += 2;
    }
    (skip, default)
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_vis(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Skips tokens until a comma at angle-bracket depth zero, consuming the
/// comma itself. Used to pass over field types and variant discriminants.
fn eat_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let (skip, default) = eat_attrs(&tokens, &mut pos);
        eat_vis(&tokens, &mut pos);
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!("serde_derive: expected field name, got {:?}", tokens[pos]);
        };
        fields.push(Field {
            name: name.to_string(),
            skip,
            default,
        });
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        eat_until_comma(&tokens, &mut pos);
    }
    fields
}

/// Counts the comma-separated types in a tuple-variant parenthesis group.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        count += 1;
        eat_until_comma(&tokens, &mut pos);
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        eat_attrs(&tokens, &mut pos);
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!("serde_derive: expected variant name, got {:?}", tokens[pos]);
        };
        let name = name.to_string();
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Swallow any `= discriminant` and the trailing comma.
        eat_until_comma(&tokens, &mut pos);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    eat_attrs(&tokens, &mut pos);
    eat_vis(&tokens, &mut pos);
    let keyword = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;
    let TokenTree::Ident(name) = &tokens[pos] else {
        panic!("serde_derive: expected type name, got {:?}", tokens[pos]);
    };
    let name = name.to_string();
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive (vendored): `{name}` must have a braced body \
             (tuple/unit structs unsupported), got {other:?}"
        ),
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n"
            );
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                let _ = writeln!(
                    out,
                    "entries.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})));"
                );
            }
            out.push_str("::serde::Value::Map(entries)\n}\n}\n");
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            );
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            out,
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let _ = write!(
                            out,
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                            binders.join(", ")
                        );
                        for f in fields {
                            let fname = &f.name;
                            let _ = writeln!(
                                out,
                                "entries.push((\"{fname}\".to_string(), ::serde::Serialize::to_value({fname})));"
                            );
                        }
                        let _ = write!(
                            out,
                            "::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(entries))])\n}}\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            out,
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),",
                            binders.join(", "),
                            elems.join(", ")
                        );
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn gen_named_field_build(type_name: &str, fields: &[Field], map_expr: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            let _ = writeln!(out, "{fname}: ::core::default::Default::default(),");
        } else if f.default {
            let _ = write!(
                out,
                "{fname}: match ::serde::field({map_expr}, \"{fname}\") {{\n\
                 Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                 None => ::core::default::Default::default(),\n\
                 }},\n"
            );
        } else {
            let _ = write!(
                out,
                "{fname}: match ::serde::field({map_expr}, \"{fname}\") {{\n\
                 Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                 None => return Err(::serde::Error::custom(\"missing field `{fname}` in {type_name}\")),\n\
                 }},\n"
            );
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let map = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 Ok({name} {{\n{}\
                 }})\n}}\n}}\n",
                gen_named_field_build(name, fields, "map")
            );
        }
        Item::Enum { name, variants } => {
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n"
            );
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            if !units.is_empty() {
                out.push_str("if let Some(s) = v.as_str() {\nmatch s {\n");
                for v in &units {
                    let vname = &v.name;
                    let _ = writeln!(out, "\"{vname}\" => return Ok({name}::{vname}),");
                }
                out.push_str("_ => {}\n}\n}\n");
            }
            let tagged: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            if !tagged.is_empty() {
                out.push_str(
                    "if let Some(entries) = v.as_map() {\n\
                     if entries.len() == 1 {\n\
                     let (tag, inner) = &entries[0];\n\
                     match tag.as_str() {\n",
                );
                for v in &tagged {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Named(fields) => {
                            let _ = write!(
                                out,
                                "\"{vname}\" => {{\n\
                                 let vmap = inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for variant {name}::{vname}\"))?;\n\
                                 return Ok({name}::{vname} {{\n{}\
                                 }});\n}}\n",
                                gen_named_field_build(&format!("{name}::{vname}"), fields, "vmap")
                            );
                        }
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            let _ = write!(
                                out,
                                "\"{vname}\" => {{\n\
                                 let items = inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected seq for variant {name}::{vname}\"))?;\n\
                                 if items.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}::{vname}\")); }}\n\
                                 return Ok({name}::{vname}({}));\n}}\n",
                                elems.join(", ")
                            );
                        }
                        VariantKind::Unit => unreachable!(),
                    }
                }
                out.push_str("_ => {}\n}\n}\n}\n");
            }
            let _ = write!(
                out,
                "Err(::serde::Error::custom(\"no variant of {name} matched\"))\n}}\n}}\n"
            );
        }
    }
    out
}

/// Derives `::serde::Serialize` (value-model form) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `::serde::Deserialize` (value-model form) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
