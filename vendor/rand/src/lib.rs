//! Vendored stand-in for `rand`, built for offline use.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! (inclusive) ranges, [`Rng::gen_bool`], and [`seq::SliceRandom`] for
//! Fisher–Yates shuffles. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through splitmix64 — deterministic per seed, which
//! is what the workspace's seeded training and property tests rely on;
//! the exact stream differs from upstream rand's ChaCha-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from another generator's output.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }

    /// Builds a generator seeded from a fixed internal source.
    fn from_entropy() -> Self {
        Self::seed_from_u64(crate::entropy())
    }
}

/// Error type kept for API compatibility; never produced in practice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn entropy() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5851_F42D_4C95_7F2D);
    COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The standard generator (xoshiro256++ here; ChaCha12 upstream).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::seed_from_u64(seed))
        }
    }

    /// The small/fast generator; identical core to [`StdRng`] here.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::seed_from_u64(seed))
        }
    }

    /// Process-global generator handle returned by [`crate::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) Xoshiro256);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a generator seeded from a process-global counter.
#[must_use]
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(Xoshiro256::seed_from_u64(entropy()))
}

/// Returns one sample of `T` from a freshly seeded generator.
#[must_use]
pub fn random<T: Standard>() -> T {
    thread_rng().gen::<T>()
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * (unit_f64(rng) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (end - start) * (unit_f64(rng) as $t)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform sample of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }

    /// Fills `dest` with uniform samples.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng, ThreadRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{random, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let unit = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
