//! Minimal read-only memory-mapping shim.
//!
//! Vendored so the workspace stays dependency-free: on unix targets
//! [`Mmap::map`] wraps the raw `mmap(2)`/`munmap(2)` syscalls through a tiny
//! `extern "C"` surface; everywhere else (and for empty files, which `mmap`
//! rejects) it falls back to reading the file into a 64-byte-aligned heap
//! buffer ([`AlignedBuf`]). Either way the result derefs to `&[u8]` whose
//! base address is at least 64-byte aligned, which is what the BLT1 artifact
//! reader needs for its zero-copy typed views.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;

/// A heap buffer whose base address is 64-byte aligned.
///
/// Used as the portable fallback when a real memory map is unavailable and
/// for byte slices that arrive already in memory (tests, network frames).
pub struct AlignedBuf {
    /// Allocation as `Vec<u64>` blocks so the base pointer is ≥8-byte aligned;
    /// we over-allocate and slide `start` forward to reach 64-byte alignment.
    storage: Vec<u8>,
    start: usize,
    len: usize,
}

const ALIGN: usize = 64;

impl AlignedBuf {
    /// Copies `bytes` into a fresh 64-byte-aligned buffer.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut storage = vec![0u8; bytes.len() + ALIGN];
        let base = storage.as_ptr() as usize;
        let start = (ALIGN - (base % ALIGN)) % ALIGN;
        storage[start..start + bytes.len()].copy_from_slice(bytes);
        Self {
            storage,
            start,
            len: bytes.len(),
        }
    }

    /// Reads the whole of `file` (from the start) into an aligned buffer.
    pub fn read_file(file: &mut File) -> io::Result<Self> {
        file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(Self::copy_from(&bytes))
    }

    /// The buffered bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.storage[self.start..self.start + self.len]
    }
}

impl Deref for AlignedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(unix)]
mod sys {
    //! Thin `extern "C"` surface over the libc already linked into every
    //! Rust binary — no external crate needed.
    #![allow(non_camel_case_types)]

    pub type c_int = i32;
    pub type c_void = core::ffi::c_void;
    pub type size_t = usize;
    pub type off_t = i64;

    /// `PROT_READ` — same value on Linux and macOS.
    pub const PROT_READ: c_int = 1;
    /// `MAP_PRIVATE` — same value on Linux and macOS.
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: size_t,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: off_t,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    }
}

/// A read-only view of a file's bytes.
///
/// On unix, non-empty files are mapped with `mmap(2)` (private, read-only)
/// and unmapped on drop; page alignment (≥4096) satisfies the 64-byte
/// alignment contract. Empty files and non-unix targets use [`AlignedBuf`].
pub struct Mmap {
    inner: MmapInner,
}

enum MmapInner {
    #[cfg(unix)]
    Mapped {
        ptr: *mut sys::c_void,
        len: usize,
    },
    Heap(AlignedBuf),
}

// SAFETY: the mapping is private and read-only; no interior mutability, and
// the underlying pages stay valid until `munmap` in `Drop`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only. Falls back to a heap copy where `mmap` is
    /// unavailable (non-unix) or meaningless (empty file).
    pub fn map(file: &mut File) -> io::Result<Self> {
        let len = file.metadata()?.len();
        let len_usize = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        #[cfg(unix)]
        {
            if len_usize > 0 {
                use std::os::unix::io::AsRawFd;
                // SAFETY: fd is valid for the duration of the call; a
                // PROT_READ/MAP_PRIVATE map of a regular file has no aliasing
                // requirements on our side. MAP_FAILED is (void*)-1.
                let ptr = unsafe {
                    sys::mmap(
                        core::ptr::null_mut(),
                        len_usize,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize == -1 {
                    return Err(io::Error::last_os_error());
                }
                return Ok(Self {
                    inner: MmapInner::Mapped {
                        ptr,
                        len: len_usize,
                    },
                });
            }
        }
        let _ = len_usize;
        Ok(Self {
            inner: MmapInner::Heap(AlignedBuf::read_file(file)?),
        })
    }

    /// Copies `bytes` into an aligned heap buffer wrapped as an `Mmap`, so
    /// in-memory artifacts share the file-backed code path.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self {
            inner: MmapInner::Heap(AlignedBuf::copy_from(bytes)),
        }
    }

    /// Whether the bytes come from a real OS memory map (as opposed to the
    /// aligned-heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            MmapInner::Mapped { .. } => true,
            MmapInner::Heap(_) => false,
        }
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            MmapInner::Mapped { ptr, len } => {
                // SAFETY: the region [ptr, ptr+len) stays mapped and
                // read-only until Drop runs.
                unsafe { core::slice::from_raw_parts(*ptr as *const u8, *len) }
            }
            MmapInner::Heap(buf) => buf.as_slice(),
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MmapInner::Mapped { ptr, len } = self.inner {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mmap-shim-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let mut f = File::open(&path).unwrap();
        let map = Mmap::map(&mut f).unwrap();
        assert_eq!(&*map, payload.as_slice());
        #[cfg(unix)]
        assert!(map.is_mapped());
        assert_eq!(map.as_ptr() as usize % ALIGN, 0);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_uses_heap_fallback() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let mut f = File::open(&path).unwrap();
        let map = Mmap::map(&mut f).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn from_bytes_is_aligned_copy() {
        let bytes = vec![7u8; 130];
        let map = Mmap::from_bytes(&bytes);
        assert_eq!(&*map, bytes.as_slice());
        assert!(!map.is_mapped());
        assert_eq!(map.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn aligned_buf_alignment_holds_for_many_sizes() {
        for n in [0usize, 1, 63, 64, 65, 4096, 100_003] {
            let src: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let buf = AlignedBuf::copy_from(&src);
            assert_eq!(buf.as_slice(), src.as_slice());
            assert_eq!(buf.as_slice().as_ptr() as usize % ALIGN, 0);
        }
    }
}
