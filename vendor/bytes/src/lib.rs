//! Vendored stand-in for `bytes`, built for offline use.
//!
//! Provides the little-endian read/write cursor API the wire protocol
//! uses: [`Buf`] advancing reads on `&[u8]`, [`BufMut`] appends on
//! [`BytesMut`], and the frozen [`Bytes`] buffer (a plain `Vec<u8>` here —
//! no refcounted zero-copy splitting, which the workspace doesn't use).

use std::ops::Deref;

/// Immutable byte buffer produced by [`BytesMut::freeze`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl<I: std::slice::SliceIndex<[u8]>> std::ops::Index<I> for Bytes {
    type Output = I::Output;
    fn index(&self, index: I) -> &I::Output {
        &self.data[index]
    }
}

/// Growable byte buffer with little-endian append methods.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Advancing big-endian/little-endian reads over a byte source.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Moves the read position forward by `cnt`.
    fn advance(&mut self, cnt: usize);

    /// Copies out the next `dst.len()` bytes and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u16` and advances.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32` and advances.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64` and advances.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Appending little-endian writes onto a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(-1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 16);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.get_f32_le().to_bits(), (-1.5f32).to_bits());
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slicing_and_to_vec() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
    }
}
