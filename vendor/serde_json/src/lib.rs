//! Vendored stand-in for `serde_json`, rendering and parsing the vendored
//! serde [`Value`] model as real JSON text.
//!
//! Integers round-trip exactly (u64 is never squeezed through f64, which
//! matters for the bit-packed word arrays in this workspace); floats are
//! rendered with Rust's shortest round-trip formatting; non-finite floats
//! serialize as `null`, matching upstream serde_json's lossy default.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as indented JSON text.
///
/// # Errors
///
/// Never fails for the types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` is the shortest representation that round-trips exactly.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => render_f64(*f, out),
        Value::Str(s) => render_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(k, out);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

fn render_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                render_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                render_str(k, out);
                out.push_str(": ");
                render_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => render(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("dangling escape at end of input"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for characters beyond the BMP.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            // Keep integers exact: u64 first, then i64 for negatives.
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_words_roundtrip_exactly() {
        let words: Vec<u64> = vec![0, 1, u64::MAX, 0x8000_0000_0000_0001, 1 << 53];
        let text = to_string(&words).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, words);
    }

    #[test]
    fn f32_thresholds_roundtrip_exactly() {
        let vals: Vec<f32> = vec![0.1, -3.75, f32::MIN_POSITIVE, 1e30, -0.0];
        let text = to_string(&vals).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        for (a, b) in back.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        let s = "line\none\ttab \"quoted\" back\\slash \u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<bool>("truex").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn defaulted_fields_tolerate_absence_but_still_serialize() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Grown {
            required: u64,
            #[serde(default)]
            added_later: f64,
            #[serde(default)]
            also_added: u64,
        }
        // A file written before the fields existed still reads.
        let old: Grown = from_str("{\"required\": 7}").unwrap();
        assert_eq!(old.required, 7);
        assert_eq!(old.added_later, 0.0);
        assert_eq!(old.also_added, 0);
        // A missing *required* field is still an error.
        assert!(from_str::<Grown>("{\"added_later\": 1.0}").is_err());
        // Round trip carries the defaulted fields like any other.
        let text = to_string(&Grown {
            required: 1,
            added_later: 2.5,
            also_added: 3,
        })
        .unwrap();
        let back: Grown = from_str(&text).unwrap();
        assert_eq!(back.added_later, 2.5);
        assert_eq!(back.also_added, 3);
    }
}
