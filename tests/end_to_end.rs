//! Cross-crate integration: full pipeline per workload — generate data,
//! train, compile with Bolt, verify equivalence against every platform, and
//! serve over the Unix-domain-socket front-end.

use bolt_repro::baselines::{
    ForestPackingForest, InferenceEngine, RangerLikeForest, ScikitLikeForest,
};
use bolt_repro::core::{BoltConfig, BoltForest};
use bolt_repro::data::Workload;
use bolt_repro::forest::{ForestConfig, RandomForest};
use bolt_repro::server::{BoltEngine, ClassificationClient, ServerBuilder};
use std::sync::Arc;

fn pipeline(workload: Workload, n_trees: usize, height: usize) {
    let train = bolt_repro::data::generate(workload, 800, 1);
    let test = bolt_repro::data::generate(workload, 200, 2);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(n_trees)
            .with_max_height(height)
            .with_seed(17),
    );
    let bolt = BoltForest::compile(&forest, &BoltConfig::default().with_cluster_threshold(2))
        .expect("compiles");
    let scikit = ScikitLikeForest::from_forest(&forest);
    let ranger = RangerLikeForest::from_forest(&forest);
    let fp = ForestPackingForest::from_forest(&forest, &train);

    for (sample, _) in test.iter() {
        let expected = forest.predict(sample);
        assert_eq!(bolt.classify(sample), expected, "{workload} bolt");
        assert_eq!(scikit.classify(sample), expected, "{workload} scikit");
        assert_eq!(ranger.classify(sample), expected, "{workload} ranger");
        assert_eq!(fp.classify(sample), expected, "{workload} fp");
    }
}

#[test]
fn mnist_like_pipeline() {
    pipeline(Workload::MnistLike, 10, 4);
}

#[test]
fn lstw_like_pipeline() {
    pipeline(Workload::LstwLike, 8, 5);
}

#[test]
fn yelp_like_pipeline() {
    pipeline(Workload::YelpLike, 6, 4);
}

#[test]
fn service_round_trip_matches_local_inference() {
    let train = bolt_repro::data::generate(Workload::MnistLike, 600, 3);
    let test = bolt_repro::data::generate(Workload::MnistLike, 60, 4);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(6).with_max_height(4).with_seed(5),
    );
    let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));

    let socket = std::env::temp_dir().join(format!("bolt-e2e-{}.sock", std::process::id()));
    let server = ServerBuilder::new()
        .register("bolt", Arc::new(BoltEngine::new(Arc::clone(&bolt))))
        .register(
            "reference",
            Arc::new(ScikitLikeForest::from_forest(&forest)),
        )
        .default_model("bolt")
        .bind_uds(&socket)
        .expect("binds");
    let mut client = ClassificationClient::connect(&socket).expect("connects");
    for (sample, _) in test.iter() {
        let response = client.classify(sample).expect("classifies");
        assert_eq!(response.class, bolt.classify(sample));
        assert_eq!(response.class, forest.predict(sample));
        // The reference engine, served beside Bolt on the same socket,
        // must agree request-for-request.
        let reference = client.classify_with("reference", sample).expect("routes");
        assert_eq!(reference.class, response.class);
    }
    assert_eq!(server.stats().requests, 2 * test.len() as u64);
    assert_eq!(
        server.stats_for("bolt").expect("registered").requests,
        test.len() as u64
    );
    server.shutdown();
}

#[test]
fn scratch_path_equals_allocating_path() {
    let train = bolt_repro::data::generate(Workload::LstwLike, 800, 9);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(7).with_max_height(5).with_seed(23),
    );
    let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
    let mut scratch = bolt.scratch();
    for (sample, _) in train.iter().take(150) {
        assert_eq!(
            bolt.classify_with(sample, &mut scratch),
            bolt.classify(sample)
        );
    }
}
