//! The paper's exact interchange pipeline (§5): trained forest → DOT files →
//! parsed trees → Bolt compilation, with end-to-end equivalence.

use bolt_repro::core::{BoltConfig, BoltForest};
use bolt_repro::data::Workload;
use bolt_repro::forest::{dot, ForestConfig, RandomForest};

#[test]
fn dot_round_trip_then_compile() {
    let train = bolt_repro::data::generate(Workload::LstwLike, 1000, 3);
    let original = RandomForest::train(
        &train,
        &ForestConfig::new(6).with_max_height(4).with_seed(8),
    );

    // Export every tree to DOT text and parse it back (the scikit-learn →
    // DOT → Bolt pipeline of the paper).
    let parsed: Vec<_> = original
        .trees()
        .iter()
        .map(|tree| dot::from_dot(&dot::to_dot(tree)).expect("round trip"))
        .collect();
    // DOT text does not carry feature/class counts, so parsed trees infer
    // minimal shapes; rebuild against the widest observed.
    let n_features = parsed.iter().map(|t| t.n_features()).max().expect("trees");
    let n_classes = parsed.iter().map(|t| t.n_classes()).max().expect("trees");
    let rebuilt: Vec<_> = parsed
        .into_iter()
        .map(|t| {
            bolt_repro::forest::DecisionTree::from_nodes(
                t.nodes().to_vec(),
                n_features.max(original.n_features()),
                n_classes.max(original.n_classes()),
            )
        })
        .collect();
    let reloaded = RandomForest::from_trees(rebuilt).expect("consistent trees");

    let bolt = BoltForest::compile(&reloaded, &BoltConfig::default()).expect("compiles");
    for (sample, _) in train.iter().take(200) {
        assert_eq!(bolt.classify(sample), original.predict(sample));
    }
}

#[test]
fn model_json_round_trip_then_compile() {
    let train = bolt_repro::data::generate(Workload::MnistLike, 500, 4);
    let original = RandomForest::train(
        &train,
        &ForestConfig::new(4).with_max_height(3).with_seed(2),
    );
    let json = serde_json::to_string(&original).expect("serializes");
    let reloaded: RandomForest = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(original, reloaded);

    let bolt = BoltForest::compile(&reloaded, &BoltConfig::default()).expect("compiles");
    for (sample, _) in train.iter().take(100) {
        assert_eq!(bolt.classify(sample), original.predict(sample));
    }
}
