//! End-to-end test of the `boltc` CLI: train → compile → eval on disk
//! artifacts, plus CSV ingestion and error reporting.

use std::path::PathBuf;
use std::process::Command;

fn boltc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_boltc"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("boltc-test-{}-{name}", std::process::id()))
}

#[test]
fn train_compile_eval_round_trip() {
    let forest_path = temp_path("forest.json");
    let bolt_path = temp_path("bolt.json");

    let out = boltc()
        .args([
            "train",
            "--workload",
            "mnist",
            "--samples",
            "400",
            "--trees",
            "5",
            "--height",
            "3",
            "--seed",
            "9",
        ])
        .args(["--out", forest_path.to_str().expect("utf8 path")])
        .output()
        .expect("boltc train runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(forest_path.exists());

    let out = boltc()
        .args(["compile", "--forest", forest_path.to_str().expect("utf8")])
        .args([
            "--threshold",
            "2",
            "--out",
            bolt_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("boltc compile runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("dictionary entries"), "{stdout}");

    for model_flag in [("--forest", &forest_path), ("--bolt", &bolt_path)] {
        let out = boltc()
            .args(["eval", model_flag.0, model_flag.1.to_str().expect("utf8")])
            .args(["--workload", "mnist", "--samples", "200", "--seed", "9"])
            .output()
            .expect("boltc eval runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("accuracy"));
    }

    // The two representations agree on accuracy for the same eval set.
    let acc = |flag: &str, path: &PathBuf| -> String {
        let out = boltc()
            .args(["eval", flag, path.to_str().expect("utf8")])
            .args(["--workload", "mnist", "--samples", "200", "--seed", "9"])
            .output()
            .expect("runs");
        String::from_utf8_lossy(&out.stdout)
            .split_whitespace()
            .last()
            .expect("accuracy token")
            .to_owned()
    };
    assert_eq!(acc("--forest", &forest_path), acc("--bolt", &bolt_path));

    let _ = std::fs::remove_file(forest_path);
    let _ = std::fs::remove_file(bolt_path);
}

#[test]
fn csv_training_works() {
    let csv_path = temp_path("data.csv");
    let forest_path = temp_path("csv-forest.json");
    let mut csv = String::from("x0,x1,label\n");
    for i in 0..60 {
        let x0 = i % 6;
        csv.push_str(&format!("{x0},{},{}\n", i % 3, u32::from(x0 > 2)));
    }
    std::fs::write(&csv_path, csv).expect("writes csv");

    let out = boltc()
        .args(["train", "--csv", csv_path.to_str().expect("utf8")])
        .args(["--trees", "3", "--height", "3"])
        .args(["--out", forest_path.to_str().expect("utf8")])
        .output()
        .expect("boltc train runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = boltc()
        .args(["eval", "--forest", forest_path.to_str().expect("utf8")])
        .args(["--csv", csv_path.to_str().expect("utf8")])
        .output()
        .expect("boltc eval runs");
    assert!(out.status.success());

    let _ = std::fs::remove_file(csv_path);
    let _ = std::fs::remove_file(forest_path);
}

#[test]
fn regression_train_compile_eval_round_trip() {
    let forest_path = temp_path("reg-forest.json");
    let bolt_path = temp_path("reg-bolt.json");

    let out = boltc()
        .args(["train-reg", "--workload", "trips", "--samples", "500"])
        .args(["--trees", "4", "--height", "4", "--seed", "3"])
        .args(["--out", forest_path.to_str().expect("utf8")])
        .output()
        .expect("boltc train-reg runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("RMSE"));

    let out = boltc()
        .args([
            "compile-reg",
            "--forest",
            forest_path.to_str().expect("utf8"),
        ])
        .args(["--out", bolt_path.to_str().expect("utf8")])
        .output()
        .expect("boltc compile-reg runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let rmse = |flag: &str, path: &PathBuf| -> String {
        let out = boltc()
            .args(["eval-reg", flag, path.to_str().expect("utf8")])
            .args(["--workload", "trips", "--samples", "300", "--seed", "3"])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .split_whitespace()
            .last()
            .expect("rmse token")
            .to_owned()
    };
    // Compiled regressor matches the forest to printed precision.
    assert_eq!(rmse("--forest", &forest_path), rmse("--bolt", &bolt_path));

    let _ = std::fs::remove_file(forest_path);
    let _ = std::fs::remove_file(bolt_path);
}

#[test]
fn bad_usage_reports_errors() {
    let out = boltc().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = boltc()
        .args(["train", "--out", "/tmp/x.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workload or --csv"));

    let out = boltc().args(["frobnicate"]).output().expect("runs");
    assert!(!out.status.success());
}
