//! Cross-crate integration for the paper's "complex forest structures"
//! (§4.6/§5): deep forests and boosted ensembles compiled through Bolt, plus
//! partitioned inference and tuning over realistic workloads.

use bolt_repro::core::{
    BoltConfig, BoltForest, CostModel, DeepBolt, ParameterSearch, PartitionPlan, PartitionedBolt,
};
use bolt_repro::data::Workload;
use bolt_repro::forest::{
    BoostConfig, BoostedForest, DeepForest, DeepForestConfig, ForestConfig, RandomForest,
};
use std::sync::Arc;

#[test]
fn deep_forest_layers_compile_and_agree() {
    let train = bolt_repro::data::generate(Workload::MnistLike, 700, 6);
    let test = bolt_repro::data::generate(Workload::MnistLike, 150, 7);
    let deep = DeepForest::train(
        &train,
        &DeepForestConfig::two_layers(ForestConfig::new(4).with_max_height(4).with_seed(3)),
    )
    .expect("trains");
    let compiled = DeepBolt::compile(&deep, &BoltConfig::default()).expect("compiles");
    for (sample, _) in test.iter() {
        assert_eq!(compiled.classify(sample), deep.predict(sample));
    }
    assert_eq!(compiled.accuracy(&test), deep.accuracy(&test));
}

#[test]
fn boosted_forest_weighted_votes_survive_compilation() {
    let train = bolt_repro::data::generate(Workload::LstwLike, 1500, 6);
    let test = bolt_repro::data::generate(Workload::LstwLike, 300, 7);
    let boosted = BoostedForest::train(
        &train,
        &BoostConfig::new(10).with_max_height(3).with_seed(6),
    );
    let bolt = BoltForest::compile_boosted(&boosted, &BoltConfig::default()).expect("compiles");
    let mut disagreements = 0usize;
    for (sample, _) in test.iter() {
        let expected = boosted.weighted_votes(sample);
        let got = bolt.votes_for_bits(&bolt.encode(sample));
        for (e, g) in expected.iter().zip(&got) {
            assert!(
                (e - g).abs() < 1e-9,
                "weighted votes drifted: {expected:?} vs {got:?}"
            );
        }
        if bolt.classify(sample) != boosted.predict(sample) {
            disagreements += 1; // only possible on float-order ties
        }
    }
    assert!(
        disagreements <= test.len() / 100,
        "{disagreements} disagreements beyond tie tolerance"
    );
}

#[test]
fn tuning_then_partitioning_on_yelp() {
    let train = bolt_repro::data::generate(Workload::YelpLike, 1200, 1);
    let test = bolt_repro::data::generate(Workload::YelpLike, 150, 2);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(6)
            .with_max_height(4)
            .with_features_per_split(60)
            .with_seed(12),
    );
    let report = ParameterSearch::new()
        .with_thresholds([0, 2, 4])
        .with_max_cores(4)
        .with_calibration_samples(32)
        .run(&forest, &test, &CostModel::default())
        .expect("sweep runs");
    let best = report.best();
    let bolt = Arc::new(
        BoltForest::compile(
            &forest,
            &BoltConfig::default().with_cluster_threshold(best.threshold),
        )
        .expect("compiles"),
    );
    let partitioned = PartitionedBolt::new(
        Arc::clone(&bolt),
        PartitionPlan::new(best.plan.dict_parts, best.plan.table_parts),
    )
    .expect("valid plan");
    for (sample, _) in test.iter().take(60) {
        assert_eq!(partitioned.classify(sample), forest.predict(sample));
    }
}

#[test]
fn explanations_survive_the_full_pipeline() {
    let train = bolt_repro::data::generate(Workload::YelpLike, 1200, 3);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(8)
            .with_max_height(5)
            .with_features_per_split(60)
            .with_seed(2),
    );
    let bolt = BoltForest::compile(&forest, &BoltConfig::default().with_explanations(true))
        .expect("compiles");
    let mut explained = 0usize;
    for (sample, _) in train.iter().take(50) {
        let explanation = bolt.classify_explained(sample);
        assert_eq!(explanation.class, forest.predict(sample));
        if !explanation.salience.is_empty() {
            explained += 1;
        }
    }
    assert!(explained >= 45, "salience produced for only {explained}/50");
}
