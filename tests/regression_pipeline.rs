//! Cross-crate integration for regression: bagged forests and gradient
//! boosting compiled to Bolt structures on the trip-duration workload.

use bolt_repro::core::{BoltConfig, BoltRegressor};
use bolt_repro::forest::{GbtConfig, GradientBoostedRegressor, RegressionConfig, RegressionForest};

#[test]
fn bagged_regression_end_to_end() {
    let train = bolt_repro::data::trip_duration_like(1500, 1);
    let test = bolt_repro::data::trip_duration_like(300, 2);
    let forest = RegressionForest::train(
        &train,
        &RegressionConfig::new(8).with_max_height(5).with_seed(3),
    );
    let bolt = BoltRegressor::compile(&forest, &BoltConfig::default()).expect("compiles");
    for (sample, _) in test.iter() {
        let (a, b) = (bolt.predict(sample), forest.predict(sample));
        assert!(
            (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
            "bolt {a} vs forest {b}"
        );
    }
    assert!((bolt.mse(&test) - forest.mse(&test)).abs() < 1e-2 * (1.0 + forest.mse(&test)));
}

#[test]
fn boosted_regression_end_to_end() {
    let train = bolt_repro::data::trip_duration_like(1200, 4);
    let test = bolt_repro::data::trip_duration_like(250, 5);
    let model = GradientBoostedRegressor::train(
        &train,
        &GbtConfig::new(25).with_max_height(3).with_seed(6),
    );
    // Boosting should clearly beat the mean baseline on held-out trips.
    let mean: f64 = test.iter().map(|(_, t)| f64::from(t)).sum::<f64>() / test.len() as f64;
    let variance: f64 = test
        .iter()
        .map(|(_, t)| (f64::from(t) - mean).powi(2))
        .sum::<f64>()
        / test.len() as f64;
    assert!(
        model.mse(&test) < variance / 2.0,
        "mse {} vs var {variance}",
        model.mse(&test)
    );

    let bolt = BoltRegressor::compile_boosted(&model, &BoltConfig::default()).expect("compiles");
    for (sample, _) in test.iter() {
        let (a, b) = (bolt.predict(sample), model.predict(sample));
        assert!(
            (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
            "bolt {a} vs gbt {b}"
        );
    }
}

#[test]
fn regression_artifact_round_trips_through_json() {
    let train = bolt_repro::data::trip_duration_like(700, 8);
    let forest = RegressionForest::train(
        &train,
        &RegressionConfig::new(5).with_max_height(4).with_seed(2),
    );
    let bolt = BoltRegressor::compile(&forest, &BoltConfig::default()).expect("compiles");
    let json = serde_json::to_string(&bolt).expect("serializes");
    let mut restored: BoltRegressor = serde_json::from_str(&json).expect("deserializes");
    restored.rebuild();
    for (sample, _) in train.iter().take(40) {
        assert_eq!(restored.predict(sample), bolt.predict(sample));
    }
}
