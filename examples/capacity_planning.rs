//! Capacity planning with Bolt (§4.6): "given a forest workload, which
//! processor provides best performance" — diagnose whether a forest is
//! bottlenecked by LLC capacity (table too big) or clock rate (dictionary
//! too long) on each candidate machine.
//!
//! Run: `cargo run --release --example capacity_planning`

use bolt_repro::core::{BoltConfig, BoltForest};
use bolt_repro::data::Workload;
use bolt_repro::forest::{ForestConfig, RandomForest};
use bolt_repro::simcpu::{hw, instrument, SimCpu};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = bolt_repro::data::generate(Workload::MnistLike, 2000, 1);
    let test = bolt_repro::data::generate(Workload::MnistLike, 300, 2);

    // Two candidate workloads: a shallow service forest and a deeper,
    // storage-hungry one.
    for (label, n_trees, height, threshold) in [
        ("shallow service forest", 10, 4usize, 2usize),
        ("deep accuracy forest", 10, 8, 1),
    ] {
        let forest = RandomForest::train(
            &train,
            &ForestConfig::new(n_trees)
                .with_max_height(height)
                .with_seed(5),
        );
        let bolt = BoltForest::compile(
            &forest,
            &BoltConfig::default().with_cluster_threshold(threshold),
        )?;
        let table_bytes = bolt.approx_resident_bytes();
        println!(
            "\n{label}: {} dictionary entries, resident structures ~{} KiB",
            bolt.dictionary().len(),
            table_bytes / 1024
        );

        for profile in hw::all_profiles() {
            let mut cpu = SimCpu::new(&profile);
            for (sample, _) in test.iter() {
                instrument::run_bolt(&bolt, &bolt.encode(sample), &mut cpu);
            }
            let per_sample_ns = cpu.elapsed_ns() / test.len() as f64;
            let c = cpu.counters();
            // §4.6 diagnosis: storage-bound if the table overflows one
            // core's LLC slice; compute-bound if the dictionary scan
            // dominates retired instructions.
            let llc_slice = profile.llc_bytes / profile.cores;
            let bottleneck = if table_bytes > llc_slice {
                "LLC capacity"
            } else if c.cache_misses * 50 < c.instructions {
                "clock rate (dictionary scan)"
            } else {
                "memory latency"
            };
            println!(
                "  {:>10}: {:>8.3} µs/sample  (cache misses {:>6}, bottleneck: {bottleneck})",
                profile.name,
                per_sample_ns / 1000.0,
                c.cache_misses
            );
        }
    }
    Ok(())
}
