//! Complex forest structures in Bolt (§4.6/§5): a two-layer deep forest
//! compiled layer-by-layer, and a gradient-boosted (weighted-tree) ensemble
//! compiled with per-path weights.
//!
//! Run: `cargo run --release --example deep_forest_demo`

use bolt_repro::core::{BoltConfig, BoltForest, DeepBolt};
use bolt_repro::data::Workload;
use bolt_repro::forest::{BoostConfig, BoostedForest, DeepForest, DeepForestConfig, ForestConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = bolt_repro::data::generate(Workload::LstwLike, 3000, 1);
    let test = bolt_repro::data::generate(Workload::LstwLike, 500, 2);

    // Two-layer deep forest: layer 2 consumes layer 1's class probabilities.
    let deep = DeepForest::train(
        &train,
        &DeepForestConfig::two_layers(ForestConfig::new(8).with_max_height(5).with_seed(11)),
    )?;
    let compiled = DeepBolt::compile(&deep, &BoltConfig::default().with_cluster_threshold(2))?;
    let mut agree = 0usize;
    for (sample, _) in test.iter() {
        if compiled.classify(sample) == deep.predict(sample) {
            agree += 1;
        }
    }
    println!(
        "deep forest: {} layers, accuracy {:.1}%, Bolt agrees on {agree}/{} samples",
        compiled.n_layers(),
        100.0 * deep.accuracy(&test),
        test.len()
    );

    // Gradient-boosted ensemble: Bolt attaches each tree's weight to its
    // paths ("simply adding the corresponding tree weight to each path").
    let boosted = BoostedForest::train(
        &train,
        &BoostConfig::new(12).with_max_height(3).with_seed(4),
    );
    let bolt = BoltForest::compile_boosted(&boosted, &BoltConfig::default())?;
    let mut agree = 0usize;
    for (sample, _) in test.iter() {
        if bolt.classify(sample) == boosted.predict(sample) {
            agree += 1;
        }
    }
    println!(
        "boosted forest: {} weighted trees, accuracy {:.1}%, Bolt agrees on {agree}/{} samples",
        boosted.n_trees(),
        100.0 * boosted.accuracy(&test),
        test.len()
    );
    Ok(())
}
