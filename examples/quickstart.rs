//! Quickstart: train a random forest, compile it with Bolt, and verify that
//! lookup-table inference matches tree traversal exactly.
//!
//! Run: `cargo run --release --example quickstart`

use bolt_repro::core::{BoltConfig, BoltForest};
use bolt_repro::data::Workload;
use bolt_repro::forest::{ForestConfig, RandomForest};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A digit-recognition workload shaped like MNIST (784 pixels, 10
    //    classes); the paper's headline setting is 10 trees of height 4.
    let train = bolt_repro::data::generate(Workload::MnistLike, 2000, 1);
    let test = bolt_repro::data::generate(Workload::MnistLike, 500, 2);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(10).with_max_height(4).with_seed(42),
    );
    println!(
        "trained {} trees (height <= {}), {} root-leaf paths, accuracy {:.1}%",
        forest.n_trees(),
        forest.height(),
        forest.total_paths(),
        100.0 * forest.accuracy(&test)
    );

    // 2. Compile the whole forest into Bolt's lookup structures.
    let bolt = BoltForest::compile(&forest, &BoltConfig::default().with_cluster_threshold(2))?;
    println!(
        "compiled: {} predicates, {} dictionary entries, {} lookup-table cells, bloom filter {} KiB",
        bolt.universe().len(),
        bolt.dictionary().len(),
        bolt.table().n_cells(),
        bolt.bloom().map_or(0, |b| b.size_bytes() / 1024).max(1)
    );

    // 3. Safety property (§4 of the paper): identical classifications.
    let mut agree = 0;
    for (sample, _) in test.iter() {
        if bolt.classify(sample) == forest.predict(sample) {
            agree += 1;
        }
    }
    println!(
        "equivalence: {agree}/{} test samples match tree traversal",
        test.len()
    );

    // 4. Service-style latency with the allocation-free hot path.
    let mut scratch = bolt.scratch();
    let start = Instant::now();
    let mut sink = 0u32;
    for (sample, _) in test.iter() {
        sink = sink.wrapping_add(bolt.classify_with(sample, &mut scratch));
    }
    std::hint::black_box(sink);
    println!(
        "bolt inference: {:.3} µs/sample over {} samples",
        start.elapsed().as_micros() as f64 / test.len() as f64,
        test.len()
    );
    Ok(())
}
