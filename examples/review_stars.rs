//! Star-rating prediction on the Yelp-shaped bag-of-words workload, with
//! Bolt's local-explanation (salience) tracking — the §2.1 capability that
//! costs one associative access per matched dictionary entry.
//!
//! Run: `cargo run --release --example review_stars`

use bolt_repro::core::{BoltConfig, BoltForest};
use bolt_repro::data::{yelp, Workload};
use bolt_repro::forest::{ForestConfig, RandomForest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = bolt_repro::data::generate(Workload::YelpLike, 3000, 1);
    let test = bolt_repro::data::generate(Workload::YelpLike, 400, 2);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(10)
            .with_max_height(6)
            .with_features_per_split(80)
            .with_seed(3),
    );
    println!(
        "review forest: {} trees, accuracy {:.1}% (chance 20%)",
        forest.n_trees(),
        100.0 * forest.accuracy(&test)
    );

    // Compile with salience tracking enabled.
    let bolt = BoltForest::compile(
        &forest,
        &BoltConfig::default()
            .with_cluster_threshold(2)
            .with_explanations(true),
    )?;

    // Explain a few predictions: which vocabulary words drove the stars?
    // Words 0..N_POSITIVE are planted positive sentiment; the next
    // N_NEGATIVE are negative.
    let mut salient_sentiment_hits = 0usize;
    for i in 0..10 {
        let sample = test.sample(i);
        let explanation = bolt.classify_explained(sample);
        assert_eq!(explanation.class, forest.predict(sample), "safety holds");
        let top = explanation.top_features(3);
        let sentiment: Vec<&str> = top
            .iter()
            .map(|&w| {
                if (w as usize) < yelp::N_POSITIVE {
                    "positive-word"
                } else if (w as usize) < yelp::N_POSITIVE + yelp::N_NEGATIVE {
                    "negative-word"
                } else {
                    "filler-word"
                }
            })
            .collect();
        if sentiment.iter().any(|s| *s != "filler-word") {
            salient_sentiment_hits += 1;
        }
        println!(
            "review {i}: predicted {} stars; top words {:?} ({})",
            explanation.class + 1,
            top,
            sentiment.join(", ")
        );
    }
    println!("\n{salient_sentiment_hits}/10 explanations surface planted sentiment vocabulary");

    // Global understanding: importance aggregated over the whole test set.
    let importance = bolt.feature_importance(&test);
    let sentiment_mass: f64 = importance
        .iter()
        .filter(|&&(w, _)| (w as usize) < yelp::N_POSITIVE + yelp::N_NEGATIVE)
        .map(|&(_, m)| m)
        .sum();
    println!(
        "global importance: {:.0}% of attribution mass lands on the {} planted sentiment words",
        100.0 * sentiment_mass,
        yelp::N_POSITIVE + yelp::N_NEGATIVE
    );
    Ok(())
}
