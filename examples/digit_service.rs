//! A digit-recognition classification service over a Unix domain socket —
//! the paper's Fig. 7 workflow end to end: front-end, Bolt inference engine,
//! and a client streaming MNIST-shaped requests — plus the §2.1 salience
//! map: which pixels drove one digit's classification, rendered as ASCII.
//!
//! Run: `cargo run --release --example digit_service`

use bolt_repro::baselines::ScikitLikeForest;
use bolt_repro::core::{BoltConfig, BoltForest};
use bolt_repro::data::Workload;
use bolt_repro::forest::{ForestConfig, RandomForest};
use bolt_repro::server::{BoltEngine, ClassificationClient, ServerBuilder};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = bolt_repro::data::generate(Workload::MnistLike, 2000, 1);
    let test = bolt_repro::data::generate(Workload::MnistLike, 300, 2);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(10).with_max_height(4).with_seed(7),
    );
    let bolt = Arc::new(BoltForest::compile(
        &forest,
        &BoltConfig::default()
            .with_cluster_threshold(2)
            .with_explanations(true),
    )?);

    // One server, two engines: Bolt serves the traffic (and legacy,
    // unrouted frames — it is the default model); the scikit-style
    // reference stays registered beside it for spot checks by name.
    let socket = std::env::temp_dir().join(format!("bolt-digits-{}.sock", std::process::id()));
    let server = ServerBuilder::new()
        .register("digits", Arc::new(BoltEngine::new(Arc::clone(&bolt))))
        .register(
            "digits-ref",
            Arc::new(ScikitLikeForest::from_forest(&forest)),
        )
        .default_model("digits")
        .bind_uds(&socket)?;
    println!("digit service listening on {}", socket.display());

    // A client sends every test image sequentially (no batching, as in the
    // paper's evaluation methodology).
    let mut client = ClassificationClient::connect(&socket)?;
    let mut correct = 0usize;
    for (sample, label) in test.iter() {
        let response = client.classify(sample)?;
        if response.class == label {
            correct += 1;
        }
    }
    // Spot-check a served answer against the reference engine by name.
    let probe = test.sample(0);
    assert_eq!(
        client.classify_with("digits", probe)?.class,
        client.classify_with("digits-ref", probe)?.class
    );
    for model in client.list_models()?.models {
        let default = if model.is_default { ", default" } else { "" };
        println!(
            "  model {} ({}{default}): {} requests",
            model.name, model.engine, model.requests
        );
    }
    let stats = server.stats();
    println!(
        "served {} requests; accuracy {:.1}%; mean service latency {:.3} µs",
        stats.requests,
        100.0 * correct as f64 / test.len() as f64,
        stats.mean_latency_ns() / 1000.0
    );
    server.shutdown();

    // Local explanation (§2.1): salience map for one digit, one associative
    // access per matched dictionary entry — no extra tree traversal.
    let sample = test.sample(0);
    let explanation = bolt.classify_explained(sample);
    println!(
        "\nsalience map for one request (predicted digit {}; '#' = salient pixel, '.' = inked):",
        explanation.class
    );
    let salient: std::collections::HashSet<u32> =
        explanation.top_features(24).into_iter().collect();
    for row in 0..28 {
        let mut line = String::with_capacity(28);
        for col in 0..28 {
            let idx = row * 28 + col;
            line.push(if salient.contains(&(idx as u32)) {
                '#'
            } else if sample[idx] > 100.0 {
                '.'
            } else {
                ' '
            });
        }
        println!("  {line}");
    }
    Ok(())
}
