//! Traffic-severity triage on the LSTW-shaped workload, with Phase-2
//! parameter search and partitioned (multi-core) single-sample inference —
//! the paper's §4.2/Fig. 4 machinery on a heterogeneous dataset.
//!
//! Run: `cargo run --release --example traffic_triage`

use bolt_repro::core::{
    BoltConfig, BoltForest, CostModel, ParameterSearch, PartitionPlan, PartitionedBolt,
};
use bolt_repro::data::Workload;
use bolt_repro::forest::{ForestConfig, RandomForest};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = bolt_repro::data::generate(Workload::LstwLike, 4000, 1);
    let test = bolt_repro::data::generate(Workload::LstwLike, 800, 2);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(12).with_max_height(5).with_seed(9),
    );
    println!(
        "traffic forest: {} trees, height {}, accuracy {:.1}%",
        forest.n_trees(),
        forest.height(),
        100.0 * forest.accuracy(&test)
    );

    // Phase 2: sweep clustering thresholds and partition plans for this
    // hardware (modeled as the paper's default Xeon).
    let model = CostModel::default();
    let report = ParameterSearch::new()
        .with_thresholds([0, 1, 2, 4, 8])
        .with_max_cores(4)
        .with_calibration_samples(128)
        .run(&forest, &test, &model)?;
    let best = report.best();
    println!(
        "parameter search: best threshold={} plan={}x{} (modeled {:.3} µs); spread {:.1}x",
        best.threshold,
        best.plan.dict_parts,
        best.plan.table_parts,
        best.modeled_ns / 1000.0,
        report.spread()
    );

    // Compile at the chosen threshold and run partitioned inference: one
    // sample split across dictionary/table partitions (Fig. 4).
    let bolt = Arc::new(BoltForest::compile(
        &forest,
        &BoltConfig::default().with_cluster_threshold(best.threshold),
    )?);
    let plan = PartitionPlan::new(best.plan.dict_parts, best.plan.table_parts);
    let partitioned = PartitionedBolt::new(Arc::clone(&bolt), plan)?;
    let mut agree = 0usize;
    for (sample, _) in test.iter().take(200) {
        if partitioned.classify(sample) == forest.predict(sample) {
            agree += 1;
        }
    }
    println!(
        "partitioned inference across {} cores agrees with the forest on {agree}/200 samples",
        plan.cores()
    );

    // Per-core work profile for one rush-hour sample.
    let bits = bolt.encode(test.sample(0));
    for (core, work) in partitioned.work_profile(&bits).iter().enumerate() {
        println!(
            "  core {core}: scanned {} entries, matched {}, performed {} lookups (skipped {})",
            work.entries_scanned,
            work.entries_matched,
            work.lookups_performed,
            work.lookups_skipped
        );
    }
    Ok(())
}
