//! Regression with Bolt: trip-duration (ETA) prediction compiled to lookup
//! tables, aggregated with the Fig. 7 service's `mean(results)`.
//!
//! Run: `cargo run --release --example trip_eta`

use bolt_repro::core::{BoltConfig, BoltRegressor};
use bolt_repro::forest::{GbtConfig, GradientBoostedRegressor, RegressionConfig, RegressionForest};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = bolt_repro::data::trip_duration_like(3000, 1);
    let test = bolt_repro::data::trip_duration_like(600, 2);
    let forest = RegressionForest::train(
        &train,
        &RegressionConfig::new(12).with_max_height(6).with_seed(7),
    );
    println!(
        "trip ETA forest: {} trees, test RMSE {:.2} minutes",
        forest.n_trees(),
        forest.mse(&test).sqrt()
    );

    let bolt = BoltRegressor::compile(&forest, &BoltConfig::default().with_cluster_threshold(2))?;
    println!(
        "compiled regressor: {} dictionary entries, {} table cells",
        bolt.dictionary().len(),
        bolt.table().n_cells()
    );

    // Equivalence: the compiled regressor reproduces the forest's mean.
    let mut worst = 0.0f32;
    for (sample, _) in test.iter() {
        worst = worst.max((bolt.predict(sample) - forest.predict(sample)).abs());
    }
    println!(
        "max |bolt - forest| over {} trips: {worst:.6} minutes",
        test.len()
    );

    // A few concrete ETAs.
    for (label, sample) in [
        ("short off-peak trip", vec![30.0, 11.0, 2.0, 0.0, 1.0, 45.0]),
        (
            "long rush-hour trip in rain",
            vec![250.0, 8.0, 1.0, 40.0, 3.0, 55.0],
        ),
        (
            "weekend highway trip",
            vec![200.0, 14.0, 6.0, 0.0, 0.0, 65.0],
        ),
    ] {
        println!("  {label}: {:.1} minutes", bolt.predict(&sample));
    }

    // Gradient boosting (XGBoost-style, §5): Bolt attaches lr x leaf value
    // to each path and aggregates base + sum.
    let gbt = GradientBoostedRegressor::train(
        &train,
        &GbtConfig::new(40).with_max_height(3).with_seed(9),
    );
    let gbt_bolt = BoltRegressor::compile_boosted(&gbt, &BoltConfig::default())?;
    println!(
        "boosted regressor: {} rounds, test RMSE {:.2} minutes (bagged: {:.2}); Bolt matches to {:.5}",
        gbt.n_trees(),
        gbt.mse(&test).sqrt(),
        forest.mse(&test).sqrt(),
        test.iter()
            .map(|(s, _)| (gbt_bolt.predict(s) - gbt.predict(s)).abs())
            .fold(0.0f32, f32::max)
    );

    let start = Instant::now();
    let mut sink = 0.0f32;
    for (sample, _) in test.iter() {
        sink += bolt.predict(sample);
    }
    std::hint::black_box(sink);
    println!(
        "bolt regression inference: {:.3} µs/sample",
        start.elapsed().as_micros() as f64 / test.len() as f64
    );
    Ok(())
}
