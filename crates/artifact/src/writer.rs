//! Serialization of compiled models into the `BLT1` on-disk form.

use crate::format::{self, align_up, crc32, section, Header, SectionDesc};
use bolt_core::{BoltForest, BoltRegressor};
use std::io::{self, Write};
use std::path::Path;

/// Serializes compiled Bolt models into `.blt` artifact bytes.
///
/// The writer emits each kernel array verbatim in little-endian order, so a
/// mapped reader reinterprets the payloads in place. Sections are padded to
/// 64-byte payload alignment and individually CRC-32'd.
pub struct ArtifactWriter;

/// Fixed size of the `META` section.
const META_LEN: usize = 64;

impl ArtifactWriter {
    /// Serializes a classification forest into `BLT1` bytes with
    /// [`Header::model_version`] zero ("unversioned"); see
    /// [`serialize_forest_versioned`](Self::serialize_forest_versioned)
    /// to stamp a deployment version for a model store.
    #[must_use]
    pub fn serialize_forest(bolt: &BoltForest) -> Vec<u8> {
        Self::serialize_forest_versioned(bolt, 0)
    }

    /// Serializes a classification forest into `BLT1` bytes, stamping
    /// `model_version` into the header — the `V` a model store expects to
    /// match the artifact's `NAME@V.blt` file name.
    #[must_use]
    pub fn serialize_forest_versioned(bolt: &BoltForest, model_version: u32) -> Vec<u8> {
        let view = bolt.view();
        let dict = view.dict();
        let table = view.table();

        let mut meta = [0u8; META_LEN];
        meta[0..4].copy_from_slice(&(dict.width() as u32).to_le_bytes());
        meta[4..8].copy_from_slice(&(dict.len() as u32).to_le_bytes());
        meta[8..12].copy_from_slice(&(bolt.n_classes() as u32).to_le_bytes());
        meta[12..16].copy_from_slice(&(bolt.n_trees() as u32).to_le_bytes());
        meta[16..20].copy_from_slice(&(bolt.universe().n_features() as u32).to_le_bytes());
        meta[20..24].copy_from_slice(&view.bloom().map_or(0, |b| b.n_hashes()).to_le_bytes());
        meta[24] = 0; // aggregation: unused for classifiers
        meta[32..40].copy_from_slice(&(table.capacity() as u64).to_le_bytes());

        let consts = view.constant_votes();
        let mut const_bytes = Vec::with_capacity(4 + consts.len() * 12);
        const_bytes.extend_from_slice(&(consts.len() as u32).to_le_bytes());
        for &(class, _) in consts {
            const_bytes.extend_from_slice(&class.to_le_bytes());
        }
        for &(_, weight) in consts {
            const_bytes.extend_from_slice(&weight.to_le_bytes());
        }

        let mut sections: Vec<(u32, Vec<u8>)> = vec![
            (section::META, meta.to_vec()),
            (section::PRED, pred_bytes(bolt.universe())),
            (section::DICT_MASK, u64_bytes(dict.mask_words())),
            (section::DICT_KEY, u64_bytes(dict.key_words())),
            (section::DICT_UNCOMMON, u32_bytes(dict.uncommon_flat())),
            (section::DICT_OFFSETS, u32_bytes(dict.uncommon_offsets())),
            (section::TBL_SLOT_ENTRY, u32_bytes(table.slot_entries())),
            (section::TBL_SLOT_ADDR, u64_bytes(table.slot_addrs())),
            (section::TBL_VOTE_OFF, u32_bytes(table.vote_offsets())),
            (section::TBL_VOTE_CLASS, u32_bytes(table.vote_classes())),
            (section::TBL_VOTE_WEIGHT, f64_bytes(table.vote_weights())),
        ];
        // Entry-blocked SIMD mirror: optional, absent when the dictionary
        // has no full block. Readers that predate it skip the ids.
        if dict.has_blocked() {
            sections.push((section::DICT_MASK_BLK, u64_bytes(dict.blk_mask())));
            sections.push((section::DICT_KEY_BLK, u64_bytes(dict.blk_key())));
        }
        let mut flags = 0u8;
        if let Some(bloom) = view.bloom() {
            flags |= format::FLAG_HAS_BLOOM;
            sections.push((section::BLOOM, u64_bytes(bloom.words())));
        }
        sections.push((section::CONST, const_bytes));

        assemble(format::KIND_CLASSIFIER, flags, model_version, &sections)
    }

    /// Serializes a regression forest into `BLT1` bytes with
    /// [`Header::model_version`] zero; see
    /// [`serialize_regressor_versioned`](Self::serialize_regressor_versioned).
    #[must_use]
    pub fn serialize_regressor(bolt: &BoltRegressor) -> Vec<u8> {
        Self::serialize_regressor_versioned(bolt, 0)
    }

    /// Serializes a regression forest into `BLT1` bytes, stamping
    /// `model_version` into the header.
    #[must_use]
    pub fn serialize_regressor_versioned(bolt: &BoltRegressor, model_version: u32) -> Vec<u8> {
        let view = bolt.view();
        let dict = view.dict();
        let table = view.table();

        let mut meta = [0u8; META_LEN];
        meta[0..4].copy_from_slice(&(dict.width() as u32).to_le_bytes());
        meta[4..8].copy_from_slice(&(dict.len() as u32).to_le_bytes());
        // n_classes stays 0: regressors have no vote classes.
        meta[12..16].copy_from_slice(&(bolt.n_trees() as u32).to_le_bytes());
        meta[16..20].copy_from_slice(&(bolt.universe().n_features() as u32).to_le_bytes());
        meta[20..24].copy_from_slice(&view.bloom().map_or(0, |b| b.n_hashes()).to_le_bytes());
        meta[24] = match bolt.aggregation() {
            bolt_core::Aggregation::Mean => 0,
            bolt_core::Aggregation::Sum => 1,
        };
        meta[32..40].copy_from_slice(&(table.capacity() as u64).to_le_bytes());

        let mut const_bytes = Vec::with_capacity(16);
        const_bytes.extend_from_slice(&bolt.constant_sum().to_le_bytes());
        const_bytes.extend_from_slice(&bolt.base().to_le_bytes());

        let mut sections: Vec<(u32, Vec<u8>)> = vec![
            (section::META, meta.to_vec()),
            (section::PRED, pred_bytes(bolt.universe())),
            (section::DICT_MASK, u64_bytes(dict.mask_words())),
            (section::DICT_KEY, u64_bytes(dict.key_words())),
            (section::DICT_UNCOMMON, u32_bytes(dict.uncommon_flat())),
            (section::DICT_OFFSETS, u32_bytes(dict.uncommon_offsets())),
            (section::TBL_SLOT_ENTRY, u32_bytes(table.slot_entries())),
            (section::TBL_SLOT_ADDR, u64_bytes(table.slot_addrs())),
            (section::TBL_VOTE_OFF, u32_bytes(table.vote_offsets())),
            (section::TBL_VOTE_CLASS, u32_bytes(table.vote_classes())),
            (section::TBL_VOTE_WEIGHT, f64_bytes(table.vote_weights())),
        ];
        if dict.has_blocked() {
            sections.push((section::DICT_MASK_BLK, u64_bytes(dict.blk_mask())));
            sections.push((section::DICT_KEY_BLK, u64_bytes(dict.blk_key())));
        }
        let mut flags = 0u8;
        if let Some(bloom) = view.bloom() {
            flags |= format::FLAG_HAS_BLOOM;
            sections.push((section::BLOOM, u64_bytes(bloom.words())));
        }
        sections.push((section::CONST, const_bytes));

        assemble(format::KIND_REGRESSOR, flags, model_version, &sections)
    }

    /// Serializes a classification forest and writes it to `path`.
    pub fn write_forest(bolt: &BoltForest, path: impl AsRef<Path>) -> io::Result<()> {
        write_atomic(path.as_ref(), &Self::serialize_forest(bolt))
    }

    /// Serializes a classification forest with a stamped model version
    /// and writes it to `path`.
    pub fn write_forest_versioned(
        bolt: &BoltForest,
        model_version: u32,
        path: impl AsRef<Path>,
    ) -> io::Result<()> {
        write_atomic(
            path.as_ref(),
            &Self::serialize_forest_versioned(bolt, model_version),
        )
    }

    /// Serializes a regression forest and writes it to `path`.
    pub fn write_regressor(bolt: &BoltRegressor, path: impl AsRef<Path>) -> io::Result<()> {
        write_atomic(path.as_ref(), &Self::serialize_regressor(bolt))
    }

    /// Serializes a regression forest with a stamped model version and
    /// writes it to `path`.
    pub fn write_regressor_versioned(
        bolt: &BoltRegressor,
        model_version: u32,
        path: impl AsRef<Path>,
    ) -> io::Result<()> {
        write_atomic(
            path.as_ref(),
            &Self::serialize_regressor_versioned(bolt, model_version),
        )
    }
}

/// Writes via a sibling temp file + rename so a serving process never maps a
/// half-written artifact (hot-swap safety).
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("blt.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn pred_bytes(universe: &bolt_forest::PredicateUniverse) -> Vec<u8> {
    let mut out = Vec::with_capacity(universe.len() * 8);
    for id in 0..universe.len() as u32 {
        let p = universe.predicate(id);
        out.extend_from_slice(&p.feature.to_le_bytes());
        out.extend_from_slice(&p.threshold.to_bits().to_le_bytes());
    }
    out
}

fn u64_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn u32_bytes(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn f64_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Lays out header + section table + aligned payloads and stamps CRCs.
fn assemble(model_kind: u8, flags: u8, model_version: u32, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let table_end = format::HEADER_LEN + sections.len() * format::SECTION_ENTRY_LEN;
    let mut descs = Vec::with_capacity(sections.len());
    let mut cursor = table_end;
    for (id, payload) in sections {
        cursor = align_up(cursor);
        descs.push(SectionDesc {
            id: *id,
            offset: cursor as u64,
            len: payload.len() as u64,
            crc32: crc32(payload),
        });
        cursor += payload.len();
    }
    let file_len = cursor;

    let mut out = vec![0u8; file_len];
    let header = Header {
        version: format::FORMAT_VERSION,
        model_kind,
        flags,
        section_count: sections.len() as u32,
        model_version,
        file_len: file_len as u64,
    };
    out[..format::HEADER_LEN].copy_from_slice(&header.to_bytes());
    for (i, desc) in descs.iter().enumerate() {
        let at = format::HEADER_LEN + i * format::SECTION_ENTRY_LEN;
        out[at..at + format::SECTION_ENTRY_LEN].copy_from_slice(&desc.to_bytes());
    }
    for (desc, (_, payload)) in descs.iter().zip(sections) {
        let at = desc.offset as usize;
        out[at..at + payload.len()].copy_from_slice(payload);
    }
    out
}
