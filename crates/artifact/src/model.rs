//! Model-level readers: structural validation of a mapped artifact and
//! zero-copy inference through the shared `bolt-core` kernel views.

use crate::artifact::Artifact;
use crate::cast::{cast_f64, cast_u32, cast_u64};
use crate::format::{self, section};
use crate::ArtifactError;
use bolt_bitpack::Mask;
use bolt_core::{
    simd, Aggregation, BatchScratch, BloomView, DictView, ForestView, TableView, EMPTY_SLOT_ENTRY,
};
use bolt_forest::PredicateUniverse;
use std::path::Path;

/// Parsed `META` section: the fixed-size scalars describing a model's shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelMeta {
    /// Predicate-universe size == dictionary scan width in bits.
    pub width: u32,
    /// Number of dictionary entries.
    pub n_entries: u32,
    /// Number of classes (0 for regressors).
    pub n_classes: u32,
    /// Number of trees in the source ensemble.
    pub n_trees: u32,
    /// Number of input features.
    pub n_features: u32,
    /// Bloom-filter probes per query (0 when no bloom section).
    pub bloom_n_hashes: u32,
    /// Aggregation byte (regressors: 0 = mean, 1 = sum).
    pub aggregation: u8,
    /// Recombined-table slot capacity (a power of two).
    pub table_capacity: u64,
}

const META_LEN: usize = 64;

fn invalid(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Invalid(msg.into())
}

fn parse_meta(artifact: &Artifact) -> Result<ModelMeta, ArtifactError> {
    let bytes = artifact.require(section::META)?;
    if bytes.len() != META_LEN {
        return Err(invalid(format!(
            "META must be {META_LEN} bytes, got {}",
            bytes.len()
        )));
    }
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    Ok(ModelMeta {
        width: u32_at(0),
        n_entries: u32_at(4),
        n_classes: u32_at(8),
        n_trees: u32_at(12),
        n_features: u32_at(16),
        bloom_n_hashes: u32_at(20),
        aggregation: bytes[24],
        table_capacity: u64::from_le_bytes(bytes[32..40].try_into().unwrap()),
    })
}

/// Reconstructs the predicate universe from the `PRED` section and proves
/// the round-trip preserves predicate ids (the encoding the dictionary's
/// masks were built against).
fn rebuild_universe(
    artifact: &Artifact,
    meta: &ModelMeta,
) -> Result<PredicateUniverse, ArtifactError> {
    let pred = cast_u32(artifact.require(section::PRED)?, "PRED")?;
    let width = meta.width as usize;
    if pred.len() != 2 * width {
        return Err(invalid(format!(
            "PRED holds {} words, expected {} (2 per predicate)",
            pred.len(),
            2 * width
        )));
    }
    let pairs = || pred.chunks_exact(2).map(|p| (p[0], f32::from_bits(p[1])));
    for (feature, threshold) in pairs() {
        if !threshold.is_finite() {
            return Err(invalid("PRED threshold is not finite"));
        }
        if feature >= meta.n_features {
            return Err(invalid(format!(
                "PRED feature {feature} out of range (n_features {})",
                meta.n_features
            )));
        }
    }
    let universe = PredicateUniverse::from_splits(pairs(), meta.n_features as usize);
    if universe.len() != width {
        return Err(invalid("PRED contains duplicate predicates"));
    }
    // Ids must land exactly where the file says: the dictionary's mask/key
    // bits index this ordering.
    for (id, (feature, threshold)) in pairs().enumerate() {
        let p = universe.predicate(id as u32);
        if p.feature != feature || p.threshold.to_bits() != threshold.to_bits() {
            return Err(invalid(
                "PRED is not in canonical (feature, threshold) order",
            ));
        }
    }
    Ok(universe)
}

/// Typed borrows of every kernel section. Construction is O(1) pointer
/// casts; [`validate`] proves the structural invariants once at load so the
/// per-call `view()` rebuild can safely `expect`.
struct RawSections<'a> {
    mask_words: &'a [u64],
    key_words: &'a [u64],
    /// Entry-blocked SIMD mirrors of the mask/key arrays; `None` on files
    /// written before the blocked layout existed (or for dictionaries with
    /// no full block), which then scan scalar.
    blk: Option<(&'a [u64], &'a [u64])>,
    uncommon_flat: &'a [u32],
    uncommon_offsets: &'a [u32],
    slot_entries: &'a [u32],
    slot_addrs: &'a [u64],
    vote_offsets: &'a [u32],
    vote_classes: &'a [u32],
    vote_weights: &'a [f64],
    bloom_words: Option<&'a [u64]>,
}

fn raw_sections(artifact: &Artifact) -> Result<RawSections<'_>, ArtifactError> {
    let has_bloom = artifact.header().flags & format::FLAG_HAS_BLOOM != 0;
    let bloom_section = artifact.section(section::BLOOM);
    if has_bloom != bloom_section.is_some() {
        return Err(invalid("bloom flag and BLOOM section presence disagree"));
    }
    let blk = match (
        artifact.section(section::DICT_MASK_BLK),
        artifact.section(section::DICT_KEY_BLK),
    ) {
        (Some(mask), Some(key)) => Some((
            cast_u64(mask, "DICT_MASK_BLK")?,
            cast_u64(key, "DICT_KEY_BLK")?,
        )),
        (None, None) => None,
        _ => {
            return Err(invalid(
                "DICT_MASK_BLK and DICT_KEY_BLK must be present together",
            ))
        }
    };
    Ok(RawSections {
        mask_words: cast_u64(artifact.require(section::DICT_MASK)?, "DICT_MASK")?,
        key_words: cast_u64(artifact.require(section::DICT_KEY)?, "DICT_KEY")?,
        blk,
        uncommon_flat: cast_u32(artifact.require(section::DICT_UNCOMMON)?, "DICT_UNCOMMON")?,
        uncommon_offsets: cast_u32(artifact.require(section::DICT_OFFSETS)?, "DICT_OFFSETS")?,
        slot_entries: cast_u32(artifact.require(section::TBL_SLOT_ENTRY)?, "TBL_SLOT_ENTRY")?,
        slot_addrs: cast_u64(artifact.require(section::TBL_SLOT_ADDR)?, "TBL_SLOT_ADDR")?,
        vote_offsets: cast_u32(artifact.require(section::TBL_VOTE_OFF)?, "TBL_VOTE_OFF")?,
        vote_classes: cast_u32(artifact.require(section::TBL_VOTE_CLASS)?, "TBL_VOTE_CLASS")?,
        vote_weights: cast_f64(
            artifact.require(section::TBL_VOTE_WEIGHT)?,
            "TBL_VOTE_WEIGHT",
        )?,
        bloom_words: bloom_section.map(|b| cast_u64(b, "BLOOM")).transpose()?,
    })
}

/// Structural validation of everything the scan kernels assume, so the views
/// can never panic or read out of bounds on data that passed here. Runs once
/// at load — O(model size), same cost class as the CRC pass.
fn validate(raw: &RawSections<'_>, meta: &ModelMeta) -> Result<(), ArtifactError> {
    let width = meta.width as usize;
    let n_entries = meta.n_entries as usize;
    let stride = width.div_ceil(64).max(1);

    // Dictionary shapes.
    let offs = raw.uncommon_offsets;
    if offs.len() != n_entries + 1 {
        return Err(invalid(format!(
            "DICT_OFFSETS has {} words, expected n_entries + 1 = {}",
            offs.len(),
            n_entries + 1
        )));
    }
    if offs[0] != 0 {
        return Err(invalid("DICT_OFFSETS must start at 0"));
    }
    for w in offs.windows(2) {
        if w[1] < w[0] {
            return Err(invalid("DICT_OFFSETS is not monotone"));
        }
        if w[1] - w[0] > 64 {
            return Err(invalid(
                "dictionary entry has more than 64 uncommon predicates",
            ));
        }
    }
    if *offs.last().unwrap() as usize != raw.uncommon_flat.len() {
        return Err(invalid("DICT_OFFSETS does not cover DICT_UNCOMMON"));
    }
    if raw.uncommon_flat.iter().any(|&id| id as usize >= width) {
        return Err(invalid("DICT_UNCOMMON predicate id out of range"));
    }
    if raw.mask_words.len() != n_entries * stride || raw.key_words.len() != n_entries * stride {
        return Err(invalid(format!(
            "dictionary lanes hold {}/{} words, expected {} (n_entries x stride)",
            raw.mask_words.len(),
            raw.key_words.len(),
            n_entries * stride
        )));
    }

    // Blocked SIMD mirror: must be the exact interleave of the flat
    // arrays, word for word — otherwise a corrupted (or maliciously
    // crafted) file could make the SIMD scan diverge from the scalar
    // reference. O(n x stride), same cost class as the CRC pass.
    if let Some((blk_mask, blk_key)) = raw.blk {
        let expect = simd::blocked_len(n_entries, stride);
        if blk_mask.len() != expect || blk_key.len() != expect {
            return Err(invalid(format!(
                "blocked dictionary lanes hold {}/{} words, expected {expect}",
                blk_mask.len(),
                blk_key.len()
            )));
        }
        for block in 0..n_entries / simd::BLOCK {
            for lane in 0..simd::BLOCK {
                let entry = block * simd::BLOCK + lane;
                for w in 0..stride {
                    let at = (block * stride + w) * simd::BLOCK + lane;
                    if blk_mask[at] != raw.mask_words[entry * stride + w]
                        || blk_key[at] != raw.key_words[entry * stride + w]
                    {
                        return Err(invalid(format!(
                            "blocked dictionary lanes diverge from the flat \
                             arrays at entry {entry} word {w}"
                        )));
                    }
                }
            }
        }
    }

    // Recombined-table shapes. The probe loop terminates only if at least
    // one slot is empty (guaranteed by the writer's <= 50% load factor).
    let capacity = raw.slot_entries.len();
    if capacity as u64 != meta.table_capacity {
        return Err(invalid(
            "TBL_SLOT_ENTRY length disagrees with META capacity",
        ));
    }
    if capacity == 0 || !capacity.is_power_of_two() {
        return Err(invalid("table capacity must be a nonzero power of two"));
    }
    if raw.slot_addrs.len() != capacity {
        return Err(invalid("TBL_SLOT_ADDR length disagrees with capacity"));
    }
    if raw.vote_offsets.len() != capacity + 1 {
        return Err(invalid("TBL_VOTE_OFF must be capacity + 1 long"));
    }
    if raw.vote_offsets[0] != 0 {
        return Err(invalid("TBL_VOTE_OFF must start at 0"));
    }
    if raw.vote_offsets.windows(2).any(|w| w[1] < w[0]) {
        return Err(invalid("TBL_VOTE_OFF is not monotone"));
    }
    if *raw.vote_offsets.last().unwrap() as usize != raw.vote_classes.len() {
        return Err(invalid("TBL_VOTE_OFF does not cover TBL_VOTE_CLASS"));
    }
    if raw.vote_weights.len() != raw.vote_classes.len() {
        return Err(invalid("vote class/weight columns differ in length"));
    }
    let mut has_empty = false;
    for &entry in raw.slot_entries {
        if entry == EMPTY_SLOT_ENTRY {
            has_empty = true;
        } else if entry as usize >= n_entries {
            return Err(invalid(
                "table slot references a nonexistent dictionary entry",
            ));
        }
    }
    if !has_empty {
        return Err(invalid(
            "table has no empty slot; probing would not terminate",
        ));
    }
    if meta.n_classes > 0 && raw.vote_classes.iter().any(|&c| c >= meta.n_classes) {
        return Err(invalid("vote class out of range"));
    }

    // Bloom filter shape: the probe masks a 64-bit hash down with
    // `bit_mask`, which is only uniform when the bit count is a power of
    // two.
    if let Some(words) = raw.bloom_words {
        if words.is_empty() || !words.len().is_power_of_two() {
            return Err(invalid("BLOOM words must be a nonzero power of two"));
        }
        if !(1..=8).contains(&meta.bloom_n_hashes) {
            return Err(invalid(format!(
                "bloom n_hashes {} outside 1..=8",
                meta.bloom_n_hashes
            )));
        }
    }
    Ok(())
}

/// Builds the kernel views over validated sections. Infallible after
/// [`validate`]; the `TableView`/`DictView` constructors re-assert the O(1)
/// shape facts.
fn build_views<'a>(
    raw: &RawSections<'a>,
    meta: &ModelMeta,
) -> (DictView<'a>, TableView<'a>, Option<BloomView<'a>>) {
    let mut dict = DictView::new(
        meta.width as usize,
        raw.mask_words,
        raw.key_words,
        raw.uncommon_flat,
        raw.uncommon_offsets,
    );
    if let Some((blk_mask, blk_key)) = raw.blk {
        dict = dict.with_blocked(blk_mask, blk_key);
    }
    let table = TableView::new(
        (raw.slot_entries.len() - 1) as u64,
        raw.slot_entries,
        raw.slot_addrs,
        raw.vote_offsets,
        raw.vote_classes,
        raw.vote_weights,
    );
    let bloom = raw
        .bloom_words
        .map(|words| BloomView::new(words, words.len() as u64 * 64 - 1, meta.bloom_n_hashes));
    (dict, table, bloom)
}

/// A classification forest served directly from a mapped `BLT1` artifact.
///
/// Only the predicate universe (needed for input encoding) and the constant
/// votes are materialized on the heap; the dictionary, table, and bloom
/// filter are borrowed from the mapped file on every [`Self::view`] call —
/// no full-model heap copy ever happens.
pub struct MappedForest {
    artifact: Artifact,
    universe: PredicateUniverse,
    constant_votes: Vec<(u32, f64)>,
    meta: ModelMeta,
}

impl MappedForest {
    /// Maps and validates a classifier artifact at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::from_artifact(Artifact::map(path)?)
    }

    /// Validates an already-mapped artifact as a classifier.
    pub fn from_artifact(artifact: Artifact) -> Result<Self, ArtifactError> {
        if artifact.header().model_kind != format::KIND_CLASSIFIER {
            return Err(invalid("artifact is not a classifier"));
        }
        let meta = parse_meta(&artifact)?;
        if meta.n_classes == 0 {
            return Err(invalid("classifier must have at least one class"));
        }
        let universe = rebuild_universe(&artifact, &meta)?;
        let raw = raw_sections(&artifact)?;
        validate(&raw, &meta)?;
        let constant_votes = parse_constant_votes(&artifact, &meta)?;
        Ok(Self {
            artifact,
            universe,
            constant_votes,
            meta,
        })
    }

    /// The kernel view over the mapped bytes — the same [`ForestView`] an
    /// owned [`BoltForest`](bolt_core::BoltForest) produces, so every
    /// downstream scan is shared code and bit-identical.
    #[must_use]
    pub fn view(&self) -> ForestView<'_> {
        let raw = raw_sections(&self.artifact).expect("sections validated at load");
        let (dict, table, bloom) = build_views(&raw, &self.meta);
        ForestView::new(
            dict,
            table,
            bloom,
            &self.constant_votes,
            self.meta.n_classes as usize,
        )
    }

    /// Encodes a sample into predicate space.
    #[must_use]
    pub fn encode(&self, sample: &[f32]) -> Mask {
        self.universe.evaluate(sample)
    }

    /// Classifies one sample.
    #[must_use]
    pub fn classify(&self, sample: &[f32]) -> u32 {
        let bits = self.encode(sample);
        let mut votes = Vec::new();
        self.view().classify_bits_into(&bits, &mut votes)
    }

    /// Per-class vote totals for one sample (bit-identical to the owned
    /// engine's).
    #[must_use]
    pub fn votes(&self, sample: &[f32]) -> Vec<f64> {
        let bits = self.encode(sample);
        let mut votes = vec![0.0; self.meta.n_classes as usize];
        self.view().scan_votes_into(&bits, &mut votes, None);
        votes
    }

    /// Classifies a batch through the entry-major kernel.
    #[must_use]
    pub fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        let mut scratch =
            BatchScratch::for_shape(self.meta.width as usize, self.meta.n_classes as usize);
        self.view()
            .batch_votes_into(&self.universe, samples, &mut scratch);
        (0..samples.len()).map(|b| scratch.class(b)).collect()
    }

    /// Batched vote vectors pinned to an explicit kernel, left in the
    /// scratch arena — the differential harness's hook for sweeping every
    /// batched SIMD backend over mapped bytes regardless of `BOLT_KERNEL`.
    ///
    /// # Panics
    ///
    /// Panics if any sample is shorter than the universe's feature count or
    /// the scratch came from a differently-shaped model.
    pub fn batch_votes_with_kernel(
        &self,
        samples: &[&[f32]],
        kernel: simd::Kernel,
        scratch: &mut BatchScratch,
    ) {
        self.view()
            .batch_votes_into_with_kernel(&self.universe, samples, kernel, scratch);
    }

    /// A batch scratch shaped for this model (see
    /// [`BatchScratch::for_shape`]).
    #[must_use]
    pub fn batch_scratch(&self) -> BatchScratch {
        BatchScratch::for_shape(self.meta.width as usize, self.meta.n_classes as usize)
    }

    /// Sharded batched classification across scoped threads; results are
    /// identical to [`Self::classify_batch`] regardless of shard count.
    #[must_use]
    pub fn classify_batch_sharded(&self, samples: &[&[f32]], shards: usize) -> Vec<u32> {
        let shards = shards.clamp(1, samples.len().max(1));
        if shards <= 1 {
            return self.classify_batch(samples);
        }
        let chunk = samples.len().div_ceil(shards);
        let mut out = vec![0u32; samples.len()];
        crossbeam::scope(|scope| {
            for (shard_samples, shard_out) in samples.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move |_| {
                    shard_out.copy_from_slice(&self.classify_batch(shard_samples));
                });
            }
        })
        .expect("crossbeam scope");
        out
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.meta.n_classes as usize
    }

    /// Number of input features.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.meta.n_features as usize
    }

    /// The model-shape metadata from the `META` section.
    #[must_use]
    pub fn meta(&self) -> ModelMeta {
        self.meta
    }

    /// The reconstructed predicate universe.
    #[must_use]
    pub fn universe(&self) -> &PredicateUniverse {
        &self.universe
    }

    /// The underlying validated artifact.
    #[must_use]
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }
}

fn parse_constant_votes(
    artifact: &Artifact,
    meta: &ModelMeta,
) -> Result<Vec<(u32, f64)>, ArtifactError> {
    let bytes = artifact.require(section::CONST)?;
    if bytes.len() < 4 {
        return Err(invalid("CONST too short for its count field"));
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let expect = 4 + count * 4 + count * 8;
    if bytes.len() != expect {
        return Err(invalid(format!(
            "CONST length {} does not match count {count} (expected {expect})",
            bytes.len()
        )));
    }
    let mut votes = Vec::with_capacity(count);
    for i in 0..count {
        let class = u32::from_le_bytes(bytes[4 + i * 4..8 + i * 4].try_into().unwrap());
        if class >= meta.n_classes {
            return Err(invalid("CONST vote class out of range"));
        }
        let at = 4 + count * 4 + i * 8;
        let weight = f64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        votes.push((class, weight));
    }
    Ok(votes)
}

/// A regression forest served directly from a mapped `BLT1` artifact.
pub struct MappedRegressor {
    artifact: Artifact,
    universe: PredicateUniverse,
    constant_sum: f64,
    base: f64,
    aggregation: Aggregation,
    meta: ModelMeta,
}

impl MappedRegressor {
    /// Maps and validates a regressor artifact at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::from_artifact(Artifact::map(path)?)
    }

    /// Validates an already-mapped artifact as a regressor.
    pub fn from_artifact(artifact: Artifact) -> Result<Self, ArtifactError> {
        if artifact.header().model_kind != format::KIND_REGRESSOR {
            return Err(invalid("artifact is not a regressor"));
        }
        let meta = parse_meta(&artifact)?;
        let universe = rebuild_universe(&artifact, &meta)?;
        let raw = raw_sections(&artifact)?;
        validate(&raw, &meta)?;
        let aggregation = match meta.aggregation {
            0 => Aggregation::Mean,
            1 => Aggregation::Sum,
            other => return Err(invalid(format!("unknown aggregation byte {other}"))),
        };
        if aggregation == Aggregation::Mean && meta.n_trees == 0 {
            return Err(invalid("mean aggregation needs at least one tree"));
        }
        let bytes = artifact.require(section::CONST)?;
        if bytes.len() != 16 {
            return Err(invalid(format!(
                "regressor CONST must be 16 bytes, got {}",
                bytes.len()
            )));
        }
        let constant_sum = f64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let base = f64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if !constant_sum.is_finite() || !base.is_finite() {
            return Err(invalid("regressor CONST scalars must be finite"));
        }
        Ok(Self {
            artifact,
            universe,
            constant_sum,
            base,
            aggregation,
            meta,
        })
    }

    /// The kernel view over the mapped bytes (regressor form: no constant
    /// votes, zero classes).
    #[must_use]
    pub fn view(&self) -> ForestView<'_> {
        let raw = raw_sections(&self.artifact).expect("sections validated at load");
        let (dict, table, bloom) = build_views(&raw, &self.meta);
        ForestView::new(dict, table, bloom, &[], 0)
    }

    /// Predicts from an encoded input, replicating
    /// [`BoltRegressor::predict_bits`](bolt_core::BoltRegressor::predict_bits)
    /// exactly (same accumulation order, same final cast).
    #[must_use]
    pub fn predict_bits(&self, bits: &Mask) -> f32 {
        let sum = self.view().accumulate_weights(bits, self.constant_sum);
        match self.aggregation {
            Aggregation::Mean => (sum / self.meta.n_trees as f64) as f32,
            Aggregation::Sum => (self.base + sum) as f32,
        }
    }

    /// Predicts the target value for one sample.
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> f32 {
        self.predict_bits(&self.universe.evaluate(sample))
    }

    /// The model-shape metadata from the `META` section.
    #[must_use]
    pub fn meta(&self) -> ModelMeta {
        self.meta
    }

    /// The underlying validated artifact.
    #[must_use]
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }
}

/// Either kind of mapped model, dispatched on the header's `model_kind`.
pub enum MappedModel {
    /// A classification artifact.
    Forest(MappedForest),
    /// A regression artifact.
    Regressor(MappedRegressor),
}

impl MappedModel {
    /// Maps `path` and validates it as whichever kind its header declares.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Self::from_artifact(Artifact::map(path)?)
    }

    /// Validates an already-mapped artifact as its declared kind.
    pub fn from_artifact(artifact: Artifact) -> Result<Self, ArtifactError> {
        match artifact.header().model_kind {
            format::KIND_CLASSIFIER => MappedForest::from_artifact(artifact).map(Self::Forest),
            format::KIND_REGRESSOR => MappedRegressor::from_artifact(artifact).map(Self::Regressor),
            other => Err(ArtifactError::UnsupportedKind(other)),
        }
    }

    /// The model-shape metadata.
    #[must_use]
    pub fn meta(&self) -> ModelMeta {
        match self {
            Self::Forest(m) => m.meta(),
            Self::Regressor(m) => m.meta(),
        }
    }

    /// The underlying validated artifact.
    #[must_use]
    pub fn artifact(&self) -> &Artifact {
        match self {
            Self::Forest(m) => m.artifact(),
            Self::Regressor(m) => m.artifact(),
        }
    }
}
