//! Zero-copy model artifact store for Bolt (`BLT1` format).
//!
//! A compiled [`BoltForest`](bolt_core::BoltForest) or
//! [`BoltRegressor`](bolt_core::BoltRegressor) serializes into a single
//! `.blt` file ([`ArtifactWriter`]) whose sections are exactly the arrays
//! the scan kernels consume: dictionary mask/key lane words, the flattened
//! uncommon-predicate gather, the recombined table's slot and vote columns,
//! and the bloom filter words. Loading ([`Artifact::map`]) memory-maps the
//! file, validates header and per-section CRCs plus the structural
//! invariants the kernels rely on, and then builds the same
//! [`ForestView`](bolt_core::ForestView) the in-memory engine uses —
//! borrowed straight from the mapped bytes, so inference never copies the
//! model onto the heap and results are bit-identical by construction.
//!
//! ```no_run
//! use bolt_artifact::{ArtifactWriter, MappedForest};
//! # fn demo(bolt: &bolt_core::BoltForest) -> Result<(), Box<dyn std::error::Error>> {
//! ArtifactWriter::write_forest(bolt, "model.blt")?;
//! let mapped = MappedForest::open("model.blt")?;   // mmap, no heap copy
//! assert_eq!(mapped.classify(&[0.0; 8]), bolt.classify(&[0.0; 8]));
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

mod artifact;
mod cast;
pub mod format;
mod model;
mod writer;

pub use artifact::{section_name, Artifact};
pub use model::{MappedForest, MappedModel, MappedRegressor, ModelMeta};
pub use writer::ArtifactWriter;

use std::fmt;

/// Why a `.blt` file could not be loaded.
///
/// Every failure mode is a structured error — hostile or corrupt bytes must
/// never panic the loader and must never be silently accepted (the fuzz leg
/// in `tests/hostile.rs` pins this).
#[derive(Debug)]
pub enum ArtifactError {
    /// The underlying file could not be opened, read, or mapped.
    Io(std::io::Error),
    /// The file does not start with the `BLT1` magic.
    NotBlt,
    /// The header parsed but announces a format version this reader does
    /// not speak. Version negotiation is deliberately blunt: v1 readers
    /// accept v1 files only; additive changes must bump the version.
    UnsupportedVersion(u16),
    /// The header's `model_kind` byte is not a known kind.
    UnsupportedKind(u8),
    /// A CRC-32 check failed (`what` names the header or section).
    ChecksumMismatch(&'static str),
    /// The file is shorter than its own header or section table claims.
    Truncated {
        /// Bytes required by the header / section table.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A structural invariant the scan kernels rely on does not hold
    /// (non-monotone offsets, out-of-range ids, bad shapes...).
    Invalid(String),
    /// The host cannot run the zero-copy path (e.g. big-endian).
    UnsupportedHost(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "artifact i/o error: {e}"),
            Self::NotBlt => write!(f, "not a BLT1 artifact (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported BLT format version {v} (reader speaks {})",
                    format::FORMAT_VERSION
                )
            }
            Self::UnsupportedKind(k) => write!(f, "unknown model kind {k}"),
            Self::ChecksumMismatch(what) => write!(f, "checksum mismatch in {what}"),
            Self::Truncated { needed, actual } => {
                write!(f, "artifact truncated: need {needed} bytes, have {actual}")
            }
            Self::Invalid(msg) => write!(f, "invalid artifact: {msg}"),
            Self::UnsupportedHost(msg) => write!(f, "unsupported host: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
