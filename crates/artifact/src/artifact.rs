//! The raw mapped artifact: header + section table parsing and integrity
//! validation, independent of model semantics.

use crate::cast::check_little_endian;
use crate::format::{self, crc32, section, Header, SectionDesc};
use crate::ArtifactError;
use std::path::Path;

/// A memory-mapped (or heap-backed) `BLT1` file whose header, section table,
/// and per-section checksums have been verified.
///
/// This type owns the bytes and answers "where is section N"; model-level
/// structural validation lives in [`MappedForest`](crate::MappedForest) /
/// [`MappedRegressor`](crate::MappedRegressor), which borrow section slices
/// from here to build kernel views.
pub struct Artifact {
    data: mmap::Mmap,
    header: Header,
    sections: Vec<SectionDesc>,
}

/// Upper bound on `section_count` — far above anything v1 writes, small
/// enough that a hostile header can't force a large allocation.
const MAX_SECTIONS: u32 = 1024;

impl Artifact {
    /// Opens and memory-maps `path`, validating magic, version, header CRC,
    /// section-table bounds, and every section's CRC-32.
    pub fn map(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let mut file = std::fs::File::open(path.as_ref())?;
        let data = mmap::Mmap::map(&mut file)?;
        Self::from_mmap(data)
    }

    /// Validates an in-memory byte buffer (copied into an aligned buffer).
    /// Used by tests and network paths; files should prefer [`Self::map`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        Self::from_mmap(mmap::Mmap::from_bytes(bytes))
    }

    fn from_mmap(data: mmap::Mmap) -> Result<Self, ArtifactError> {
        check_little_endian()?;
        let bytes: &[u8] = &data;
        if bytes.len() < format::HEADER_LEN {
            if bytes.len() < 4 || bytes[0..4] != format::MAGIC {
                return Err(ArtifactError::NotBlt);
            }
            return Err(ArtifactError::Truncated {
                needed: format::HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        let head: &[u8; format::HEADER_LEN] = bytes[..format::HEADER_LEN].try_into().unwrap();
        if head[0..4] != format::MAGIC {
            return Err(ArtifactError::NotBlt);
        }
        let header = Header::from_bytes(head).ok_or(ArtifactError::ChecksumMismatch("header"))?;
        if header.version != format::FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(header.version));
        }
        if header.model_kind != format::KIND_CLASSIFIER
            && header.model_kind != format::KIND_REGRESSOR
        {
            return Err(ArtifactError::UnsupportedKind(header.model_kind));
        }
        if header.flags & !format::FLAG_HAS_BLOOM != 0 {
            return Err(ArtifactError::Invalid(format!(
                "unknown header flags {:#04x}",
                header.flags
            )));
        }
        if header.file_len != bytes.len() as u64 {
            // Both directions are fatal: shorter means truncation, longer
            // means trailing bytes no checksum covers.
            return Err(ArtifactError::Truncated {
                needed: header.file_len,
                actual: bytes.len() as u64,
            });
        }
        if header.section_count > MAX_SECTIONS {
            return Err(ArtifactError::Invalid(format!(
                "section count {} exceeds limit {MAX_SECTIONS}",
                header.section_count
            )));
        }
        let table_end = format::HEADER_LEN as u64
            + u64::from(header.section_count) * format::SECTION_ENTRY_LEN as u64;
        if table_end > bytes.len() as u64 {
            return Err(ArtifactError::Truncated {
                needed: table_end,
                actual: bytes.len() as u64,
            });
        }

        let mut sections = Vec::with_capacity(header.section_count as usize);
        for i in 0..header.section_count as usize {
            let at = format::HEADER_LEN + i * format::SECTION_ENTRY_LEN;
            let entry: &[u8; format::SECTION_ENTRY_LEN] = bytes[at..at + format::SECTION_ENTRY_LEN]
                .try_into()
                .unwrap();
            let desc = SectionDesc::from_bytes(entry);
            let end = desc
                .offset
                .checked_add(desc.len)
                .ok_or_else(|| ArtifactError::Invalid("section range overflows".into()))?;
            if end > bytes.len() as u64 {
                return Err(ArtifactError::Truncated {
                    needed: end,
                    actual: bytes.len() as u64,
                });
            }
            if !(desc.offset as usize).is_multiple_of(format::SECTION_ALIGN) {
                return Err(ArtifactError::Invalid(format!(
                    "section {} payload at offset {} is not {}-byte aligned",
                    section_name(desc.id),
                    desc.offset,
                    format::SECTION_ALIGN
                )));
            }
            if sections.iter().any(|s: &SectionDesc| s.id == desc.id) {
                return Err(ArtifactError::Invalid(format!(
                    "duplicate section {}",
                    section_name(desc.id)
                )));
            }
            let payload = &bytes[desc.offset as usize..end as usize];
            if crc32(payload) != desc.crc32 {
                return Err(ArtifactError::ChecksumMismatch(section_name(desc.id)));
            }
            sections.push(desc);
        }
        Ok(Self {
            data,
            header,
            sections,
        })
    }

    /// The parsed header.
    #[must_use]
    pub fn header(&self) -> Header {
        self.header
    }

    /// The validated section descriptors, in file order.
    #[must_use]
    pub fn sections(&self) -> &[SectionDesc] {
        &self.sections
    }

    /// The full artifact bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Whether the bytes come from a real OS memory map (vs. the aligned
    /// heap fallback used on non-unix hosts and for in-memory buffers).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Borrowed payload of section `id`, if present.
    #[must_use]
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.id == id)
            .map(|s| &self.bytes()[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// Payload of a section this model kind requires.
    pub fn require(&self, id: u32) -> Result<&[u8], ArtifactError> {
        self.section(id)
            .ok_or_else(|| ArtifactError::Invalid(format!("missing section {}", section_name(id))))
    }
}

/// Human name for a section id (for error messages and `boltc inspect`).
#[must_use]
pub fn section_name(id: u32) -> &'static str {
    match id {
        section::META => "META",
        section::PRED => "PRED",
        section::DICT_MASK => "DICT_MASK",
        section::DICT_KEY => "DICT_KEY",
        section::DICT_UNCOMMON => "DICT_UNCOMMON",
        section::DICT_OFFSETS => "DICT_OFFSETS",
        section::TBL_SLOT_ENTRY => "TBL_SLOT_ENTRY",
        section::TBL_SLOT_ADDR => "TBL_SLOT_ADDR",
        section::TBL_VOTE_OFF => "TBL_VOTE_OFF",
        section::TBL_VOTE_CLASS => "TBL_VOTE_CLASS",
        section::TBL_VOTE_WEIGHT => "TBL_VOTE_WEIGHT",
        section::BLOOM => "BLOOM",
        section::CONST => "CONST",
        section::DICT_MASK_BLK => "DICT_MASK_BLK",
        section::DICT_KEY_BLK => "DICT_KEY_BLK",
        _ => "UNKNOWN",
    }
}
