//! On-disk constants and helpers for the `BLT1` artifact format.
//!
//! A `.blt` file is a fixed little-endian header, a table of section
//! descriptors, and then the section payloads, each padded so its payload
//! starts on a 64-byte boundary:
//!
//! ```text
//! offset 0    +----------------------------------------------+
//!             | header (64 bytes)                            |
//!             |   magic "BLT1" | version | kind | flags      |
//!             |   section_count | file_len | header_crc      |
//! offset 64   +----------------------------------------------+
//!             | section table (32 bytes per section)         |
//!             |   { id, offset, len, crc32 } x section_count |
//! align 64    +----------------------------------------------+
//!             | section payloads, each 64-byte aligned,      |
//!             | covered by its descriptor's crc32            |
//!             +----------------------------------------------+
//! ```
//!
//! All multi-byte fields are little-endian. The header CRC is computed over
//! the 64 header bytes with the `header_crc` field zeroed.

/// File magic: ASCII `BLT1`.
pub const MAGIC: [u8; 4] = *b"BLT1";
/// Current (and only) format version.
pub const FORMAT_VERSION: u16 = 1;
/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 64;
/// Size of one section-table entry in bytes.
pub const SECTION_ENTRY_LEN: usize = 32;
/// Every section payload starts on this alignment.
pub const SECTION_ALIGN: usize = 64;

/// Byte offset of the `header_crc` field inside the header.
pub const HEADER_CRC_OFFSET: usize = 16;

/// `model_kind` header value for a classification forest.
pub const KIND_CLASSIFIER: u8 = 1;
/// `model_kind` header value for a regression forest.
pub const KIND_REGRESSOR: u8 = 2;

/// Header flag bit: the artifact carries a bloom filter section.
pub const FLAG_HAS_BLOOM: u8 = 1 << 0;

/// Section identifiers. Unknown ids are tolerated by readers (skipped) so
/// future minor additions don't break old loaders; *missing* required ids
/// are an error.
pub mod section {
    /// Fixed-size model metadata (counts, widths, aggregation...).
    pub const META: u32 = 1;
    /// Predicate universe: `(feature: u32, threshold_bits: u32)` pairs.
    pub const PRED: u32 = 2;
    /// Dictionary mask lane words (`u64`).
    pub const DICT_MASK: u32 = 3;
    /// Dictionary key lane words (`u64`).
    pub const DICT_KEY: u32 = 4;
    /// Flattened uncommon predicate ids (`u32`).
    pub const DICT_UNCOMMON: u32 = 5;
    /// Per-entry offsets into `DICT_UNCOMMON` (`u32`, `n_entries + 1`).
    pub const DICT_OFFSETS: u32 = 6;
    /// Recombined table: owning entry id per slot (`u32`).
    pub const TBL_SLOT_ENTRY: u32 = 7;
    /// Recombined table: address per slot (`u64`).
    pub const TBL_SLOT_ADDR: u32 = 8;
    /// Recombined table: vote-range offsets per slot (`u32`, `capacity + 1`).
    pub const TBL_VOTE_OFF: u32 = 9;
    /// Recombined table: concatenated vote classes (`u32`).
    pub const TBL_VOTE_CLASS: u32 = 10;
    /// Recombined table: concatenated vote weights (`f64`).
    pub const TBL_VOTE_WEIGHT: u32 = 11;
    /// Bloom filter words (`u64`); present iff `FLAG_HAS_BLOOM`.
    pub const BLOOM: u32 = 12;
    /// Constant votes / regressor scalars; small, copied to the heap at load.
    pub const CONST: u32 = 13;
    /// Entry-blocked mask words for the SIMD scan (`u64`): the
    /// [`bolt_core::simd::interleave_blocked`] image of [`DICT_MASK`].
    /// Optional — old files without it (and dictionaries with fewer than
    /// one full block) load fine and scan via the scalar path, so the
    /// format version stays unchanged.
    pub const DICT_MASK_BLK: u32 = 14;
    /// Entry-blocked key words for the SIMD scan (`u64`); present iff
    /// [`DICT_MASK_BLK`] is.
    pub const DICT_KEY_BLK: u32 = 15;
}

/// One entry of the in-file section table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionDesc {
    /// Section identifier (see [`section`]).
    pub id: u32,
    /// Absolute byte offset of the payload from the start of the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// IEEE CRC-32 of the payload bytes.
    pub crc32: u32,
}

impl SectionDesc {
    /// Serializes this descriptor into its 32-byte on-disk form.
    pub fn to_bytes(self) -> [u8; SECTION_ENTRY_LEN] {
        let mut out = [0u8; SECTION_ENTRY_LEN];
        out[0..4].copy_from_slice(&self.id.to_le_bytes());
        // bytes 4..8 reserved (zero)
        out[8..16].copy_from_slice(&self.offset.to_le_bytes());
        out[16..24].copy_from_slice(&self.len.to_le_bytes());
        out[24..28].copy_from_slice(&self.crc32.to_le_bytes());
        // bytes 28..32 reserved (zero)
        out
    }

    /// Parses a descriptor from its 32-byte on-disk form.
    pub fn from_bytes(bytes: &[u8; SECTION_ENTRY_LEN]) -> Self {
        Self {
            id: u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            offset: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            len: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
            crc32: u32::from_le_bytes(bytes[24..28].try_into().unwrap()),
        }
    }
}

/// Parsed form of the fixed 64-byte header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version (currently always [`FORMAT_VERSION`]).
    pub version: u16,
    /// [`KIND_CLASSIFIER`] or [`KIND_REGRESSOR`].
    pub model_kind: u8,
    /// Flag bits ([`FLAG_HAS_BLOOM`]).
    pub flags: u8,
    /// Number of entries in the section table.
    pub section_count: u32,
    /// Deployment version of the *model* (not the format): the `V` in a
    /// model store's `NAME@V.blt` naming, stamped by `boltc compile
    /// --model-version`. Stored in previously-reserved header bytes, so
    /// pre-versioning files read back as 0 ("unversioned") and the format
    /// version stays [`FORMAT_VERSION`].
    pub model_version: u32,
    /// Total file length in bytes, for truncation detection.
    pub file_len: u64,
}

impl Header {
    /// Serializes the header, computing and embedding `header_crc`.
    pub fn to_bytes(self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..6].copy_from_slice(&self.version.to_le_bytes());
        out[6] = self.model_kind;
        out[7] = self.flags;
        out[8..12].copy_from_slice(&self.section_count.to_le_bytes());
        out[12..16].copy_from_slice(&self.model_version.to_le_bytes());
        // header_crc at 16..20 is zero while hashing
        out[24..32].copy_from_slice(&self.file_len.to_le_bytes());
        let crc = crc32(&out);
        out[HEADER_CRC_OFFSET..HEADER_CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and CRC-checks a header. Returns `None` on bad magic or CRC;
    /// version/kind checks are left to the caller so it can distinguish
    /// "not a BLT file" from "a BLT file we can't read".
    pub fn from_bytes(bytes: &[u8; HEADER_LEN]) -> Option<Self> {
        if bytes[0..4] != MAGIC {
            return None;
        }
        let stored_crc = u32::from_le_bytes(
            bytes[HEADER_CRC_OFFSET..HEADER_CRC_OFFSET + 4]
                .try_into()
                .unwrap(),
        );
        let mut scratch = *bytes;
        scratch[HEADER_CRC_OFFSET..HEADER_CRC_OFFSET + 4].fill(0);
        if crc32(&scratch) != stored_crc {
            return None;
        }
        Some(Self {
            version: u16::from_le_bytes(bytes[4..6].try_into().unwrap()),
            model_kind: bytes[6],
            flags: bytes[7],
            section_count: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            model_version: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            file_len: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
        })
    }
}

/// Rounds `offset` up to the next [`SECTION_ALIGN`] boundary.
pub fn align_up(offset: usize) -> usize {
    offset.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn header_round_trip() {
        let h = Header {
            version: FORMAT_VERSION,
            model_kind: KIND_CLASSIFIER,
            flags: FLAG_HAS_BLOOM,
            section_count: 13,
            model_version: 42,
            file_len: 123_456,
        };
        let bytes = h.to_bytes();
        assert_eq!(Header::from_bytes(&bytes), Some(h));
        // The model version rides in the previously-reserved bytes, so a
        // pre-versioning header (zeros there) parses as version 0.
        assert_eq!(bytes[12..16], 42u32.to_le_bytes());
        // A single flipped bit must break the header CRC.
        let mut bad = bytes;
        bad[9] ^= 0x40;
        assert_eq!(Header::from_bytes(&bad), None);
        // Bad magic is rejected outright.
        let mut not_blt = bytes;
        not_blt[0] = b'X';
        assert_eq!(Header::from_bytes(&not_blt), None);
    }

    #[test]
    fn section_desc_round_trip() {
        let d = SectionDesc {
            id: section::TBL_VOTE_WEIGHT,
            offset: 4096,
            len: 808,
            crc32: 0xDEAD_BEEF,
        };
        assert_eq!(SectionDesc::from_bytes(&d.to_bytes()), d);
    }

    #[test]
    fn align_up_is_monotone_and_aligned() {
        for off in [0usize, 1, 63, 64, 65, 127, 128, 4097] {
            let a = align_up(off);
            assert!(a >= off);
            assert_eq!(a % SECTION_ALIGN, 0);
            assert!(a - off < SECTION_ALIGN);
        }
    }
}
