//! Zero-copy reinterpretation of artifact bytes as typed slices.
//!
//! This is the only place in the workspace (besides the mmap shim) that uses
//! `unsafe`: turning a validated, aligned `&[u8]` region of the mapped file
//! into `&[u64]` / `&[u32]` / `&[f64]` without copying. Safety rests on three
//! checks done here, once, before any transmute:
//!
//! 1. **Endianness** — the file stores little-endian words; on a big-endian
//!    host the bytes would reinterpret wrongly, so loading fails with a
//!    structured error instead (no silent misclassification).
//! 2. **Alignment** — the slice base must be aligned for the target type.
//!    Sections are written 64-byte aligned and the mmap shim guarantees a
//!    64-byte-aligned base, so this can only fail on a corrupt section table.
//! 3. **Length** — the byte length must be an exact multiple of the target
//!    size.

use crate::ArtifactError;

/// Fails on big-endian hosts where zero-copy reinterpretation of the
/// little-endian file words would be incorrect.
pub fn check_little_endian() -> Result<(), ArtifactError> {
    if cfg!(target_endian = "little") {
        Ok(())
    } else {
        Err(ArtifactError::UnsupportedHost(
            "BLT1 zero-copy load requires a little-endian host".into(),
        ))
    }
}

macro_rules! cast_fn {
    ($name:ident, $ty:ty) => {
        /// Reinterprets `bytes` as a typed slice, validating alignment and
        /// length. `what` names the section for error messages.
        pub fn $name<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [$ty], ArtifactError> {
            let size = core::mem::size_of::<$ty>();
            if bytes.len() % size != 0 {
                return Err(ArtifactError::Invalid(format!(
                    "section {what}: length {} is not a multiple of {size}",
                    bytes.len()
                )));
            }
            if bytes.as_ptr() as usize % core::mem::align_of::<$ty>() != 0 {
                return Err(ArtifactError::Invalid(format!(
                    "section {what}: payload is not {}-byte aligned",
                    core::mem::align_of::<$ty>()
                )));
            }
            // SAFETY: alignment and length are checked above; u32/u64/f64
            // have no invalid bit patterns; the borrow keeps the backing
            // bytes alive and immutable for 'a. Endianness is checked once
            // at artifact load (`check_little_endian`).
            Ok(unsafe {
                core::slice::from_raw_parts(bytes.as_ptr() as *const $ty, bytes.len() / size)
            })
        }
    };
}

cast_fn!(cast_u64, u64);
cast_fn!(cast_u32, u32);
cast_fn!(cast_f64, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casts_aligned_bytes() {
        let words: Vec<u64> = vec![1, 2, 0xFFFF_FFFF_FFFF_FFFF];
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let buf = mmap::AlignedBuf::copy_from(&bytes);
        assert_eq!(cast_u64(&buf, "t").unwrap(), words.as_slice());
        let u32s = cast_u32(&buf, "t").unwrap();
        assert_eq!(u32s.len(), 6);
    }

    #[test]
    fn rejects_ragged_length() {
        let buf = mmap::AlignedBuf::copy_from(&[0u8; 12]);
        assert!(matches!(
            cast_u64(&buf, "t"),
            Err(ArtifactError::Invalid(_))
        ));
        assert!(cast_u32(&buf, "t").is_ok());
    }

    #[test]
    fn rejects_misaligned_base() {
        let buf = mmap::AlignedBuf::copy_from(&[0u8; 32]);
        // Offset by one byte: still a valid &[u8], but misaligned for u64.
        assert!(matches!(
            cast_u64(&buf[1..9], "t"),
            Err(ArtifactError::Invalid(_))
        ));
    }
}
