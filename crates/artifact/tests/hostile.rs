//! Hostile-bytes fuzz leg: `Artifact` loading must be total. Random
//! truncations and bit flips of a valid `.blt` file must either be rejected
//! with a structured [`ArtifactError`] or — when the damage lands in bytes
//! no kernel reads (inter-section padding) — load successfully and classify
//! exactly like the undamaged reference. Never a panic, never a silent
//! misclassification.

use bolt_artifact::{Artifact, ArtifactWriter, MappedForest, MappedModel};
use bolt_core::oracle;
use bolt_core::{BoltConfig, BoltForest};
use proptest::prelude::*;

struct Reference {
    bytes: Vec<u8>,
    inputs: Vec<Vec<f32>>,
    expected: Vec<u32>,
}

fn reference() -> &'static Reference {
    use std::sync::OnceLock;
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let case = oracle::served_case(23, 16);
        let bolt = BoltForest::compile(
            &case.forest,
            &BoltConfig::default().with_cluster_threshold(2),
        )
        .expect("compile");
        let bytes = ArtifactWriter::serialize_forest(&bolt);
        let expected = case.inputs.iter().map(|s| bolt.classify(s)).collect();
        Reference {
            bytes,
            inputs: case.inputs,
            expected,
        }
    })
}

/// The property every corruption must satisfy: structured rejection or
/// bit-identical behavior.
fn assert_total(bytes: &[u8], what: &str) {
    let loaded = Artifact::from_bytes(bytes).and_then(MappedForest::from_artifact);
    if let Ok(mapped) = loaded {
        let r = reference();
        for (sample, &expected) in r.inputs.iter().zip(&r.expected) {
            assert_eq!(
                mapped.classify(sample),
                expected,
                "{what}: accepted corruption changed a classification"
            );
        }
    }
    // Err(...) is the expected outcome: structured, no panic.
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_truncation_never_panics(frac in 0.0f64..1.0) {
        let r = reference();
        let keep = ((r.bytes.len() as f64) * frac) as usize;
        assert_total(&r.bytes[..keep], "truncation");
    }

    #[test]
    fn random_bit_flips_never_panic(
        flips in proptest::collection::vec((0usize..1_000_000, 0u8..8), 1..6)
    ) {
        let r = reference();
        let mut bytes = r.bytes.clone();
        for (pos, bit) in flips {
            let at = pos % bytes.len();
            bytes[at] ^= 1 << bit;
        }
        assert_total(&bytes, "bit flips");
    }

    #[test]
    fn flip_then_truncate_never_panics(
        pos in 0usize..1_000_000,
        bit in 0u8..8,
        frac in 0.0f64..1.0,
    ) {
        let r = reference();
        let mut bytes = r.bytes.clone();
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        let keep = ((bytes.len() as f64) * frac) as usize;
        assert_total(&bytes[..keep], "flip+truncate");
    }
}

#[test]
fn every_single_byte_flip_is_survived() {
    // Exhaustive over the header + section table and strided over payloads:
    // cheap, deterministic coverage alongside the random leg.
    let r = reference();
    let dense_prefix = 64 + 13 * 32;
    let mut positions: Vec<usize> = (0..dense_prefix.min(r.bytes.len())).collect();
    positions.extend((dense_prefix..r.bytes.len()).step_by(97));
    for at in positions {
        let mut bytes = r.bytes.clone();
        bytes[at] ^= 0x20;
        assert_total(&bytes, &format!("byte {at}"));
    }
}

#[test]
fn garbage_and_empty_inputs_are_rejected() {
    assert!(Artifact::from_bytes(&[]).is_err());
    assert!(Artifact::from_bytes(b"BLT").is_err());
    assert!(Artifact::from_bytes(&[0u8; 64]).is_err());
    assert!(Artifact::from_bytes(b"not a model at all, definitely json {}").is_err());
    // A JSON model file must not be mistaken for an artifact.
    assert!(MappedModel::open("/definitely/not/a/real/path.blt").is_err());
}

#[test]
fn version_bump_is_rejected_as_unsupported() {
    let r = reference();
    let mut bytes = r.bytes.clone();
    // Bump the version field and restamp the header CRC so only the version
    // gate can object.
    bytes[4] = 2;
    let crc_at = bolt_artifact::format::HEADER_CRC_OFFSET;
    bytes[crc_at..crc_at + 4].fill(0);
    let crc = bolt_artifact::format::crc32(&bytes[..64]);
    bytes[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    match Artifact::from_bytes(&bytes) {
        Err(bolt_artifact::ArtifactError::UnsupportedVersion(2)) => {}
        other => panic!("expected UnsupportedVersion(2), got {:?}", other.err()),
    }
}
