//! Artifact round-trip differential harness: a model served from a mapped
//! `.blt` file must classify **bit-identically** to the in-memory model it
//! was serialized from, across the full compile configuration matrix
//! (cluster threshold × bloom filtering × explanation payloads), on
//! adversarial inputs, through the per-sample, batched, and sharded paths.

use bolt_artifact::{Artifact, ArtifactWriter, MappedForest, MappedRegressor};
use bolt_core::oracle::{self, OracleRng};
use bolt_core::{BoltConfig, BoltForest, BoltRegressor, Kernel};
use bolt_forest::{RegressionConfig, RegressionDataset, RegressionForest};

/// The mapped artifact's blocked scan must report exactly the entries the
/// owned model's scalar scan reports, in the same order, under every
/// kernel the host supports. This is the artifact leg of the kernel
/// differential: owned-scalar vs mapped-scalar vs mapped-SIMD.
fn assert_mapped_kernels_match(bolt: &BoltForest, mapped: &MappedForest, sample: &[f32]) {
    let bits = bolt.encode(sample);
    let owned_view = bolt.view();
    let mapped_view = mapped.view();
    let mut reference = Vec::new();
    owned_view
        .dict()
        .scan_with_kernel(&bits, Kernel::Scalar, |id| reference.push(id));
    for kernel in Kernel::all_supported() {
        let mut got = Vec::new();
        mapped_view
            .dict()
            .scan_with_kernel(&bits, kernel, |id| got.push(id));
        assert_eq!(
            got, reference,
            "mapped {kernel} scan diverges from owned scalar"
        );
    }
}

/// The mapped artifact's *batched* path must produce vote vectors
/// bit-identical to the owned model's forced-scalar batched engine under
/// every batched kernel the host supports — the artifact leg of the
/// batched-kernel differential.
fn assert_mapped_batch_kernels_match(bolt: &BoltForest, mapped: &MappedForest, slices: &[&[f32]]) {
    let mut owned_scratch = bolt.batch_scratch();
    bolt.batch_votes_with_kernel(slices, Kernel::Scalar, &mut owned_scratch);
    let mut mapped_scratch = mapped.batch_scratch();
    for kernel in Kernel::all_supported() {
        mapped.batch_votes_with_kernel(slices, kernel, &mut mapped_scratch);
        for b in 0..slices.len() {
            assert_eq!(
                mapped_scratch.votes(b),
                owned_scratch.votes(b),
                "mapped batched {kernel} votes diverge from owned scalar on sample {b}"
            );
        }
    }
}

fn temp_blt(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "bolt-artifact-diff-{}-{tag}.blt",
        std::process::id()
    ));
    p
}

#[test]
fn classifier_round_trip_is_bit_identical_across_config_matrix() {
    for seed in [11u64, 427] {
        let case = oracle::served_case(seed, 40);
        for (i, config) in oracle::config_matrix().iter().enumerate() {
            let bolt = BoltForest::compile(&case.forest, config).expect("compile");
            let bytes = ArtifactWriter::serialize_forest(&bolt);
            let mapped =
                MappedForest::from_artifact(Artifact::from_bytes(&bytes).expect("valid artifact"))
                    .expect("valid classifier");

            assert_eq!(
                mapped.n_classes(),
                bolt.n_classes(),
                "seed {seed} config {i}"
            );
            let mut refs = Vec::with_capacity(case.inputs.len());
            for sample in &case.inputs {
                let expected = bolt.classify(sample);
                refs.push(expected);
                assert_eq!(mapped.classify(sample), expected, "seed {seed} config {i}");
                // Vote vectors bit-identical, not merely argmax-equal.
                let owned: Vec<u64> = bolt
                    .votes_for_bits(&bolt.encode(sample))
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let via_map: Vec<u64> = mapped.votes(sample).iter().map(|v| v.to_bits()).collect();
                assert_eq!(via_map, owned, "seed {seed} config {i}: vote bits diverge");
                assert_mapped_kernels_match(&bolt, &mapped, sample);
            }
            // The blocked SIMD mirror survives the round trip whenever the
            // owned dictionary carries one.
            assert_eq!(
                mapped.view().dict().has_blocked(),
                bolt.view().dict().has_blocked(),
                "seed {seed} config {i}: blocked layout lost in round trip"
            );
            let slices: Vec<&[f32]> = case.inputs.iter().map(Vec::as_slice).collect();
            assert_eq!(
                mapped.classify_batch(&slices),
                refs,
                "batched, seed {seed} config {i}"
            );
            assert_eq!(
                mapped.classify_batch_sharded(&slices, 3),
                refs,
                "sharded, seed {seed} config {i}"
            );
            assert_mapped_batch_kernels_match(&bolt, &mapped, &slices);
        }
    }
}

#[test]
fn file_mapped_load_matches_in_memory_load() {
    let case = oracle::served_case(7, 24);
    let bolt = BoltForest::compile(&case.forest, &BoltConfig::default()).expect("compile");
    let path = temp_blt("fileload");
    ArtifactWriter::write_forest(&bolt, &path).expect("write");
    let mapped = MappedForest::open(&path).expect("open");
    let in_mem = MappedForest::from_artifact(
        Artifact::from_bytes(&ArtifactWriter::serialize_forest(&bolt)).unwrap(),
    )
    .unwrap();
    for sample in &case.inputs {
        assert_eq!(mapped.classify(sample), bolt.classify(sample));
        assert_eq!(mapped.classify(sample), in_mem.classify(sample));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn regressor_round_trip_is_bit_identical() {
    let mut rng = OracleRng::new(91);
    let n_features = 5usize;
    let rows: Vec<Vec<f32>> = (0..80)
        .map(|_| (0..n_features).map(|_| rng.uniform(-4.0, 4.0)).collect())
        .collect();
    let targets: Vec<f32> = rows
        .iter()
        .map(|r| r[0] * 2.0 - r[1] + (r[2] * r[3]).sin())
        .collect();
    let data = RegressionDataset::from_rows(rows.clone(), targets).expect("dataset");
    let forest = RegressionForest::train(&data, &RegressionConfig::new(6).with_seed(3));

    for threshold in [1usize, 3, 6] {
        for bloom_bits in [0usize, 8] {
            let config = BoltConfig::default()
                .with_cluster_threshold(threshold)
                .with_bloom_bits_per_key(bloom_bits);
            let bolt = BoltRegressor::compile(&forest, &config).expect("compile");
            let path = temp_blt(&format!("reg-{threshold}-{bloom_bits}"));
            ArtifactWriter::write_regressor(&bolt, &path).expect("write");
            let mapped = MappedRegressor::open(&path).expect("open");
            for row in &rows {
                assert_eq!(
                    mapped.predict(row).to_bits(),
                    bolt.predict(row).to_bits(),
                    "threshold {threshold} bloom {bloom_bits}: prediction bits diverge"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn wrong_kind_is_rejected_with_structured_error() {
    let case = oracle::served_case(5, 4);
    let bolt = BoltForest::compile(&case.forest, &BoltConfig::default()).expect("compile");
    let bytes = ArtifactWriter::serialize_forest(&bolt);
    let artifact = Artifact::from_bytes(&bytes).expect("valid artifact");
    let err = match MappedRegressor::from_artifact(artifact) {
        Err(e) => e,
        Ok(_) => panic!("classifier accepted as a regressor"),
    };
    assert!(err.to_string().contains("not a regressor"), "{err}");
}
