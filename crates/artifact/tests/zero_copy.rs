//! Pins the zero-copy contract: the kernel views a [`MappedForest`] hands
//! out must borrow the artifact's bytes directly — no section is copied to
//! the heap on the mmap path.

use bolt_artifact::{ArtifactWriter, MappedForest};
use bolt_core::oracle;
use bolt_core::{BoltConfig, BoltForest};

fn in_range<T>(slice: &[T], bytes: &[u8]) -> bool {
    if slice.is_empty() {
        return true;
    }
    let start = slice.as_ptr() as usize;
    let end = start + std::mem::size_of_val(slice);
    let lo = bytes.as_ptr() as usize;
    let hi = lo + bytes.len();
    lo <= start && end <= hi
}

#[test]
fn mapped_views_borrow_the_file_bytes() {
    let case = oracle::served_case(31, 8);
    let bolt = BoltForest::compile(
        &case.forest,
        &BoltConfig::default().with_bloom_bits_per_key(8),
    )
    .expect("compile");
    let mut path = std::env::temp_dir();
    path.push(format!("bolt-artifact-zerocopy-{}.blt", std::process::id()));
    ArtifactWriter::write_forest(&bolt, &path).expect("write");

    let mapped = MappedForest::open(&path).expect("open");
    #[cfg(unix)]
    assert!(
        mapped.artifact().is_mapped(),
        "unix load must use a real mmap, not a heap copy"
    );

    let bytes = mapped.artifact().bytes();
    let view = mapped.view();
    let dict = view.dict();
    assert!(
        in_range(dict.mask_words(), bytes),
        "dict masks copied to heap"
    );
    assert!(
        in_range(dict.key_words(), bytes),
        "dict keys copied to heap"
    );
    assert!(
        in_range(dict.uncommon_flat(), bytes),
        "uncommon gather copied"
    );
    assert!(
        in_range(dict.uncommon_offsets(), bytes),
        "uncommon offsets copied"
    );
    let table = view.table();
    assert!(in_range(table.slot_entries(), bytes), "table slots copied");
    assert!(in_range(table.slot_addrs(), bytes), "table addrs copied");
    assert!(in_range(table.vote_offsets(), bytes), "vote offsets copied");
    assert!(in_range(table.vote_classes(), bytes), "vote classes copied");
    assert!(in_range(table.vote_weights(), bytes), "vote weights copied");
    let bloom = view.bloom().expect("config has a bloom filter");
    assert!(in_range(bloom.words(), bytes), "bloom words copied");

    // And the borrowed views actually classify.
    for sample in &case.inputs {
        assert_eq!(mapped.classify(sample), bolt.classify(sample));
    }
    drop(mapped);
    std::fs::remove_file(&path).ok();
}
