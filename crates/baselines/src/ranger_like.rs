//! Ranger-style inference: compact breadth-first node arrays and batching.
//!
//! Ranger (Wright & Ziegler) "processes trees in a breadth-first order, and
//! does not differ in principle from traditional tree execution; instead it
//! optimizes storage by avoiding copies of the original data [and] saving
//! node information in simple data structures" (§2.1). Its strength is
//! batched queries; as a single-sample service "the absence of lookup
//! tables hurts the performance".

use crate::InferenceEngine;
use bolt_forest::{NodeKind, RandomForest};

/// One compact node: 16 bytes, stored in a flat per-tree vector laid out in
/// breadth-first order (as Ranger's simple `std::vector` structures are).
#[derive(Clone, Copy, Debug)]
struct CompactNode {
    /// Split feature, or `u32::MAX` for leaves.
    feature: u32,
    /// Split threshold; for leaves, unused.
    threshold: f32,
    /// Left child index; for leaves, the class.
    left_or_class: u32,
    /// Right child index; for leaves, unused.
    right: u32,
}

const LEAF: u32 = u32::MAX;

/// A forest re-laid out Ranger-style.
#[derive(Clone, Debug)]
pub struct RangerLikeForest {
    /// Per-tree breadth-first node arrays.
    trees: Vec<Vec<CompactNode>>,
    n_classes: usize,
    n_features: usize,
}

impl RangerLikeForest {
    /// Re-lays a trained forest as breadth-first compact arrays.
    #[must_use]
    pub fn from_forest(forest: &RandomForest) -> Self {
        let trees = forest
            .trees()
            .iter()
            .map(|tree| {
                // Breadth-first renumbering of the arena.
                let nodes = tree.nodes();
                let mut order = Vec::with_capacity(nodes.len());
                let mut remap = vec![u32::MAX; nodes.len()];
                let mut queue = std::collections::VecDeque::from([0u32]);
                while let Some(id) = queue.pop_front() {
                    remap[id as usize] = order.len() as u32;
                    order.push(id);
                    if let NodeKind::Split { left, right, .. } = nodes[id as usize] {
                        queue.push_back(left);
                        queue.push_back(right);
                    }
                }
                order
                    .iter()
                    .map(|&id| match nodes[id as usize] {
                        NodeKind::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        } => CompactNode {
                            feature,
                            threshold,
                            left_or_class: remap[left as usize],
                            right: remap[right as usize],
                        },
                        NodeKind::Leaf { class } => CompactNode {
                            feature: LEAF,
                            threshold: 0.0,
                            left_or_class: class,
                            right: 0,
                        },
                    })
                    .collect()
            })
            .collect();
        Self {
            trees,
            n_classes: forest.n_classes(),
            n_features: forest.n_features(),
        }
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    fn tree_class(tree: &[CompactNode], sample: &[f32]) -> u32 {
        let mut node = tree[0];
        while node.feature != LEAF {
            let next = if sample[node.feature as usize] <= node.threshold {
                node.left_or_class
            } else {
                node.right
            };
            node = tree[next as usize];
        }
        node.left_or_class
    }

    /// Classifies a whole batch, amortizing per-call setup by iterating
    /// tree-major (every tree stays cache-resident while the batch streams
    /// through it) — the batching advantage §2.1 credits Ranger with.
    ///
    /// # Panics
    ///
    /// Panics if any sample is shorter than the feature count.
    #[must_use]
    pub fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        let mut votes = vec![vec![0u32; self.n_classes]; samples.len()];
        for tree in &self.trees {
            for (s, sample) in samples.iter().enumerate() {
                assert!(sample.len() >= self.n_features);
                let class = Self::tree_class(tree, sample);
                votes[s][class as usize] += 1;
            }
        }
        votes
            .iter()
            .map(|v| {
                let mut best = 0usize;
                for (i, &count) in v.iter().enumerate().skip(1) {
                    if count > v[best] {
                        best = i;
                    }
                }
                best as u32
            })
            .collect()
    }
}

impl InferenceEngine for RangerLikeForest {
    fn name(&self) -> &'static str {
        "Ranger"
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        assert!(
            sample.len() >= self.n_features,
            "sample has {} features, forest expects {}",
            sample.len(),
            self.n_features
        );
        let mut votes = vec![0u32; self.n_classes];
        for tree in &self.trees {
            votes[Self::tree_class(tree, sample) as usize] += 1;
        }
        let mut best = 0usize;
        for (i, &count) in votes.iter().enumerate().skip(1) {
            if count > votes[best] {
                best = i;
            }
        }
        best as u32
    }

    fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        Self::classify_batch(self, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{Dataset, ForestConfig};

    fn fixture() -> (Dataset, RandomForest, RangerLikeForest) {
        let rows: Vec<Vec<f32>> = (0..90)
            .map(|i| vec![(i % 9) as f32, (i % 4) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 4.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(6).with_max_height(4).with_seed(19),
        );
        let engine = RangerLikeForest::from_forest(&forest);
        (data, forest, engine)
    }

    #[test]
    fn equivalent_to_source_forest() {
        let (data, forest, engine) = fixture();
        for (sample, _) in data.iter() {
            assert_eq!(engine.classify(sample), forest.predict(sample));
        }
    }

    #[test]
    fn batch_matches_single_sample_path() {
        let (data, _, engine) = fixture();
        let samples: Vec<&[f32]> = (0..data.len()).map(|i| data.sample(i)).collect();
        let batched = engine.classify_batch(&samples);
        for (i, &class) in batched.iter().enumerate() {
            assert_eq!(class, engine.classify(samples[i]));
        }
    }

    #[test]
    fn breadth_first_root_is_first() {
        let (_, forest, engine) = fixture();
        assert_eq!(engine.n_trees(), forest.n_trees());
        // The first node of each compact tree must behave like the root.
        for (tree, compact) in forest.trees().iter().zip(&engine.trees) {
            match tree.nodes()[0] {
                NodeKind::Split { feature, .. } => assert_eq!(compact[0].feature, feature),
                NodeKind::Leaf { class } => {
                    assert_eq!(compact[0].feature, LEAF);
                    assert_eq!(compact[0].left_or_class, class);
                }
            }
        }
    }

    #[test]
    fn name_matches_figures() {
        let (_, _, engine) = fixture();
        assert_eq!(engine.name(), "Ranger");
    }
}
