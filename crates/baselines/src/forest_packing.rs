//! Forest-Packing-style inference (Browne et al., SDM '19).
//!
//! Forest Packing "restructures trees so that hot paths can be processed in
//! one access to processor cache ... storing trees in depth-first order.
//! Nodes in the same path are loaded into the same cache line ... paths are
//! organized by how frequently they are accessed in testing data" (§2 of
//! the Bolt paper). This engine reproduces that layout:
//!
//! * node visit frequencies are estimated from a calibration dataset,
//! * each tree is serialized depth-first with the *hot* child placed
//!   immediately after its parent (so the hot path is a straight run of
//!   consecutive nodes — implicit next-node, no pointer for the hot edge),
//! * all trees live in one contiguous arena of 16-byte nodes.

use crate::InferenceEngine;
use bolt_forest::{Dataset, NodeKind, RandomForest};

/// A packed node: the hot child is implicitly `self + 1`; only the cold
/// child needs an explicit index.
#[derive(Clone, Copy, Debug)]
struct PackedNode {
    /// Split feature, or `u32::MAX` for leaves.
    feature: u32,
    /// Split threshold.
    threshold: f32,
    /// Arena index of the cold child; for leaves, the class.
    cold_or_class: u32,
    /// Whether the hot (inline) child is the *left* (`<=`) branch.
    hot_is_left: bool,
}

const LEAF: u32 = u32::MAX;

/// A forest packed into one depth-first, hot-path-first arena.
#[derive(Clone, Debug)]
pub struct ForestPackingForest {
    arena: Vec<PackedNode>,
    roots: Vec<u32>,
    n_classes: usize,
    n_features: usize,
}

impl ForestPackingForest {
    /// Packs a trained forest, using `calibration` to estimate per-node hit
    /// frequencies (Forest Packing uses testing data for this, which the
    /// Bolt paper critiques).
    ///
    /// # Panics
    ///
    /// Panics if `calibration` has fewer features than the forest expects.
    #[must_use]
    pub fn from_forest(forest: &RandomForest, calibration: &Dataset) -> Self {
        let mut arena = Vec::new();
        let mut roots = Vec::with_capacity(forest.n_trees());
        for tree in forest.trees() {
            // Count how often each node is visited by calibration samples.
            let nodes = tree.nodes();
            let mut hits = vec![0u64; nodes.len()];
            for (sample, _) in calibration.iter() {
                let mut id = 0u32;
                loop {
                    hits[id as usize] += 1;
                    match nodes[id as usize] {
                        NodeKind::Leaf { .. } => break,
                        NodeKind::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        } => {
                            id = if sample[feature as usize] <= threshold {
                                left
                            } else {
                                right
                            };
                        }
                    }
                }
            }
            roots.push(arena.len() as u32);
            pack_depth_first(nodes, &hits, 0, &mut arena);
        }
        Self {
            arena,
            roots,
            n_classes: forest.n_classes(),
            n_features: forest.n_features(),
        }
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total packed nodes across trees.
    #[must_use]
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Arena bytes (16 bytes per node).
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<PackedNode>()
    }

    fn tree_class(&self, root: u32, sample: &[f32]) -> u32 {
        let mut idx = root;
        loop {
            let node = self.arena[idx as usize];
            if node.feature == LEAF {
                return node.cold_or_class;
            }
            let goes_left = sample[node.feature as usize] <= node.threshold;
            idx = if goes_left == node.hot_is_left {
                idx + 1 // hot path: the very next node
            } else {
                node.cold_or_class
            };
        }
    }
}

/// Serializes the subtree at `id` depth-first with the hot child inline.
/// Returns the arena index of the serialized node.
fn pack_depth_first(nodes: &[NodeKind], hits: &[u64], id: u32, arena: &mut Vec<PackedNode>) -> u32 {
    let my_index = arena.len() as u32;
    match nodes[id as usize] {
        NodeKind::Leaf { class } => {
            arena.push(PackedNode {
                feature: LEAF,
                threshold: 0.0,
                cold_or_class: class,
                hot_is_left: false,
            });
        }
        NodeKind::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let hot_is_left = hits[left as usize] >= hits[right as usize];
            let (hot, cold) = if hot_is_left {
                (left, right)
            } else {
                (right, left)
            };
            // Reserve our slot, then lay the hot subtree immediately after
            // so the hot path is a consecutive run.
            arena.push(PackedNode {
                feature,
                threshold,
                cold_or_class: 0, // patched below
                hot_is_left,
            });
            let hot_index = pack_depth_first(nodes, hits, hot, arena);
            debug_assert_eq!(hot_index, my_index + 1);
            let cold_index = pack_depth_first(nodes, hits, cold, arena);
            arena[my_index as usize].cold_or_class = cold_index;
        }
    }
    my_index
}

impl InferenceEngine for ForestPackingForest {
    fn name(&self) -> &'static str {
        "FP"
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        assert!(
            sample.len() >= self.n_features,
            "sample has {} features, forest expects {}",
            sample.len(),
            self.n_features
        );
        let mut votes = vec![0u32; self.n_classes];
        for &root in &self.roots {
            votes[self.tree_class(root, sample) as usize] += 1;
        }
        let mut best = 0usize;
        for (i, &count) in votes.iter().enumerate().skip(1) {
            if count > votes[best] {
                best = i;
            }
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::ForestConfig;

    fn fixture() -> (Dataset, RandomForest, ForestPackingForest) {
        let rows: Vec<Vec<f32>> = (0..120)
            .map(|i| vec![(i % 10) as f32, (i % 6) as f32])
            .collect();
        // Skewed labels so some paths are much hotter than others.
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 7.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(8).with_max_height(4).with_seed(29),
        );
        let engine = ForestPackingForest::from_forest(&forest, &data);
        (data, forest, engine)
    }

    #[test]
    fn equivalent_to_source_forest() {
        let (data, forest, engine) = fixture();
        for (sample, _) in data.iter() {
            assert_eq!(engine.classify(sample), forest.predict(sample));
        }
    }

    #[test]
    fn equivalent_on_unseen_inputs() {
        let (_, forest, engine) = fixture();
        for i in 0..80 {
            let sample = vec![i as f32 * 0.37 - 2.0, i as f32 * 0.91];
            assert_eq!(engine.classify(&sample), forest.predict(&sample));
        }
    }

    #[test]
    fn arena_holds_every_node_exactly_once() {
        let (_, forest, engine) = fixture();
        let expected: usize = forest.trees().iter().map(|t| t.nodes().len()).sum();
        assert_eq!(engine.arena_len(), expected);
        assert_eq!(engine.arena_bytes(), expected * 16);
    }

    #[test]
    fn hot_path_is_consecutive() {
        // Follow the hot edge from each root; indices must increment by 1.
        let (_, _, engine) = fixture();
        for &root in &engine.roots {
            let mut idx = root;
            let mut steps = 0;
            while engine.arena[idx as usize].feature != LEAF {
                idx += 1; // hot edge is always inline
                steps += 1;
                assert!(steps <= 64, "runaway hot path");
            }
        }
    }

    #[test]
    fn hot_child_is_the_frequent_one() {
        // With labels skewed to r[0] <= 7 (80% of data), most roots' hot
        // edges should cover the majority of calibration traffic.
        let (data, forest, engine) = fixture();
        // Re-derive first-tree root traffic.
        let tree = &forest.trees()[0];
        if let NodeKind::Split {
            feature,
            threshold,
            left,
            right,
        } = tree.nodes()[0]
        {
            let mut left_hits = 0u64;
            let mut right_hits = 0u64;
            for (sample, _) in data.iter() {
                if sample[feature as usize] <= threshold {
                    left_hits += 1;
                } else {
                    right_hits += 1;
                }
            }
            let root = engine.arena[engine.roots[0] as usize];
            assert_eq!(root.hot_is_left, left_hits >= right_hits);
            let _ = (left, right);
        }
    }

    #[test]
    fn name_matches_figures() {
        let (_, _, engine) = fixture();
        assert_eq!(engine.name(), "FP");
    }
}
