//! Scikit-Learn-style inference: heap-scattered node objects, per-call
//! input validation, and per-tree probability aggregation.
//!
//! Scikit-learn's `RandomForestClassifier.predict` on a single sample (the
//! paper's no-batching service regime, §6) pays for: converting/validating
//! the input into a fresh `float64` array, walking each tree's node objects
//! through pointers, materializing every tree's class-probability vector,
//! and averaging them before the argmax. This engine reproduces exactly
//! those costs in Rust. (The *additional* Python-interpreter overhead that
//! inflates the paper's absolute Scikit numbers is out of scope; see
//! EXPERIMENTS.md.)

use crate::InferenceEngine;
use bolt_forest::{NodeKind, RandomForest};

/// One verbose node object, boxed individually like a CPython object graph.
#[derive(Debug)]
enum ObjNode {
    Split {
        feature: usize,
        threshold: f64,
        // Boxed children: every hop is a pointer dereference.
        left: Box<ObjNode>,
        right: Box<ObjNode>,
        // Verbose metadata scikit keeps on every node.
        #[allow(dead_code)]
        impurity: f64,
        #[allow(dead_code)]
        n_node_samples: u64,
    },
    Leaf {
        // sklearn's tree_.value: per-class vote distribution, even though
        // only the argmax is needed.
        value: Vec<f64>,
    },
}

impl ObjNode {
    fn from_arena(nodes: &[NodeKind], id: u32, n_classes: usize) -> Self {
        match nodes[id as usize] {
            NodeKind::Split {
                feature,
                threshold,
                left,
                right,
            } => Self::Split {
                feature: feature as usize,
                threshold: f64::from(threshold),
                left: Box::new(Self::from_arena(nodes, left, n_classes)),
                right: Box::new(Self::from_arena(nodes, right, n_classes)),
                impurity: 0.5,
                n_node_samples: 0,
            },
            NodeKind::Leaf { class } => {
                let mut value = vec![0.0f64; n_classes];
                value[class as usize] = 1.0;
                Self::Leaf { value }
            }
        }
    }

    fn proba<'a>(&'a self, sample: &[f64]) -> &'a [f64] {
        match self {
            Self::Leaf { value } => value,
            Self::Split {
                feature,
                threshold,
                left,
                right,
                ..
            } => {
                if sample[*feature] <= *threshold {
                    left.proba(sample)
                } else {
                    right.proba(sample)
                }
            }
        }
    }
}

/// A forest re-laid out in scikit-learn's object-graph style.
#[derive(Debug)]
pub struct ScikitLikeForest {
    trees: Vec<ObjNode>,
    n_features: usize,
    n_classes: usize,
}

impl ScikitLikeForest {
    /// Re-lays a trained forest as boxed node objects.
    #[must_use]
    pub fn from_forest(forest: &RandomForest) -> Self {
        let trees = forest
            .trees()
            .iter()
            .map(|t| ObjNode::from_arena(t.nodes(), 0, forest.n_classes()))
            .collect();
        Self {
            trees,
            n_features: forest.n_features(),
            n_classes: forest.n_classes(),
        }
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The averaged per-class probabilities for one sample, reproducing
    /// `predict_proba` (validation copy included).
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the feature count or contains a
    /// non-finite value (scikit's `check_array` rejects NaN/inf too).
    #[must_use]
    pub fn predict_proba(&self, sample: &[f32]) -> Vec<f64> {
        // check_array: validate and copy into a fresh float64 buffer.
        assert!(
            sample.len() >= self.n_features,
            "sample has {} features, forest expects {}",
            sample.len(),
            self.n_features
        );
        let validated: Vec<f64> = sample[..self.n_features]
            .iter()
            .map(|&v| {
                assert!(v.is_finite(), "input contains non-finite value");
                f64::from(v)
            })
            .collect();
        // Per-tree probability vectors, then the average.
        let mut acc = vec![0.0f64; self.n_classes];
        for tree in &self.trees {
            let p = tree.proba(&validated);
            for (a, &v) in acc.iter_mut().zip(p) {
                *a += v;
            }
        }
        let n = self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a /= n);
        acc
    }
}

impl InferenceEngine for ScikitLikeForest {
    fn name(&self) -> &'static str {
        "Scikit"
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        let proba = self.predict_proba(sample);
        let mut best = 0usize;
        for (i, &p) in proba.iter().enumerate().skip(1) {
            if p > proba[best] {
                best = i;
            }
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{Dataset, ForestConfig};

    fn fixture() -> (Dataset, RandomForest, ScikitLikeForest) {
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![(i % 10) as f32, (i % 7) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 4.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(7).with_max_height(4).with_seed(11),
        );
        let engine = ScikitLikeForest::from_forest(&forest);
        (data, forest, engine)
    }

    #[test]
    fn equivalent_to_source_forest() {
        let (data, forest, engine) = fixture();
        for (sample, _) in data.iter() {
            assert_eq!(engine.classify(sample), forest.predict(sample));
        }
    }

    #[test]
    fn proba_matches_vote_fractions() {
        let (data, forest, engine) = fixture();
        for (sample, _) in data.iter().take(20) {
            let got = engine.predict_proba(sample);
            let expected = forest.predict_proba(sample);
            for (g, e) in got.iter().zip(&expected) {
                assert!((g - f64::from(*e)).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_like_check_array() {
        let (_, _, engine) = fixture();
        let _ = engine.classify(&[f32::NAN, 0.0]);
    }

    #[test]
    fn name_matches_figures() {
        let (_, _, engine) = fixture();
        assert_eq!(engine.name(), "Scikit");
        assert_eq!(engine.n_trees(), 7);
    }
}
