//! Rust re-implementations of the inference strategies Bolt is evaluated
//! against in the paper (§2.1, §6): Python Scikit-Learn, Ranger, and Forest
//! Packing.
//!
//! The paper compares *memory-layout and branching strategies*, not
//! languages, so each baseline here reproduces the platform's strategy
//! faithfully in Rust on the same [`RandomForest`](bolt_forest::RandomForest)
//! substrate:
//!
//! * [`ScikitLikeForest`] — one heap object per node with verbose metadata,
//!   pointer-chasing traversal, and scikit-learn's per-call input
//!   validation/copy and per-tree probability aggregation.
//! * [`RangerLikeForest`] — compact per-tree node arrays in breadth-first
//!   order, "avoiding copies of the original data, saving node information
//!   in simple data structures"; shines when queries are batched, which its
//!   [`classify_batch`](RangerLikeForest::classify_batch) exposes.
//! * [`ForestPackingForest`] — Browne et al.'s packed layout: depth-first
//!   node order with the *hot* (most frequently taken, estimated from
//!   calibration data) child placed inline so hot paths stay within
//!   consecutive cache lines, trees packed into one contiguous arena.
//!
//! Every engine is a pure re-layout of the same trained forest, so all of
//! them classify identically to
//! [`RandomForest::predict`](bolt_forest::RandomForest::predict) — the
//! crate's tests enforce it.
//!
//! # Examples
//!
//! ```
//! use bolt_baselines::{InferenceEngine, ScikitLikeForest};
//! use bolt_forest::{Dataset, ForestConfig, RandomForest};
//!
//! let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
//! let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
//! let data = Dataset::from_rows(rows, labels, 2)?;
//! let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(1));
//! let engine = ScikitLikeForest::from_forest(&forest);
//! assert_eq!(engine.classify(&[3.0]), forest.predict(&[3.0]));
//! # Ok::<(), bolt_forest::ForestError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod forest_packing;
mod ranger_like;
mod scikit_like;

pub use forest_packing::ForestPackingForest;
pub use ranger_like::RangerLikeForest;
pub use scikit_like::ScikitLikeForest;

/// A single-sample classification engine, the interface the paper's
/// inference service drives (§4.5: "the front-end can connect to other
/// forest implementations").
pub trait InferenceEngine: Send + Sync {
    /// Platform name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Classifies one sample.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the sample is shorter than the forest's
    /// feature count.
    fn classify(&self, sample: &[f32]) -> u32;

    /// Classifies a batch of samples, returning one class per sample in
    /// order.
    ///
    /// The default loops over [`classify`](Self::classify); engines with a
    /// genuinely batched kernel (Bolt's entry-major scan, Ranger's
    /// tree-major sweep) override this to amortize per-structure costs
    /// across the whole batch.
    ///
    /// # Panics
    ///
    /// Implementations may panic if any sample is shorter than the forest's
    /// feature count.
    fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        samples.iter().map(|s| self.classify(s)).collect()
    }
}

impl<T: InferenceEngine + ?Sized> InferenceEngine for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        (**self).classify(sample)
    }

    // Forward explicitly so an engine's batched override is not lost
    // behind the default when called through a reference.
    fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        (**self).classify_batch(samples)
    }
}

/// Shared-ownership forwarding: one engine (one compiled forest) can back
/// several registered model names or several servers at once.
impl<T: InferenceEngine + ?Sized> InferenceEngine for std::sync::Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        (**self).classify(sample)
    }

    fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        (**self).classify_batch(samples)
    }
}

impl<T: InferenceEngine + ?Sized> InferenceEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        (**self).classify(sample)
    }

    fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        (**self).classify_batch(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_are_object_safe() {
        fn _takes_dyn(_e: &dyn InferenceEngine) {}
    }

    #[test]
    fn smart_pointer_forwarding_preserves_batched_override() {
        struct Probe;
        impl InferenceEngine for Probe {
            fn name(&self) -> &'static str {
                "Probe"
            }
            fn classify(&self, _sample: &[f32]) -> u32 {
                1
            }
            fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
                vec![7; samples.len()] // distinguishable from the default
            }
        }
        let arc: std::sync::Arc<dyn InferenceEngine> = std::sync::Arc::new(Probe);
        assert_eq!(arc.name(), "Probe");
        assert_eq!(arc.classify_batch(&[&[0.0], &[0.0]]), vec![7, 7]);
        let boxed: Box<dyn InferenceEngine> = Box::new(Probe);
        assert_eq!(boxed.classify_batch(&[&[0.0]]), vec![7]);
    }
}
