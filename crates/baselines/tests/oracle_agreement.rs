//! Baseline engines are the control group of every benchmark in the paper
//! (§5); if any of them disagrees with the reference traversal, the
//! speedup numbers compare against a broken yardstick. This suite reuses
//! `bolt_core::oracle` to hold all three baselines — scikit-like object
//! trees, ranger-like compact arrays (scalar and batched), and the
//! forest-packing layout — to the same bit-exact standard as Bolt itself.

use bolt_baselines::{ForestPackingForest, InferenceEngine, RangerLikeForest, ScikitLikeForest};
use bolt_core::oracle::{self, ForestSpec, OracleRng};
use bolt_forest::Dataset;

/// A small dataset with the forest's shape, used only to calibrate the
/// forest-packing node layout (it reorders nodes by observed hotness, so
/// any valid dataset must leave classifications unchanged).
fn calibration(n_features: usize, n_classes: usize, rng: &mut OracleRng) -> Dataset {
    let rows: Vec<Vec<f32>> = (0..60)
        .map(|_| (0..n_features).map(|_| rng.uniform(-6.0, 6.0)).collect())
        .collect();
    let labels: Vec<u32> = (0..60).map(|_| rng.below(n_classes) as u32).collect();
    Dataset::from_rows(rows, labels, n_classes).expect("valid calibration dataset")
}

#[test]
fn baselines_match_reference_on_adversarial_inputs() {
    for seed in 0..12u64 {
        let mut rng = OracleRng::new(seed);
        let spec = ForestSpec::sampled(&mut rng);
        let forest = oracle::random_forest(&spec, &mut rng);
        let thresholds = oracle::forest_thresholds(&forest);
        let inputs = oracle::adversarial_inputs(spec.n_features, &thresholds, &mut rng, 25);

        let scikit = ScikitLikeForest::from_forest(&forest);
        let ranger = RangerLikeForest::from_forest(&forest);
        let packed = ForestPackingForest::from_forest(
            &forest,
            &calibration(spec.n_features, spec.n_classes, &mut rng),
        );

        for sample in &inputs {
            let expected = forest.predict(sample);
            // Scikit's `check_array` rejects NaN/inf by documented contract,
            // so it only sees the finite slice of the adversarial set.
            let engines: &[&dyn InferenceEngine] = if sample.iter().all(|v| v.is_finite()) {
                &[&scikit, &ranger, &packed]
            } else {
                &[&ranger, &packed]
            };
            for engine in engines {
                assert_eq!(
                    engine.classify(sample),
                    expected,
                    "seed {seed}: {} diverged from reference on {sample:?}",
                    engine.name()
                );
            }
        }

        // Ranger's batched entry point must agree with its scalar path.
        let refs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        let batch = ranger.classify_batch(&refs);
        for (sample, got) in inputs.iter().zip(batch) {
            assert_eq!(
                got,
                forest.predict(sample),
                "seed {seed}: batched ranger diverged on {sample:?}"
            );
        }
    }
}
