//! Binary threshold decision trees.

use serde::{Deserialize, Serialize};

/// Index of a node within a [`DecisionTree`]'s arena.
pub type NodeId = u32;

/// A node of a [`DecisionTree`].
///
/// Following the paper's model (§4), internal nodes test
/// `sample[feature] <= threshold`; the *yes* (true) edge goes to `left`, the
/// *no* (false) edge to `right`. Leaves carry the predicted class.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An internal split node.
    Split {
        /// Feature index tested by this node.
        feature: u32,
        /// Split threshold; the test is `sample[feature] <= threshold`.
        threshold: f32,
        /// Child taken when the test is true.
        left: NodeId,
        /// Child taken when the test is false.
        right: NodeId,
    },
    /// A terminal node carrying the classification result.
    Leaf {
        /// Predicted class index.
        class: u32,
    },
}

/// One root→leaf path: the sequence of `(feature, threshold, taken)` tests
/// plus the leaf class. `taken` is true when the path follows the *yes*
/// (`<=`) edge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreePath {
    /// Tests along the path, root first.
    pub tests: Vec<(u32, f32, bool)>,
    /// Class stored in the terminal leaf.
    pub class: u32,
}

/// A trained binary decision tree stored as a flat node arena (root at
/// index 0).
///
/// # Examples
///
/// ```
/// use bolt_forest::{DecisionTree, NodeKind};
///
/// // if x0 <= 0.5 { class 0 } else { class 1 }
/// let tree = DecisionTree::from_nodes(
///     vec![
///         NodeKind::Split { feature: 0, threshold: 0.5, left: 1, right: 2 },
///         NodeKind::Leaf { class: 0 },
///         NodeKind::Leaf { class: 1 },
///     ],
///     1,
///     2,
/// );
/// assert_eq!(tree.predict(&[0.0]), 0);
/// assert_eq!(tree.predict(&[1.0]), 1);
/// assert_eq!(tree.height(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<NodeKind>,
    n_features: usize,
    n_classes: usize,
}

impl DecisionTree {
    /// Builds a tree from an explicit node arena with the root at index 0.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, any child index is out of bounds or not
    /// strictly greater than its parent (which also rules out cycles), or a
    /// leaf class is `>= n_classes`.
    #[must_use]
    pub fn from_nodes(nodes: Vec<NodeKind>, n_features: usize, n_classes: usize) -> Self {
        assert!(!nodes.is_empty(), "a tree needs at least one node");
        for (i, node) in nodes.iter().enumerate() {
            match *node {
                NodeKind::Split {
                    feature,
                    left,
                    right,
                    ..
                } => {
                    assert!(
                        (feature as usize) < n_features,
                        "node {i}: feature {feature} out of range {n_features}"
                    );
                    for child in [left, right] {
                        assert!(
                            (child as usize) < nodes.len() && child as usize > i,
                            "node {i}: child {child} must point forward within the arena"
                        );
                    }
                }
                NodeKind::Leaf { class } => {
                    assert!(
                        (class as usize) < n_classes,
                        "node {i}: class {class} out of range {n_classes}"
                    );
                }
            }
        }
        Self {
            nodes,
            n_features,
            n_classes,
        }
    }

    /// Borrows the node arena (root at index 0).
    #[must_use]
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// Number of input features the tree was trained on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of target classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of leaf nodes.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Leaf { .. }))
            .count()
    }

    /// Height of the tree (edges on the longest root→leaf path; 0 for a
    /// single leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        fn depth(nodes: &[NodeKind], id: NodeId) -> usize {
            match nodes[id as usize] {
                NodeKind::Leaf { .. } => 0,
                NodeKind::Split { left, right, .. } => {
                    1 + depth(nodes, left).max(depth(nodes, right))
                }
            }
        }
        depth(&self.nodes, 0)
    }

    /// Classifies one sample by walking the tree from the root.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() < n_features()`.
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> u32 {
        assert!(
            sample.len() >= self.n_features,
            "sample has {} features, tree expects {}",
            sample.len(),
            self.n_features
        );
        let mut id = 0u32;
        loop {
            match self.nodes[id as usize] {
                NodeKind::Leaf { class } => return class,
                NodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if sample[feature as usize] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Enumerates every root→leaf path (Fig. 3 step 1 of the paper).
    #[must_use]
    pub fn paths(&self) -> Vec<TreePath> {
        // A frame is the node to visit plus the tests accumulated on the
        // way down to it.
        type Frame = (NodeId, Vec<(u32, f32, bool)>);
        let mut out = Vec::with_capacity(self.n_leaves());
        let mut stack: Vec<Frame> = vec![(0, Vec::new())];
        while let Some((id, tests)) = stack.pop() {
            match self.nodes[id as usize] {
                NodeKind::Leaf { class } => out.push(TreePath { tests, class }),
                NodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let mut no = tests.clone();
                    no.push((feature, threshold, false));
                    stack.push((right, no));
                    let mut yes = tests;
                    yes.push((feature, threshold, true));
                    stack.push((left, yes));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth2_tree() -> DecisionTree {
        // root: x0 <= 0.5 ? (x1 <= 2.0 ? c0 : c1) : c2
        DecisionTree::from_nodes(
            vec![
                NodeKind::Split {
                    feature: 0,
                    threshold: 0.5,
                    left: 1,
                    right: 4,
                },
                NodeKind::Split {
                    feature: 1,
                    threshold: 2.0,
                    left: 2,
                    right: 3,
                },
                NodeKind::Leaf { class: 0 },
                NodeKind::Leaf { class: 1 },
                NodeKind::Leaf { class: 2 },
            ],
            2,
            3,
        )
    }

    #[test]
    fn predict_all_branches() {
        let t = depth2_tree();
        assert_eq!(t.predict(&[0.0, 1.0]), 0);
        assert_eq!(t.predict(&[0.0, 3.0]), 1);
        assert_eq!(t.predict(&[1.0, 0.0]), 2);
    }

    #[test]
    fn shape_metrics() {
        let t = depth2_tree();
        assert_eq!(t.height(), 2);
        assert_eq!(t.n_leaves(), 3);
    }

    #[test]
    fn boundary_goes_left() {
        let t = depth2_tree();
        // x0 == threshold takes the yes (<=) edge.
        assert_eq!(t.predict(&[0.5, 5.0]), 1);
    }

    #[test]
    fn paths_cover_all_leaves_and_agree_with_predict() {
        let t = depth2_tree();
        let paths = t.paths();
        assert_eq!(paths.len(), 3);
        // Reconstruct a sample satisfying each path and check predict.
        for path in &paths {
            let mut sample = vec![0.0f32; 2];
            for &(f, thr, taken) in &path.tests {
                sample[f as usize] = if taken { thr - 0.1 } else { thr + 0.1 };
            }
            assert_eq!(t.predict(&sample), path.class, "path {path:?}");
        }
    }

    #[test]
    fn single_leaf_tree() {
        let t = DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 0 }], 1, 1);
        assert_eq!(t.height(), 0);
        assert_eq!(t.predict(&[42.0]), 0);
        assert_eq!(t.paths().len(), 1);
        assert!(t.paths()[0].tests.is_empty());
    }

    #[test]
    #[should_panic(expected = "point forward")]
    fn backward_child_rejected() {
        let _ = DecisionTree::from_nodes(
            vec![NodeKind::Split {
                feature: 0,
                threshold: 0.0,
                left: 0,
                right: 0,
            }],
            1,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "class 7 out of range")]
    fn bad_class_rejected() {
        let _ = DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 7 }], 1, 2);
    }
}
