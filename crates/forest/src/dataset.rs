//! Dense in-memory datasets.

use crate::ForestError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A dense, row-major feature matrix with integer class labels.
///
/// All of the paper's workloads (MNIST pixels, LSTW traffic features, Yelp
/// bag-of-words counts) are dense numeric matrices once encoded, so a single
/// `f32` matrix covers every experiment.
///
/// # Examples
///
/// ```
/// use bolt_forest::Dataset;
///
/// let data = Dataset::from_rows(
///     vec![vec![0.0, 1.0], vec![2.0, 3.0]],
///     vec![0, 1],
///     2,
/// )?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.sample(1), &[2.0, 3.0]);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    values: Vec<f32>,
    labels: Vec<u32>,
    n_features: usize,
    n_classes: usize,
}

impl Dataset {
    /// Builds a dataset from per-sample rows.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::RaggedRows`] if rows differ in length,
    /// [`ForestError::LabelMismatch`] if `labels.len() != rows.len()` or any
    /// label is `>= n_classes`, and [`ForestError::EmptyDataset`] if `rows`
    /// is empty.
    pub fn from_rows(
        rows: Vec<Vec<f32>>,
        labels: Vec<u32>,
        n_classes: usize,
    ) -> Result<Self, ForestError> {
        let first = rows.first().ok_or(ForestError::EmptyDataset)?;
        let n_features = first.len();
        if rows.len() != labels.len() {
            return Err(ForestError::LabelMismatch {
                detail: format!("{} rows but {} labels", rows.len(), labels.len()),
            });
        }
        let mut values = Vec::with_capacity(rows.len() * n_features);
        for row in &rows {
            if row.len() != n_features {
                return Err(ForestError::RaggedRows {
                    expected: n_features,
                    found: row.len(),
                });
            }
            values.extend_from_slice(row);
        }
        if let Some(&bad) = labels.iter().find(|&&l| l as usize >= n_classes) {
            return Err(ForestError::LabelMismatch {
                detail: format!("label {bad} out of range for {n_classes} classes"),
            });
        }
        Ok(Self {
            values,
            labels,
            n_features,
            n_classes,
        })
    }

    /// Builds a dataset from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Same contract as [`Dataset::from_rows`]; additionally errors if
    /// `values.len()` is not a multiple of `n_features`.
    pub fn from_flat(
        values: Vec<f32>,
        labels: Vec<u32>,
        n_features: usize,
        n_classes: usize,
    ) -> Result<Self, ForestError> {
        if n_features == 0 || !values.len().is_multiple_of(n_features) {
            return Err(ForestError::RaggedRows {
                expected: n_features,
                found: values.len(),
            });
        }
        let n_samples = values.len() / n_features;
        if n_samples == 0 {
            return Err(ForestError::EmptyDataset);
        }
        if n_samples != labels.len() {
            return Err(ForestError::LabelMismatch {
                detail: format!("{n_samples} rows but {} labels", labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l as usize >= n_classes) {
            return Err(ForestError::LabelMismatch {
                detail: format!("label {bad} out of range for {n_classes} classes"),
            });
        }
        Ok(Self {
            values,
            labels,
            n_features,
            n_classes,
        })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples (never true for a constructed one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of target classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f32] {
        &self.values[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All labels.
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Iterates over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], u32)> + '_ {
        (0..self.len()).map(move |i| (self.sample(i), self.label(i)))
    }

    /// Builds a new dataset from a subset of sample indices (with repeats
    /// allowed, as used by bootstrap sampling).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Self {
        assert!(!indices.is_empty(), "subset requires at least one index");
        let mut values = Vec::with_capacity(indices.len() * self.n_features);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            values.extend_from_slice(self.sample(i));
            labels.push(self.label(i));
        }
        Self {
            values,
            labels,
            n_features: self.n_features,
            n_classes: self.n_classes,
        }
    }

    /// Appends extra feature columns to every sample, returning a new
    /// dataset. Used by deep forests, which append the previous layer's
    /// class-probability vector to the input (§4.6 of the Bolt paper).
    ///
    /// # Panics
    ///
    /// Panics if `extra.len() != self.len()` or the extra rows are ragged.
    #[must_use]
    pub fn with_appended_features(&self, extra: &[Vec<f32>]) -> Self {
        assert_eq!(extra.len(), self.len(), "one extra row per sample required");
        let added = extra.first().map_or(0, Vec::len);
        let mut values = Vec::with_capacity(self.len() * (self.n_features + added));
        for (i, row) in extra.iter().enumerate() {
            assert_eq!(row.len(), added, "ragged appended features");
            values.extend_from_slice(self.sample(i));
            values.extend_from_slice(row);
        }
        Self {
            values,
            labels: self.labels.clone(),
            n_features: self.n_features + added,
            n_classes: self.n_classes,
        }
    }

    /// Deterministically shuffles and splits into `(train, test)` with
    /// `test_fraction` of samples (at least one sample on each side).
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not in `(0, 1)` or there are fewer than
    /// two samples.
    #[must_use]
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Self, Self) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0, 1), got {test_fraction}"
        );
        assert!(self.len() >= 2, "need at least two samples to split");
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let n_test =
            ((self.len() as f64 * test_fraction).round() as usize).clamp(1, self.len() - 1);
        let (test_idx, train_idx) = order.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![0.0, 1.0],
                vec![2.0, 3.0],
                vec![4.0, 5.0],
                vec![6.0, 7.0],
            ],
            vec![0, 1, 0, 1],
            2,
        )
        .expect("valid dataset")
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.sample(2), &[4.0, 5.0]);
        assert_eq!(d.label(3), 1);
        assert_eq!(d.iter().count(), 4);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err =
            Dataset::from_rows(vec![vec![0.0], vec![1.0, 2.0]], vec![0, 0], 1).expect_err("ragged");
        assert_eq!(
            err,
            ForestError::RaggedRows {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn label_out_of_range_rejected() {
        let err = Dataset::from_rows(vec![vec![0.0]], vec![5], 2).expect_err("bad label");
        assert!(matches!(err, ForestError::LabelMismatch { .. }));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Dataset::from_rows(vec![], vec![], 2).expect_err("empty"),
            ForestError::EmptyDataset
        );
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = Dataset::from_flat(vec![0.0, 1.0, 2.0, 3.0], vec![0, 1], 2, 2).expect("flat");
        let b =
            Dataset::from_rows(vec![vec![0.0, 1.0], vec![2.0, 3.0]], vec![0, 1], 2).expect("rows");
        assert_eq!(a, b);
    }

    #[test]
    fn subset_repeats_allowed() {
        let d = toy();
        let s = d.subset(&[1, 1, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sample(0), s.sample(1));
        assert_eq!(s.label(2), 1);
    }

    #[test]
    fn split_is_deterministic_and_disjoint_in_size() {
        let d = toy();
        let (train1, test1) = d.train_test_split(0.25, 9);
        let (train2, test2) = d.train_test_split(0.25, 9);
        assert_eq!(train1, train2);
        assert_eq!(test1, test2);
        assert_eq!(train1.len() + test1.len(), d.len());
        assert_eq!(test1.len(), 1);
    }

    #[test]
    fn appended_features_widen_samples() {
        let d = toy();
        let extra: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32 * 10.0]).collect();
        let wide = d.with_appended_features(&extra);
        assert_eq!(wide.n_features(), 3);
        assert_eq!(wide.sample(1), &[2.0, 3.0, 10.0]);
        assert_eq!(wide.labels(), d.labels());
    }
}
