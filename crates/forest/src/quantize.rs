//! Feature quantization (§5 of the Bolt paper).
//!
//! "For other datasets, normalization and other small adjustments can be
//! used ... by shifting the scale (from [-90,90] to [0,180]), all of the
//! information can be stored in one byte without losing prediction power."
//! Quantizing features to a small integer grid does two things for Bolt:
//! split thresholds land on a shared grid (so trees trained on different
//! bootstraps reuse the *same* predicates, improving cross-tree path
//! redundancy), and feature values need few bits in the compressed layouts.

use crate::Dataset;
use serde::{Deserialize, Serialize};

/// A fitted per-feature affine quantizer mapping values onto
/// `0..2^bits - 1` integer levels.
///
/// # Examples
///
/// ```
/// use bolt_forest::{Dataset, Quantizer};
///
/// let data = Dataset::from_rows(
///     vec![vec![-90.0], vec![0.0], vec![90.0]],
///     vec![0, 1, 1],
///     2,
/// )?;
/// let quantizer = Quantizer::fit(&data, 8);
/// let q = quantizer.apply(&data);
/// assert_eq!(q.sample(0), &[0.0]);    // -90 -> level 0
/// assert_eq!(q.sample(2), &[255.0]);  // +90 -> level 255
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    mins: Vec<f32>,
    /// Multiplier mapping `(v - min)` to the level grid; 0 for constant
    /// features.
    scales: Vec<f32>,
    levels: u32,
}

impl Quantizer {
    /// Fits per-feature ranges on `data` for a `bits`-bit grid.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    #[must_use]
    pub fn fit(data: &Dataset, bits: u32) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "bits must be in 1..=16, got {bits}"
        );
        let levels = (1u32 << bits) - 1;
        let n = data.n_features();
        let mut mins = vec![f32::INFINITY; n];
        let mut maxs = vec![f32::NEG_INFINITY; n];
        for (sample, _) in data.iter() {
            for f in 0..n {
                mins[f] = mins[f].min(sample[f]);
                maxs[f] = maxs[f].max(sample[f]);
            }
        }
        let scales = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| {
                if hi > lo {
                    levels as f32 / (hi - lo)
                } else {
                    0.0
                }
            })
            .collect();
        Self {
            mins,
            scales,
            levels,
        }
    }

    /// Number of quantization levels (`2^bits - 1` is the top level).
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.levels
    }

    /// Quantizes one sample (values outside the fitted range clamp to the
    /// grid edges, as a deployed service must).
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the fitted feature count.
    #[must_use]
    pub fn apply_sample(&self, sample: &[f32]) -> Vec<f32> {
        assert!(
            sample.len() >= self.mins.len(),
            "sample has {} features, quantizer expects {}",
            sample.len(),
            self.mins.len()
        );
        self.mins
            .iter()
            .zip(&self.scales)
            .zip(sample)
            .map(|((&min, &scale), &v)| ((v - min) * scale).round().clamp(0.0, self.levels as f32))
            .collect()
    }

    /// Quantizes every sample of a dataset, preserving labels.
    #[must_use]
    pub fn apply(&self, data: &Dataset) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..data.len())
            .map(|i| self.apply_sample(data.sample(i)))
            .collect();
        Dataset::from_rows(rows, data.labels().to_vec(), data.n_classes())
            .expect("quantization preserves shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForestConfig, PredicateUniverse, RandomForest};

    fn continuous_dataset(seed: u64) -> Dataset {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f32 / 37.0 - 90.0
        };
        let rows: Vec<Vec<f32>> = (0..300).map(|_| vec![next(), next(), next()]).collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 30.0)).collect();
        Dataset::from_rows(rows, labels, 2).expect("valid")
    }

    #[test]
    fn grid_bounds_and_clamping() {
        let data = continuous_dataset(1);
        let q = Quantizer::fit(&data, 8);
        assert_eq!(q.max_level(), 255);
        let quantized = q.apply(&data);
        for (sample, _) in quantized.iter() {
            for &v in sample {
                assert!((0.0..=255.0).contains(&v) && v == v.trunc());
            }
        }
        // Out-of-range inputs clamp rather than escape the grid.
        let wild = q.apply_sample(&[1e9, -1e9, 0.0]);
        assert_eq!(wild[0], 255.0);
        assert_eq!(wild[1], 0.0);
    }

    #[test]
    fn constant_features_map_to_zero() {
        let data =
            Dataset::from_rows(vec![vec![7.0, 1.0], vec![7.0, 2.0]], vec![0, 1], 2).expect("valid");
        let q = Quantizer::fit(&data, 4);
        let out = q.apply(&data);
        assert_eq!(out.sample(0)[0], 0.0);
        assert_eq!(out.sample(1)[0], 0.0);
    }

    #[test]
    fn quantization_shrinks_the_predicate_universe() {
        // The §5 effect: a shared grid collapses near-duplicate thresholds,
        // so the forest-wide predicate universe shrinks.
        let data = continuous_dataset(9);
        let cfg = ForestConfig::new(8).with_max_height(4).with_seed(5);
        let raw_forest = RandomForest::train(&data, &cfg);
        let q = Quantizer::fit(&data, 4);
        let quantized = q.apply(&data);
        let q_forest = RandomForest::train(&quantized, &cfg);
        let raw_universe = PredicateUniverse::from_forest(&raw_forest);
        let q_universe = PredicateUniverse::from_forest(&q_forest);
        assert!(
            q_universe.len() < raw_universe.len(),
            "quantized universe {} !< raw universe {}",
            q_universe.len(),
            raw_universe.len()
        );
    }

    #[test]
    fn prediction_power_survives_8_bits() {
        let data = continuous_dataset(3);
        let q = Quantizer::fit(&data, 8);
        let quantized = q.apply(&data);
        let cfg = ForestConfig::new(8).with_max_height(4).with_seed(7);
        let forest = RandomForest::train(&quantized, &cfg);
        assert!(forest.accuracy(&quantized) > 0.9);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_rejected() {
        let data = continuous_dataset(1);
        let _ = Quantizer::fit(&data, 0);
    }
}
