//! Error type shared by the forest substrate.

use std::fmt;

/// Errors produced while building datasets, training, or parsing models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForestError {
    /// A dataset row had a different number of features than the rest.
    RaggedRows {
        /// Expected feature count.
        expected: usize,
        /// Offending row's feature count.
        found: usize,
    },
    /// Labels and rows disagree in length, or a label is out of class range.
    LabelMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The dataset was empty where at least one sample is required.
    EmptyDataset,
    /// A DOT document could not be parsed back into a tree.
    ParseDot {
        /// Line number (1-based) where parsing failed, if known.
        line: Option<usize>,
        /// Description of the failure.
        detail: String,
    },
    /// Model (de)serialization failed.
    Serde {
        /// Description of the failure.
        detail: String,
    },
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RaggedRows { expected, found } => {
                write!(
                    f,
                    "ragged dataset rows: expected {expected} features, found {found}"
                )
            }
            Self::LabelMismatch { detail } => write!(f, "label mismatch: {detail}"),
            Self::EmptyDataset => write!(f, "dataset contains no samples"),
            Self::ParseDot {
                line: Some(line),
                detail,
            } => {
                write!(f, "invalid DOT at line {line}: {detail}")
            }
            Self::ParseDot { line: None, detail } => write!(f, "invalid DOT: {detail}"),
            Self::Serde { detail } => write!(f, "model serialization failed: {detail}"),
        }
    }
}

impl std::error::Error for ForestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ForestError::RaggedRows {
            expected: 4,
            found: 3,
        };
        assert_eq!(
            e.to_string(),
            "ragged dataset rows: expected 4 features, found 3"
        );
        let e = ForestError::ParseDot {
            line: Some(2),
            detail: "bad label".into(),
        };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ForestError>();
    }
}
