//! Forest-wide predicate binarization.
//!
//! Bolt operates on *binary* feature-value pairs (§4 of the paper): every
//! distinct `(feature, threshold)` split that appears anywhere in the forest
//! becomes one binary predicate, and each root→leaf path becomes a sorted
//! list of `(predicate, bool)` pairs. The number of distinct predicates `n`
//! is what drives lookup-table storage (the naïve table needs `2^n` entries).

use crate::{BoostedForest, DecisionTree, RandomForest};
use bolt_bitpack::Mask;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a binary predicate within a [`PredicateUniverse`].
pub type PredId = u32;

/// One binary test: `sample[feature] <= threshold`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Feature index tested.
    pub feature: u32,
    /// Threshold compared against (the test is `<=`).
    pub threshold: f32,
}

/// The set of all distinct predicates used by a forest, in a canonical order
/// (by feature index, then threshold).
///
/// # Examples
///
/// ```
/// use bolt_forest::{Dataset, ForestConfig, PredicateUniverse, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![(i % 4) as f32]).collect();
/// let labels: Vec<u32> = (0..20).map(|i| u32::from(i % 4 > 1)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(9));
/// let universe = PredicateUniverse::from_forest(&forest);
/// let bits = universe.evaluate(&[2.0]);
/// assert_eq!(bits.width(), universe.len());
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredicateUniverse {
    preds: Vec<Predicate>,
    #[serde(skip)]
    index: HashMap<(u32, u32), PredId>,
    /// Per-feature contiguous runs of predicates (the canonical order sorts
    /// by feature then threshold), enabling the monotone fast path of
    /// [`PredicateUniverse::evaluate_into`].
    #[serde(skip)]
    groups: FeatureGroup,
    n_features: usize,
}

/// Per-feature contiguous predicate runs stored as flat parallel arrays
/// (cache-friendly: one pass over three dense vectors per encode).
#[derive(Clone, Debug, Default, PartialEq)]
struct FeatureGroup {
    /// Feature index of group `g`.
    features: Vec<u32>,
    /// `offsets[g]..offsets[g + 1]` indexes both the flat `thresholds` and
    /// the predicate IDs (groups are contiguous ID runs by construction).
    offsets: Vec<u32>,
    /// All thresholds, ascending within each group.
    thresholds: Vec<f32>,
}

fn build_groups(preds: &[Predicate]) -> FeatureGroup {
    let mut groups = FeatureGroup::default();
    for (i, p) in preds.iter().enumerate() {
        if groups.features.last() != Some(&p.feature) {
            groups.features.push(p.feature);
            groups.offsets.push(i as u32);
        }
        groups.thresholds.push(p.threshold);
    }
    groups.offsets.push(preds.len() as u32);
    groups
}

impl PredicateUniverse {
    /// Builds a universe from raw `(feature, threshold)` split pairs
    /// (deduplicated), for tree representations beyond [`DecisionTree`]
    /// such as regression trees.
    #[must_use]
    pub fn from_splits(splits: impl IntoIterator<Item = (u32, f32)>, n_features: usize) -> Self {
        let mut seen: HashMap<(u32, u32), Predicate> = HashMap::new();
        for (feature, threshold) in splits {
            seen.entry((feature, threshold.to_bits()))
                .or_insert(Predicate { feature, threshold });
        }
        let mut preds: Vec<Predicate> = seen.into_values().collect();
        preds.sort_by(|a, b| {
            a.feature.cmp(&b.feature).then(
                a.threshold
                    .partial_cmp(&b.threshold)
                    .expect("finite thresholds"),
            )
        });
        let index = preds
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.feature, p.threshold.to_bits()), i as PredId))
            .collect();
        let groups = build_groups(&preds);
        Self {
            preds,
            index,
            groups,
            n_features,
        }
    }

    fn from_trees<'a>(trees: impl Iterator<Item = &'a DecisionTree>, n_features: usize) -> Self {
        let splits = trees.flat_map(|tree| {
            tree.nodes().iter().filter_map(|node| match *node {
                crate::NodeKind::Split {
                    feature, threshold, ..
                } => Some((feature, threshold)),
                crate::NodeKind::Leaf { .. } => None,
            })
        });
        Self::from_splits(splits, n_features)
    }

    /// Collects the predicate universe of a random forest.
    #[must_use]
    pub fn from_forest(forest: &RandomForest) -> Self {
        Self::from_trees(forest.trees().iter(), forest.n_features())
    }

    /// Collects the predicate universe of a boosted forest.
    #[must_use]
    pub fn from_boosted(forest: &BoostedForest) -> Self {
        Self::from_trees(forest.iter().map(|(t, _)| t), forest.n_features())
    }

    /// Number of distinct predicates (the `n` of the paper's `2^n` bound).
    #[must_use]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the universe is empty (forest of pure leaves).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Number of raw input features the forest reads.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The predicate with ID `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn predicate(&self, id: PredId) -> Predicate {
        self.preds[id as usize]
    }

    /// Looks up the ID of a `(feature, threshold)` predicate.
    #[must_use]
    pub fn id_of(&self, feature: u32, threshold: f32) -> Option<PredId> {
        self.index.get(&(feature, threshold.to_bits())).copied()
    }

    /// Evaluates every predicate against a sample, producing one bit per
    /// predicate (bit `i` is `sample[feature_i] <= threshold_i`).
    ///
    /// This is the input-side encoding step of Bolt inference: the returned
    /// mask feeds the branch-free dictionary scan.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is shorter than [`Self::n_features`].
    #[must_use]
    pub fn evaluate(&self, sample: &[f32]) -> Mask {
        let mut bits = Mask::zeros(self.preds.len());
        self.evaluate_into(sample, &mut bits);
        bits
    }

    /// Allocation-free variant of [`Self::evaluate`]: clears `out` and fills
    /// it. Exploits the monotone structure of threshold tests — for a fixed
    /// feature, `v <= t` flips from false to true exactly once along the
    /// ascending thresholds — so each feature costs one comparison search
    /// plus one word-wise bit-run write.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is shorter than [`Self::n_features`] or `out` was
    /// not sized to [`Self::len`] bits.
    pub fn evaluate_into(&self, sample: &[f32], out: &mut Mask) {
        assert!(
            sample.len() >= self.n_features,
            "sample has {} features, universe expects {}",
            sample.len(),
            self.n_features
        );
        assert_eq!(out.width(), self.preds.len(), "output mask width mismatch");
        assert!(
            self.preds.is_empty() || !self.groups.features.is_empty(),
            "predicate universe used before rebuild_index() after deserialization"
        );
        out.clear();
        let words = out.as_mut_words();
        let g = &self.groups;
        for gi in 0..g.features.len() {
            let v = sample[g.features[gi] as usize];
            if v.is_nan() {
                continue; // NaN <= t is false for every threshold
            }
            let (lo, hi) = (g.offsets[gi] as usize, g.offsets[gi + 1] as usize);
            // First threshold with t >= v: predicates from there on are
            // true. Groups are tiny, so a forward scan beats binary search.
            let mut pos = lo;
            while pos < hi && g.thresholds[pos] < v {
                pos += 1;
            }
            // Inline word-wise run set over bits [pos, hi).
            let (mut bit, end) = (pos, hi);
            while bit < end {
                let offset = bit % 64;
                let span = (64 - offset).min(end - bit);
                let mask = if span == 64 {
                    u64::MAX
                } else {
                    ((1u64 << span) - 1) << offset
                };
                words[bit / 64] |= mask;
                bit += span;
            }
        }
    }

    /// Rebuilds the internal lookup index and feature groups (needed after
    /// deserialization, which skips the derived structures).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .preds
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.feature, p.threshold.to_bits()), i as PredId))
            .collect();
        self.groups = build_groups(&self.preds);
    }
}

/// One root→leaf path in predicate space: `(predicate, value)` pairs sorted
/// by predicate ID, plus the leaf class, owning tree, and tree weight
/// (1.0 for plain random forests; the boosting weight for boosted forests).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BinaryPath {
    /// Sorted, deduplicated `(predicate, bool)` pairs along the path.
    pub pairs: Vec<(PredId, bool)>,
    /// Leaf classification result.
    pub class: u32,
    /// Index of the tree this path came from.
    pub tree: u32,
    /// Vote weight of the owning tree.
    pub weight: f64,
}

impl BinaryPath {
    /// Whether an evaluated predicate mask satisfies every pair of the path.
    #[must_use]
    pub fn matches(&self, bits: &Mask) -> bool {
        self.pairs.iter().all(|&(p, v)| bits.get(p as usize) == v)
    }
}

fn tree_binary_paths(
    tree: &DecisionTree,
    tree_id: u32,
    weight: f64,
    universe: &PredicateUniverse,
) -> Vec<BinaryPath> {
    let mut out = Vec::with_capacity(tree.n_leaves());
    'paths: for path in tree.paths() {
        let mut pairs: Vec<(PredId, bool)> = Vec::with_capacity(path.tests.len());
        for (feature, threshold, taken) in path.tests {
            let id = universe
                .id_of(feature, threshold)
                .expect("universe built from this forest");
            match pairs.iter().find(|&&(p, _)| p == id) {
                // Same predicate retested with the same outcome: redundant.
                Some(&(_, v)) if v == taken => {}
                // Contradictory retest: the path is unreachable; drop it.
                Some(_) => continue 'paths,
                None => pairs.push((id, taken)),
            }
        }
        pairs.sort_unstable_by_key(|&(p, v)| (p, v));
        out.push(BinaryPath {
            pairs,
            class: path.class,
            tree: tree_id,
            weight,
        });
    }
    out
}

/// Enumerates every (reachable) root→leaf path of the forest in predicate
/// space — Fig. 3 step 1 of the paper.
#[must_use]
pub fn enumerate_paths(forest: &RandomForest, universe: &PredicateUniverse) -> Vec<BinaryPath> {
    forest
        .trees()
        .iter()
        .enumerate()
        .flat_map(|(t, tree)| tree_binary_paths(tree, t as u32, 1.0, universe))
        .collect()
}

/// Enumerates weighted paths of a boosted forest (§5: gradient boosting is
/// supported "by simply adding the corresponding tree weight to each path").
#[must_use]
pub fn enumerate_weighted_paths(
    forest: &BoostedForest,
    universe: &PredicateUniverse,
) -> Vec<BinaryPath> {
    forest
        .iter()
        .enumerate()
        .flat_map(|(t, (tree, w))| tree_binary_paths(tree, t as u32, w, universe))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, ForestConfig, NodeKind};

    fn trained() -> (Dataset, RandomForest, PredicateUniverse) {
        let rows: Vec<Vec<f32>> = (0..60)
            .map(|i| vec![(i % 6) as f32, (i % 5) as f32])
            .collect();
        let labels: Vec<u32> = (0..60).map(|i| u32::from(i % 6 > 2)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(4).with_max_height(3).with_seed(21),
        );
        let universe = PredicateUniverse::from_forest(&forest);
        (data, forest, universe)
    }

    #[test]
    fn universe_ids_are_canonical_and_total() {
        let (_, forest, universe) = trained();
        let mut count = 0;
        for tree in forest.trees() {
            for node in tree.nodes() {
                if let NodeKind::Split {
                    feature, threshold, ..
                } = *node
                {
                    assert!(universe.id_of(feature, threshold).is_some());
                    count += 1;
                }
            }
        }
        assert!(universe.len() <= count, "universe must deduplicate splits");
        // Canonical order: sorted by (feature, threshold).
        for w in 0..universe.len().saturating_sub(1) {
            let a = universe.predicate(w as u32);
            let b = universe.predicate(w as u32 + 1);
            assert!(
                (a.feature, a.threshold) <= (b.feature, b.threshold),
                "universe must be sorted"
            );
        }
    }

    #[test]
    fn evaluate_matches_direct_comparison() {
        let (data, _, universe) = trained();
        for i in 0..data.len().min(20) {
            let sample = data.sample(i);
            let bits = universe.evaluate(sample);
            for p in 0..universe.len() {
                let pred = universe.predicate(p as u32);
                assert_eq!(bits.get(p), sample[pred.feature as usize] <= pred.threshold);
            }
        }
    }

    #[test]
    fn evaluate_into_matches_naive_on_special_values() {
        let (_, _, universe) = trained();
        let naive = |sample: &[f32]| {
            let mut bits = Mask::zeros(universe.len());
            for p in 0..universe.len() {
                let pred = universe.predicate(p as u32);
                if sample[pred.feature as usize] <= pred.threshold {
                    bits.set(p, true);
                }
            }
            bits
        };
        let specials: Vec<Vec<f32>> = vec![
            vec![f32::NAN, 0.0],
            vec![f32::MAX, f32::MIN],
            vec![-0.0, 0.0],
            vec![f32::INFINITY, f32::NEG_INFINITY],
            vec![2.5, -7.125],
        ];
        for sample in specials {
            assert_eq!(
                universe.evaluate(&sample),
                naive(&sample),
                "sample {sample:?}"
            );
        }
    }

    #[test]
    fn exactly_one_path_matches_per_tree() {
        // The paper's §4 invariant: "Each tree has exactly one matching path
        // for a given input."
        let (data, forest, universe) = trained();
        let paths = enumerate_paths(&forest, &universe);
        for i in 0..data.len().min(30) {
            let bits = universe.evaluate(data.sample(i));
            for t in 0..forest.n_trees() {
                let matching: Vec<&BinaryPath> = paths
                    .iter()
                    .filter(|p| p.tree == t as u32 && p.matches(&bits))
                    .collect();
                assert_eq!(matching.len(), 1, "tree {t}, sample {i}");
                assert_eq!(
                    matching[0].class,
                    forest.trees()[t].predict(data.sample(i)),
                    "path class must equal tree prediction"
                );
            }
        }
    }

    #[test]
    fn paths_are_sorted_and_unique_per_pred() {
        let (_, forest, universe) = trained();
        for path in enumerate_paths(&forest, &universe) {
            for w in path.pairs.windows(2) {
                assert!(w[0].0 < w[1].0, "pairs sorted and deduplicated: {path:?}");
            }
        }
    }

    #[test]
    fn contradictory_paths_are_dropped() {
        // Hand-built tree that retests the same predicate contradictorily:
        // root: x0 <= 1 ? (x0 <= 1 ? c0 : c1) : c1 — the inner "no" edge is
        // unreachable.
        let tree = DecisionTree::from_nodes(
            vec![
                NodeKind::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 4,
                },
                NodeKind::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 2,
                    right: 3,
                },
                NodeKind::Leaf { class: 0 },
                NodeKind::Leaf { class: 1 },
                NodeKind::Leaf { class: 1 },
            ],
            1,
            2,
        );
        let forest = RandomForest::from_trees(vec![tree]).expect("single tree");
        let universe = PredicateUniverse::from_forest(&forest);
        let paths = enumerate_paths(&forest, &universe);
        // 3 leaves but one unreachable path.
        assert_eq!(paths.len(), 2);
        // Redundant retest collapses to a single pair.
        assert!(paths.iter().all(|p| p.pairs.len() == 1));
    }

    #[test]
    fn weighted_paths_carry_boost_weights() {
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let boosted = crate::BoostedForest::train(&data, &crate::BoostConfig::new(3).with_seed(8));
        let universe = PredicateUniverse::from_boosted(&boosted);
        let paths = enumerate_weighted_paths(&boosted, &universe);
        assert!(!paths.is_empty());
        assert!(paths.iter().all(|p| p.weight > 0.0));
        // Every path carries exactly its owning tree's boosting weight.
        let tree_weights: Vec<f64> = boosted.iter().map(|(_, w)| w).collect();
        for path in &paths {
            assert_eq!(path.weight, tree_weights[path.tree as usize]);
        }
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let (_, _, universe) = trained();
        let json = serde_json::to_string(&universe).expect("serialize");
        let mut restored: PredicateUniverse = serde_json::from_str(&json).expect("deserialize");
        restored.rebuild_index();
        for p in 0..universe.len() {
            let pred = universe.predicate(p as u32);
            assert_eq!(restored.id_of(pred.feature, pred.threshold), Some(p as u32));
        }
    }
}
