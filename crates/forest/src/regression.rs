//! Regression trees and forests.
//!
//! The paper frames ensembles as boosting accuracy "for classification and
//! regression tasks" and its Fig. 7 service aggregates results with a mean;
//! this module provides the regression substrate: variance-reduction CART
//! trees whose leaves carry real-valued outputs, and bagged forests that
//! average them. `bolt-core`'s `BoltRegressor` compiles these to lookup
//! tables with per-path leaf values.

use crate::{BinaryPath, ForestError, PredicateUniverse};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense feature matrix with real-valued targets.
///
/// # Examples
///
/// ```
/// use bolt_forest::RegressionDataset;
///
/// let data = RegressionDataset::from_rows(
///     vec![vec![0.0], vec![1.0]],
///     vec![10.0, 20.0],
/// )?;
/// assert_eq!(data.target(1), 20.0);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegressionDataset {
    values: Vec<f32>,
    targets: Vec<f32>,
    n_features: usize,
}

impl RegressionDataset {
    /// Builds a dataset from per-sample rows and targets.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::RaggedRows`], [`ForestError::LabelMismatch`],
    /// or [`ForestError::EmptyDataset`] under the same contract as
    /// [`Dataset::from_rows`](crate::Dataset::from_rows).
    pub fn from_rows(rows: Vec<Vec<f32>>, targets: Vec<f32>) -> Result<Self, ForestError> {
        let first = rows.first().ok_or(ForestError::EmptyDataset)?;
        let n_features = first.len();
        if rows.len() != targets.len() {
            return Err(ForestError::LabelMismatch {
                detail: format!("{} rows but {} targets", rows.len(), targets.len()),
            });
        }
        if let Some(bad) = targets.iter().find(|t| !t.is_finite()) {
            return Err(ForestError::LabelMismatch {
                detail: format!("non-finite target {bad}"),
            });
        }
        let mut values = Vec::with_capacity(rows.len() * n_features);
        for row in &rows {
            if row.len() != n_features {
                return Err(ForestError::RaggedRows {
                    expected: n_features,
                    found: row.len(),
                });
            }
            values.extend_from_slice(row);
        }
        Ok(Self {
            values,
            targets,
            n_features,
        })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset has no samples (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of features per sample.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[f32] {
        &self.values[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Target of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn target(&self, i: usize) -> f32 {
        self.targets[i]
    }

    /// Iterates over `(features, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], f32)> + '_ {
        (0..self.len()).map(move |i| (self.sample(i), self.target(i)))
    }
}

/// A node of a [`RegressionTree`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum RegNodeKind {
    /// Internal split: `sample[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: u32,
        /// Split threshold.
        threshold: f32,
        /// Child for the true edge.
        left: u32,
        /// Child for the false edge.
        right: u32,
    },
    /// Terminal node carrying the mean target of its training samples.
    Leaf {
        /// Predicted value.
        value: f32,
    },
}

/// Training configuration for regression trees/forests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegressionConfig {
    /// Number of trees in the forest.
    pub n_trees: usize,
    /// Maximum tree height.
    pub max_height: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Candidate features per split; `None` = `n/3` (the regression-forest
    /// convention).
    pub features_per_split: Option<usize>,
    /// Maximum candidate thresholds per feature.
    pub max_thresholds: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl RegressionConfig {
    /// A default configuration of `n_trees` height-6 trees.
    #[must_use]
    pub fn new(n_trees: usize) -> Self {
        Self {
            n_trees,
            max_height: 6,
            min_samples_split: 4,
            features_per_split: None,
            max_thresholds: 16,
            seed: 0,
        }
    }

    /// Sets the maximum height.
    #[must_use]
    pub fn with_max_height(mut self, h: usize) -> Self {
        self.max_height = h;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A variance-reduction CART regression tree (flat arena, root at 0).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<RegNodeKind>,
    n_features: usize,
}

impl RegressionTree {
    /// The node arena.
    #[must_use]
    pub fn nodes(&self) -> &[RegNodeKind] {
        &self.nodes
    }

    /// Predicts one sample by root-to-leaf traversal.
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the trained feature count.
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> f32 {
        assert!(sample.len() >= self.n_features, "sample too short");
        let mut id = 0u32;
        loop {
            match self.nodes[id as usize] {
                RegNodeKind::Leaf { value } => return value,
                RegNodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if sample[feature as usize] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of leaves.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, RegNodeKind::Leaf { .. }))
            .count()
    }

    /// Trains one tree on the given sample indices (used by the bagged
    /// forest and by gradient boosting's per-round residual fits).
    pub(crate) fn train_single(
        data: &RegressionDataset,
        indices: &[usize],
        config: &RegressionConfig,
    ) -> Self {
        Self::train(data, indices, config, config.seed)
    }

    /// Enumerates this tree's root→leaf paths in predicate space; the leaf
    /// value rides in [`BinaryPath::weight`] (tree id is left 0 for the
    /// caller to fill).
    pub(crate) fn binary_paths(&self, universe: &PredicateUniverse) -> Vec<BinaryPath> {
        let mut out = Vec::new();
        let mut stack: Vec<(u32, Vec<(u32, bool)>)> = vec![(0, Vec::new())];
        'walk: while let Some((id, pairs)) = stack.pop() {
            match self.nodes[id as usize] {
                RegNodeKind::Leaf { value } => {
                    let mut pairs = pairs;
                    pairs.sort_unstable_by_key(|&(p, v)| (p, v));
                    let mut deduped: Vec<(u32, bool)> = Vec::with_capacity(pairs.len());
                    for (p, v) in pairs {
                        match deduped.iter().find(|&&(q, _)| q == p) {
                            Some(&(_, existing)) if existing == v => {}
                            Some(_) => continue 'walk, // unreachable path
                            None => deduped.push((p, v)),
                        }
                    }
                    out.push(BinaryPath {
                        pairs: deduped,
                        class: 0,
                        tree: 0,
                        weight: f64::from(value),
                    });
                }
                RegNodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let pred = universe
                        .id_of(feature, threshold)
                        .expect("universe built from this tree");
                    let mut no = pairs.clone();
                    no.push((pred, false));
                    stack.push((right, no));
                    let mut yes = pairs;
                    yes.push((pred, true));
                    stack.push((left, yes));
                }
            }
        }
        out
    }

    fn train(
        data: &RegressionDataset,
        indices: &[usize],
        config: &RegressionConfig,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes = vec![RegNodeKind::Leaf { value: 0.0 }];
        let mut stack = vec![(0usize, indices.to_vec(), 0usize)];
        let k_features = config
            .features_per_split
            .unwrap_or_else(|| (data.n_features() / 3).max(1))
            .clamp(1, data.n_features());
        while let Some((slot, idx, depth)) = stack.pop() {
            let mean = mean_target(data, &idx);
            let split = if depth < config.max_height && idx.len() >= config.min_samples_split {
                best_split(data, &idx, k_features, config.max_thresholds, &mut rng)
            } else {
                None
            };
            match split {
                None => nodes[slot] = RegNodeKind::Leaf { value: mean },
                Some((feature, threshold)) => {
                    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                        .iter()
                        .partition(|&&i| data.sample(i)[feature as usize] <= threshold);
                    let left = nodes.len() as u32;
                    nodes.push(RegNodeKind::Leaf { value: 0.0 });
                    let right = nodes.len() as u32;
                    nodes.push(RegNodeKind::Leaf { value: 0.0 });
                    nodes[slot] = RegNodeKind::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    stack.push((left as usize, left_idx, depth + 1));
                    stack.push((right as usize, right_idx, depth + 1));
                }
            }
        }
        Self {
            nodes,
            n_features: data.n_features(),
        }
    }
}

fn mean_target(data: &RegressionDataset, idx: &[usize]) -> f32 {
    let sum: f64 = idx.iter().map(|&i| f64::from(data.target(i))).sum();
    (sum / idx.len().max(1) as f64) as f32
}

/// Finds the split minimizing the weighted sum of child variances.
fn best_split(
    data: &RegressionDataset,
    idx: &[usize],
    k_features: usize,
    max_thresholds: usize,
    rng: &mut StdRng,
) -> Option<(u32, f32)> {
    let parent_sse = sse(data, idx);
    if parent_sse <= 1e-12 {
        return None;
    }
    let mut features: Vec<usize> = (0..data.n_features()).collect();
    features.shuffle(rng);
    features.truncate(k_features);
    let mut best: Option<(f64, u32, f32)> = None;
    for &feature in &features {
        let mut values: Vec<f32> = idx.iter().map(|&i| data.sample(i)[feature]).collect();
        values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        let stride = (values.len() - 1).div_ceil(max_thresholds).max(1);
        let mut t = 0;
        while t + 1 < values.len() {
            let threshold = (values[t] + values[t + 1]) / 2.0;
            let (left, right): (Vec<usize>, Vec<usize>) = idx
                .iter()
                .partition(|&&i| data.sample(i)[feature] <= threshold);
            if !left.is_empty() && !right.is_empty() {
                let score = sse(data, &left) + sse(data, &right);
                if best.is_none_or(|(s, _, _)| score + 1e-12 < s) {
                    best = Some((score, feature as u32, threshold));
                }
            }
            t += stride;
        }
    }
    best.filter(|&(score, _, _)| score + 1e-9 < parent_sse)
        .map(|(_, f, t)| (f, t))
}

fn sse(data: &RegressionDataset, idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let mean = f64::from(mean_target(data, idx));
    idx.iter()
        .map(|&i| {
            let d = f64::from(data.target(i)) - mean;
            d * d
        })
        .sum()
}

/// A bagged regression forest: the prediction is the mean of per-tree leaf
/// values (the paper's `mean(results)` aggregation).
///
/// # Examples
///
/// ```
/// use bolt_forest::{RegressionConfig, RegressionDataset, RegressionForest};
///
/// let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![(i % 10) as f32]).collect();
/// let targets: Vec<f32> = rows.iter().map(|r| 3.0 * r[0] + 1.0).collect();
/// let data = RegressionDataset::from_rows(rows, targets)?;
/// let forest = RegressionForest::train(&data, &RegressionConfig::new(5).with_seed(3));
/// let y = forest.predict(&[4.0]);
/// assert!((y - 13.0).abs() < 3.0);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegressionForest {
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl RegressionForest {
    /// Trains a bagged regression forest.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_trees == 0`.
    #[must_use]
    pub fn train(data: &RegressionDataset, config: &RegressionConfig) -> Self {
        assert!(config.n_trees > 0, "a forest needs at least one tree");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let trees = (0..config.n_trees)
            .map(|t| {
                let indices: Vec<usize> = (0..data.len())
                    .map(|_| rng.gen_range(0..data.len()))
                    .collect();
                RegressionTree::train(
                    data,
                    &indices,
                    config,
                    config.seed ^ (t as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                )
            })
            .collect();
        Self {
            trees,
            n_features: data.n_features(),
        }
    }

    /// The constituent trees.
    #[must_use]
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Mean of per-tree predictions.
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the trained feature count.
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> f32 {
        let sum: f64 = self
            .trees
            .iter()
            .map(|t| f64::from(t.predict(sample)))
            .sum();
        (sum / self.trees.len() as f64) as f32
    }

    /// Mean squared error over a dataset.
    #[must_use]
    pub fn mse(&self, data: &RegressionDataset) -> f64 {
        data.iter()
            .map(|(sample, target)| {
                let d = f64::from(self.predict(sample)) - f64::from(target);
                d * d
            })
            .sum::<f64>()
            / data.len() as f64
    }

    /// The forest-wide predicate universe of its splits.
    #[must_use]
    pub fn universe(&self) -> PredicateUniverse {
        let splits = self.trees.iter().flat_map(|tree| {
            tree.nodes().iter().filter_map(|node| match *node {
                RegNodeKind::Split {
                    feature, threshold, ..
                } => Some((feature, threshold)),
                RegNodeKind::Leaf { .. } => None,
            })
        });
        PredicateUniverse::from_splits(splits, self.n_features)
    }
}

/// Enumerates the forest's root→leaf paths in predicate space; the leaf
/// value rides in [`BinaryPath::weight`] (class is unused and set to 0), so
/// Bolt's weighted-vote machinery aggregates regression sums unchanged.
#[must_use]
pub fn enumerate_regression_paths(
    forest: &RegressionForest,
    universe: &PredicateUniverse,
) -> Vec<BinaryPath> {
    let mut out = Vec::new();
    for (tree_id, tree) in forest.trees().iter().enumerate() {
        for mut path in tree.binary_paths(universe) {
            path.tree = tree_id as u32;
            out.push(path);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(seed: u64) -> RegressionDataset {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f32 / 10.0
        };
        let rows: Vec<Vec<f32>> = (0..300).map(|_| vec![next(), next()]).collect();
        let targets: Vec<f32> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 5.0).collect();
        RegressionDataset::from_rows(rows, targets).expect("valid")
    }

    #[test]
    fn learns_a_linear_function() {
        let data = linear_dataset(1);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(10).with_max_height(6).with_seed(2),
        );
        let mse = forest.mse(&data);
        // Baseline: predicting the global mean.
        let mean: f64 = data.iter().map(|(_, t)| f64::from(t)).sum::<f64>() / data.len() as f64;
        let variance: f64 = data
            .iter()
            .map(|(_, t)| (f64::from(t) - mean).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        assert!(mse < variance / 4.0, "mse {mse} vs variance {variance}");
    }

    #[test]
    fn deterministic_training() {
        let data = linear_dataset(5);
        let cfg = RegressionConfig::new(4).with_seed(7);
        assert_eq!(
            RegressionForest::train(&data, &cfg),
            RegressionForest::train(&data, &cfg)
        );
    }

    #[test]
    fn paths_cover_all_leaves_and_sum_matches_predict() {
        let data = linear_dataset(3);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(5).with_max_height(4).with_seed(9),
        );
        let universe = forest.universe();
        let paths = enumerate_regression_paths(&forest, &universe);
        let total_leaves: usize = forest.trees().iter().map(RegressionTree::n_leaves).sum();
        assert!(paths.len() <= total_leaves);
        for (sample, _) in data.iter().take(40) {
            let bits = universe.evaluate(sample);
            let matched_sum: f64 = paths
                .iter()
                .filter(|p| p.matches(&bits))
                .map(|p| p.weight)
                .sum();
            let expected = f64::from(forest.predict(sample)) * forest.n_trees() as f64;
            assert!(
                (matched_sum - expected).abs() < 1e-3,
                "path sum {matched_sum} vs forest sum {expected}"
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(RegressionDataset::from_rows(vec![], vec![]).is_err());
        assert!(RegressionDataset::from_rows(vec![vec![1.0]], vec![f32::NAN]).is_err());
        assert!(
            RegressionDataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]).is_err()
        );
    }

    #[test]
    fn height_zero_gives_global_mean() {
        let data = linear_dataset(8);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(3).with_max_height(0).with_seed(1),
        );
        let p = forest.predict(data.sample(0));
        let mean: f32 =
            (data.iter().map(|(_, t)| f64::from(t)).sum::<f64>() / data.len() as f64) as f32;
        assert!((p - mean).abs() < 1.0, "prediction {p} vs mean {mean}");
    }
}
