//! SAMME-style boosted tree ensembles (per-tree weights).
//!
//! The Bolt paper (§5, "Bolt for Complex Forest Structures") notes that
//! gradient-boosted forests like XGBoost attach a weight to each tree and
//! that Bolt supports them "by simply adding the corresponding tree weight to
//! each path". This module provides a boosted ensemble whose per-tree weights
//! exercise that path-weighting machinery end-to-end.

use crate::train::{train_tree, TreeConfig};
use crate::{Dataset, DecisionTree};
use serde::{Deserialize, Serialize};

/// Configuration for training a [`BoostedForest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoostConfig {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Per-tree training configuration (shallow trees work best).
    pub tree: TreeConfig,
    /// Learning-rate style shrinkage applied to each tree's weight.
    pub shrinkage: f64,
}

impl BoostConfig {
    /// Creates a configuration for `n_rounds` boosting rounds of stumps of
    /// height 2.
    #[must_use]
    pub fn new(n_rounds: usize) -> Self {
        Self {
            n_rounds,
            tree: TreeConfig::new().with_max_height(2),
            shrinkage: 1.0,
        }
    }

    /// Sets the per-tree maximum height.
    #[must_use]
    pub fn with_max_height(mut self, h: usize) -> Self {
        self.tree.max_height = h;
        self
    }

    /// Sets the RNG seed used for per-round feature sampling.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.tree.seed = seed;
        self
    }
}

/// A boosted ensemble: trees with real-valued weights, classified by
/// weighted vote (multi-class SAMME).
///
/// # Examples
///
/// ```
/// use bolt_forest::{BoostConfig, BoostedForest, Dataset};
///
/// let rows: Vec<Vec<f32>> = (0..30).map(|i| vec![(i % 3) as f32]).collect();
/// let labels: Vec<u32> = (0..30).map(|i| (i % 3) as u32).collect();
/// let data = Dataset::from_rows(rows, labels, 3)?;
/// let model = BoostedForest::train(&data, &BoostConfig::new(5).with_seed(4));
/// assert_eq!(model.predict(&[2.0]), 2);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoostedForest {
    trees: Vec<DecisionTree>,
    weights: Vec<f64>,
    n_classes: usize,
    n_features: usize,
}

impl BoostedForest {
    /// Trains with the multi-class SAMME algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_rounds == 0`.
    #[must_use]
    pub fn train(data: &Dataset, config: &BoostConfig) -> Self {
        assert!(config.n_rounds > 0, "boosting needs at least one round");
        let n = data.len();
        let k = data.n_classes() as f64;
        let idx: Vec<usize> = (0..n).collect();
        let mut sample_weights = vec![1.0 / n as f64; n];
        let mut trees = Vec::with_capacity(config.n_rounds);
        let mut weights = Vec::with_capacity(config.n_rounds);

        for round in 0..config.n_rounds {
            let tree_cfg = TreeConfig {
                seed: config.tree.seed ^ (round as u64).wrapping_mul(0xD134_2543_DE82_EF95),
                ..config.tree.clone()
            };
            let tree = train_tree(data, &idx, Some(&sample_weights), &tree_cfg);
            let err: f64 = data
                .iter()
                .enumerate()
                .filter(|(_, (sample, label))| tree.predict(sample) != *label)
                .map(|(i, _)| sample_weights[i])
                .sum();
            let total: f64 = sample_weights.iter().sum();
            let err = (err / total).clamp(1e-10, 1.0 - 1e-10);
            // SAMME tree weight; a weak learner must beat random guessing.
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            if alpha <= 0.0 {
                // Weaker than chance: keep the tree at negligible weight and
                // reset sample weights to avoid degenerate loops.
                trees.push(tree);
                weights.push(1e-6);
                sample_weights.iter_mut().for_each(|w| *w = 1.0 / n as f64);
                continue;
            }
            for (i, (sample, label)) in data.iter().enumerate() {
                if tree.predict(sample) != label {
                    sample_weights[i] *= (config.shrinkage * alpha).exp();
                }
            }
            let norm: f64 = sample_weights.iter().sum();
            sample_weights.iter_mut().for_each(|w| *w /= norm);
            trees.push(tree);
            weights.push(config.shrinkage * alpha);
        }
        Self {
            trees,
            weights,
            n_classes: data.n_classes(),
            n_features: data.n_features(),
        }
    }

    /// The trees with their boosting weights.
    pub fn iter(&self) -> impl Iterator<Item = (&DecisionTree, f64)> + '_ {
        self.trees.iter().zip(self.weights.iter().copied())
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of input features.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Per-class accumulated weights for one sample.
    #[must_use]
    pub fn weighted_votes(&self, sample: &[f32]) -> Vec<f64> {
        let mut scores = vec![0.0f64; self.n_classes];
        for (tree, w) in self.iter() {
            scores[tree.predict(sample) as usize] += w;
        }
        scores
    }

    /// Weighted-vote classification (ties go to the lower class index).
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> u32 {
        let scores = self.weighted_votes(sample);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] + 1e-12 {
                best = i;
            }
        }
        best as u32
    }

    /// Fraction of `data` classified correctly.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = data
            .iter()
            .filter(|(sample, label)| self.predict(sample) == *label)
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hard_dataset() -> Dataset {
        // Two informative features plus noise; boundary x0 + x1 > 8.
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                vec![
                    (i % 10) as f32,
                    ((i / 10) % 10) as f32,
                    ((i * 7) % 5) as f32,
                ]
            })
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] + r[1] > 8.0)).collect();
        Dataset::from_rows(rows, labels, 2).expect("valid")
    }

    #[test]
    fn boosting_beats_single_stump() {
        let data = hard_dataset();
        let idx: Vec<usize> = (0..data.len()).collect();
        let stump = train_tree(
            &data,
            &idx,
            None,
            &TreeConfig::new()
                .with_max_height(1)
                .with_features_per_split(3),
        );
        let stump_acc =
            data.iter().filter(|(s, l)| stump.predict(s) == *l).count() as f64 / data.len() as f64;
        let boosted =
            BoostedForest::train(&data, &BoostConfig::new(20).with_max_height(1).with_seed(5));
        assert!(
            boosted.accuracy(&data) > stump_acc,
            "boosted {} <= stump {stump_acc}",
            boosted.accuracy(&data)
        );
    }

    #[test]
    fn weights_are_positive_and_finite() {
        let data = hard_dataset();
        let model = BoostedForest::train(&data, &BoostConfig::new(8).with_seed(2));
        assert_eq!(model.n_trees(), 8);
        for (_, w) in model.iter() {
            assert!(w.is_finite() && w > 0.0, "weight {w}");
        }
    }

    #[test]
    fn weighted_votes_sum_to_total_weight() {
        let data = hard_dataset();
        let model = BoostedForest::train(&data, &BoostConfig::new(5).with_seed(3));
        let total: f64 = model.iter().map(|(_, w)| w).sum();
        let votes = model.weighted_votes(data.sample(0));
        assert!((votes.iter().sum::<f64>() - total).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let data = hard_dataset();
        let cfg = BoostConfig::new(4).with_seed(9);
        assert_eq!(
            BoostedForest::train(&data, &cfg),
            BoostedForest::train(&data, &cfg)
        );
    }
}
