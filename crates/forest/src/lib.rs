//! Decision-tree and random-forest substrate for the Bolt reproduction.
//!
//! The Bolt paper (Middleware '22) trains its forests with Python
//! Scikit-Learn and converts each tree to DOT files before compiling them to
//! lookup tables. This crate is the from-scratch Rust equivalent of that
//! substrate:
//!
//! * [`Dataset`] — dense feature matrix + class labels with split helpers.
//! * [`DecisionTree`] — binary threshold trees (`feature <= threshold`)
//!   trained with CART/Gini ([`TreeConfig`]).
//! * [`RandomForest`] — bagged ensembles with per-split feature sub-sampling
//!   ([`ForestConfig`]), majority-vote prediction.
//! * [`BoostedForest`] — SAMME-style boosted ensembles whose per-tree weights
//!   exercise Bolt's weighted-path support (§5 of the paper).
//! * [`DeepForest`] — multi-layer (gcForest-style) forests where each layer's
//!   class-probability output is appended to the next layer's input (§4.6).
//! * [`PredicateUniverse`] / [`BinaryPath`] — the forest-wide binarization
//!   Bolt operates on: every distinct `(feature, threshold)` split becomes a
//!   binary predicate, and every root→leaf path becomes a sorted list of
//!   `(predicate, bool)` pairs (§4, Fig. 3 step 1).
//! * [`dot`] — DOT export/import mirroring the paper's scikit-learn → DOT →
//!   Bolt pipeline.
//!
//! # Examples
//!
//! ```
//! use bolt_forest::{Dataset, ForestConfig, RandomForest};
//!
//! // Tiny two-class problem: class = (x0 > 0.5).
//! let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 2) as f32, i as f32]).collect();
//! let labels: Vec<u32> = (0..40).map(|i| (i % 2) as u32).collect();
//! let data = Dataset::from_rows(rows, labels, 2)?;
//! let forest = RandomForest::train(&data, &ForestConfig::new(5).with_max_height(3).with_seed(7));
//! assert_eq!(forest.predict(&[1.0, 3.0]), 1);
//! # Ok::<(), bolt_forest::ForestError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binarize;
mod boost;
pub mod csv;
mod dataset;
mod deep;
pub mod dot;
mod error;
mod forest;
mod gbt;
mod quantize;
mod regression;
mod train;
mod tree;

pub use binarize::{
    enumerate_paths, enumerate_weighted_paths, BinaryPath, PredId, Predicate, PredicateUniverse,
};
pub use boost::{BoostConfig, BoostedForest};
pub use dataset::Dataset;
pub use deep::{DeepForest, DeepForestConfig};
pub use error::ForestError;
pub use forest::{ForestConfig, OobReport, RandomForest};
pub use gbt::{GbtConfig, GradientBoostedRegressor};
pub use quantize::Quantizer;
pub use regression::{
    enumerate_regression_paths, RegNodeKind, RegressionConfig, RegressionDataset, RegressionForest,
    RegressionTree,
};
pub use train::TreeConfig;
pub use tree::{DecisionTree, NodeId, NodeKind, TreePath};
