//! Random forests: bagged ensembles of decision trees.

use crate::train::{train_tree, TreeConfig};
use crate::{Dataset, DecisionTree, ForestError};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for training a [`RandomForest`].
///
/// # Examples
///
/// ```
/// use bolt_forest::ForestConfig;
///
/// let cfg = ForestConfig::new(10).with_max_height(4).with_seed(42);
/// assert_eq!(cfg.n_trees, 10);
/// assert_eq!(cfg.tree.max_height, 4);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Per-tree training configuration.
    pub tree: TreeConfig,
    /// Whether each tree trains on a bootstrap resample of the data.
    pub bootstrap: bool,
    /// Master RNG seed; per-tree seeds are derived from it.
    pub seed: u64,
}

impl ForestConfig {
    /// Creates a configuration for `n_trees` trees with default tree settings.
    #[must_use]
    pub fn new(n_trees: usize) -> Self {
        Self {
            n_trees,
            tree: TreeConfig::new(),
            bootstrap: true,
            seed: 0,
        }
    }

    /// Sets the maximum height of every tree.
    #[must_use]
    pub fn with_max_height(mut self, max_height: usize) -> Self {
        self.tree.max_height = max_height;
        self
    }

    /// Sets the master RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables bootstrap resampling.
    #[must_use]
    pub fn with_bootstrap(mut self, bootstrap: bool) -> Self {
        self.bootstrap = bootstrap;
        self
    }

    /// Sets the number of features examined per split for every tree.
    #[must_use]
    pub fn with_features_per_split(mut self, k: usize) -> Self {
        self.tree.features_per_split = Some(k);
        self
    }
}

/// A trained random forest: independent trees whose votes are aggregated by
/// majority (ties resolved toward the lower class index).
///
/// # Examples
///
/// ```
/// use bolt_forest::{Dataset, ForestConfig, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![(i % 2) as f32]).collect();
/// let labels: Vec<u32> = (0..20).map(|i| (i % 2) as u32).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(1));
/// assert_eq!(forest.n_trees(), 3);
/// assert_eq!(forest.predict(&[0.0]), 0);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
    n_classes: usize,
}

/// Out-of-bag generalization estimate produced by
/// [`RandomForest::train_with_oob`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OobReport {
    /// Fraction of OOB-covered samples classified correctly by their
    /// out-of-bag trees.
    pub oob_accuracy: f64,
    /// Fraction of samples left out of at least one tree's bootstrap.
    pub coverage: f64,
}

impl RandomForest {
    /// Trains a forest on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_trees == 0`.
    #[must_use]
    pub fn train(data: &Dataset, config: &ForestConfig) -> Self {
        Self::train_impl(data, config).0
    }

    /// Trains a forest and reports its out-of-bag error estimate: every
    /// sample is scored only by the trees whose bootstrap missed it — the
    /// classic free generalization estimate for bagged ensembles.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_trees == 0` or bootstrap is disabled (without
    /// resampling there are no out-of-bag samples).
    #[must_use]
    pub fn train_with_oob(data: &Dataset, config: &ForestConfig) -> (Self, OobReport) {
        assert!(
            config.bootstrap,
            "out-of-bag estimation requires bootstrap resampling"
        );
        let (forest, in_bag) = Self::train_impl(data, config);
        let mut votes = vec![vec![0u32; data.n_classes()]; data.len()];
        let mut voted = vec![false; data.len()];
        for (tree, bag) in forest.trees.iter().zip(&in_bag) {
            for i in 0..data.len() {
                if !bag[i] {
                    votes[i][tree.predict(data.sample(i)) as usize] += 1;
                    voted[i] = true;
                }
            }
        }
        let mut correct = 0usize;
        let mut covered = 0usize;
        for i in 0..data.len() {
            if !voted[i] {
                continue;
            }
            covered += 1;
            let mut best = 0usize;
            for (c, &v) in votes[i].iter().enumerate().skip(1) {
                if v > votes[i][best] {
                    best = c;
                }
            }
            if best as u32 == data.label(i) {
                correct += 1;
            }
        }
        let report = OobReport {
            oob_accuracy: if covered == 0 {
                0.0
            } else {
                correct as f64 / covered as f64
            },
            coverage: covered as f64 / data.len() as f64,
        };
        (forest, report)
    }

    fn train_impl(data: &Dataset, config: &ForestConfig) -> (Self, Vec<Vec<bool>>) {
        assert!(config.n_trees > 0, "a forest needs at least one tree");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let all: Vec<usize> = (0..data.len()).collect();
        let mut in_bag = Vec::with_capacity(config.n_trees);
        let trees = (0..config.n_trees)
            .map(|t| {
                let indices: Vec<usize> = if config.bootstrap {
                    (0..data.len())
                        .map(|_| rng.gen_range(0..data.len()))
                        .collect()
                } else {
                    all.clone()
                };
                let mut bag = vec![false; data.len()];
                for &i in &indices {
                    bag[i] = true;
                }
                in_bag.push(bag);
                let tree_cfg = TreeConfig {
                    seed: config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ..config.tree.clone()
                };
                train_tree(data, &indices, None, &tree_cfg)
            })
            .collect();
        (
            Self {
                trees,
                n_features: data.n_features(),
                n_classes: data.n_classes(),
            },
            in_bag,
        )
    }

    /// Assembles a forest from pre-trained trees.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::EmptyDataset`] if `trees` is empty and
    /// [`ForestError::LabelMismatch`] if trees disagree on feature or class
    /// counts.
    pub fn from_trees(trees: Vec<DecisionTree>) -> Result<Self, ForestError> {
        let first = trees.first().ok_or(ForestError::EmptyDataset)?;
        let (n_features, n_classes) = (first.n_features(), first.n_classes());
        if let Some(bad) = trees
            .iter()
            .find(|t| t.n_features() != n_features || t.n_classes() != n_classes)
        {
            return Err(ForestError::LabelMismatch {
                detail: format!(
                    "tree shape mismatch: expected {n_features} features/{n_classes} classes, found {}/{}",
                    bad.n_features(),
                    bad.n_classes()
                ),
            });
        }
        Ok(Self {
            trees,
            n_features,
            n_classes,
        })
    }

    /// The constituent trees.
    #[must_use]
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of target classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Maximum height across trees.
    #[must_use]
    pub fn height(&self) -> usize {
        self.trees
            .iter()
            .map(DecisionTree::height)
            .max()
            .unwrap_or(0)
    }

    /// Per-class vote counts for one sample.
    #[must_use]
    pub fn vote_counts(&self, sample: &[f32]) -> Vec<u32> {
        let mut votes = vec![0u32; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(sample) as usize] += 1;
        }
        votes
    }

    /// Majority-vote classification (ties go to the lower class index).
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> u32 {
        let votes = self.vote_counts(sample);
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// Per-class vote fractions (a probability-like vector summing to 1).
    #[must_use]
    pub fn predict_proba(&self, sample: &[f32]) -> Vec<f32> {
        let votes = self.vote_counts(sample);
        let total = self.trees.len() as f32;
        votes.iter().map(|&v| v as f32 / total).collect()
    }

    /// Fraction of `data` samples classified correctly.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = data
            .iter()
            .filter(|(sample, label)| self.predict(sample) == *label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Total number of root→leaf paths across all trees.
    #[must_use]
    pub fn total_paths(&self) -> usize {
        self.trees.iter().map(DecisionTree::n_leaves).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    fn striped_dataset() -> Dataset {
        // class = x0 > 5 (with x1 as noise)
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![(i % 10) as f32, (i % 7) as f32])
            .collect();
        let labels: Vec<u32> = (0..100).map(|i| u32::from(i % 10 > 5)).collect();
        Dataset::from_rows(rows, labels, 2).expect("valid")
    }

    #[test]
    fn trains_and_predicts() {
        let data = striped_dataset();
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(10).with_max_height(4).with_seed(5),
        );
        assert_eq!(forest.n_trees(), 10);
        assert!(
            forest.accuracy(&data) > 0.9,
            "accuracy {}",
            forest.accuracy(&data)
        );
    }

    #[test]
    fn deterministic_training() {
        let data = striped_dataset();
        let cfg = ForestConfig::new(4).with_seed(77);
        assert_eq!(
            RandomForest::train(&data, &cfg),
            RandomForest::train(&data, &cfg)
        );
    }

    #[test]
    fn trees_differ_thanks_to_bootstrap() {
        let data = striped_dataset();
        // One random feature per split so sub-sampling diversifies trees even
        // on an easy dataset.
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(8).with_seed(2).with_features_per_split(1),
        );
        let distinct = forest
            .trees()
            .iter()
            .map(|t| format!("{t:?}"))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1, "bootstrap should diversify trees");
    }

    #[test]
    fn proba_sums_to_one() {
        let data = striped_dataset();
        let forest = RandomForest::train(&data, &ForestConfig::new(6).with_seed(3));
        let p = forest.predict_proba(data.sample(0));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn oob_estimate_tracks_test_accuracy() {
        let data = striped_dataset();
        let cfg = ForestConfig::new(15).with_max_height(4).with_seed(8);
        let (forest, oob) = RandomForest::train_with_oob(&data, &cfg);
        // OOB-trained forest is identical to the plain one (same RNG path).
        assert_eq!(forest, RandomForest::train(&data, &cfg));
        // With 15 bootstraps virtually every sample is OOB somewhere.
        assert!(oob.coverage > 0.95, "coverage {}", oob.coverage);
        // The estimate should be in the same ballpark as train accuracy on
        // this easy dataset (both near 1.0).
        assert!(oob.oob_accuracy > 0.8, "oob accuracy {}", oob.oob_accuracy);
    }

    #[test]
    #[should_panic(expected = "bootstrap")]
    fn oob_requires_bootstrap() {
        let data = striped_dataset();
        let cfg = ForestConfig::new(3).with_bootstrap(false);
        let _ = RandomForest::train_with_oob(&data, &cfg);
    }

    #[test]
    fn tie_breaks_to_lower_class() {
        let t0 = DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 1 }], 1, 2);
        let t1 = DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 0 }], 1, 2);
        let forest = RandomForest::from_trees(vec![t0, t1]).expect("consistent");
        assert_eq!(forest.predict(&[0.0]), 0);
    }

    #[test]
    fn from_trees_rejects_mismatched_shapes() {
        let a = DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 0 }], 1, 2);
        let b = DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 0 }], 2, 2);
        assert!(RandomForest::from_trees(vec![a, b]).is_err());
        assert!(RandomForest::from_trees(vec![]).is_err());
    }

    #[test]
    fn height_and_paths_aggregate() {
        let data = striped_dataset();
        let forest =
            RandomForest::train(&data, &ForestConfig::new(3).with_max_height(2).with_seed(1));
        assert!(forest.height() <= 2);
        assert!(forest.total_paths() >= 3);
    }
}
