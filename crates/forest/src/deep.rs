//! Multi-layer (gcForest-style) deep forests.
//!
//! §4.6/§5 of the Bolt paper: "Deep forests use multiple layers of random
//! forests ... the output of each layer is appended as a feature for
//! subsequent layers." This module trains such stacks; `bolt-core` compiles
//! each layer to lookup tables independently.

use crate::{Dataset, ForestConfig, ForestError, RandomForest};
use serde::{Deserialize, Serialize};

/// Configuration for a [`DeepForest`]: one [`ForestConfig`] per layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeepForestConfig {
    /// Per-layer forest configurations, first layer first.
    pub layers: Vec<ForestConfig>,
}

impl DeepForestConfig {
    /// A two-layer configuration (the shape evaluated in the paper's
    /// Fig. 15) with identical settings per layer.
    #[must_use]
    pub fn two_layers(base: ForestConfig) -> Self {
        let mut second = base.clone();
        second.seed ^= 0xDEE9;
        Self {
            layers: vec![base, second],
        }
    }
}

/// A trained deep forest: a stack of random forests where layer `k+1`
/// consumes the original features plus layer `k`'s per-class vote fractions.
///
/// # Examples
///
/// ```
/// use bolt_forest::{Dataset, DeepForest, DeepForestConfig, ForestConfig};
///
/// let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
/// let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let cfg = DeepForestConfig::two_layers(ForestConfig::new(3).with_max_height(3));
/// let deep = DeepForest::train(&data, &cfg)?;
/// assert_eq!(deep.n_layers(), 2);
/// let class = deep.predict(&[3.0]);
/// assert!(class < 2);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeepForest {
    layers: Vec<RandomForest>,
    n_classes: usize,
    n_features: usize,
}

impl DeepForest {
    /// Trains the stack layer by layer, augmenting the training set with each
    /// layer's outputs before training the next.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::EmptyDataset`] if `config.layers` is empty.
    pub fn train(data: &Dataset, config: &DeepForestConfig) -> Result<Self, ForestError> {
        if config.layers.is_empty() {
            return Err(ForestError::EmptyDataset);
        }
        let mut layers = Vec::with_capacity(config.layers.len());
        let mut current = data.clone();
        for (i, layer_cfg) in config.layers.iter().enumerate() {
            let forest = RandomForest::train(&current, layer_cfg);
            if i + 1 < config.layers.len() {
                let outputs: Vec<Vec<f32>> = (0..current.len())
                    .map(|s| forest.predict_proba(current.sample(s)))
                    .collect();
                current = current.with_appended_features(&outputs);
            }
            layers.push(forest);
        }
        Ok(Self {
            layers,
            n_classes: data.n_classes(),
            n_features: data.n_features(),
        })
    }

    /// The per-layer forests, first layer first.
    #[must_use]
    pub fn layers(&self) -> &[RandomForest] {
        &self.layers
    }

    /// Number of layers.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of raw input features (before augmentation).
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Runs the full stack on one sample and returns the final class.
    ///
    /// # Panics
    ///
    /// Panics if `sample.len() < n_features()`.
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> u32 {
        let mut augmented = sample[..self.n_features].to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            if i + 1 == self.layers.len() {
                return layer.predict(&augmented);
            }
            let proba = layer.predict_proba(&augmented);
            augmented.extend_from_slice(&proba);
        }
        unreachable!("constructor guarantees at least one layer")
    }

    /// Fraction of `data` classified correctly by the full stack.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = data
            .iter()
            .filter(|(sample, label)| self.predict(sample) == *label)
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiral_dataset() -> Dataset {
        let rows: Vec<Vec<f32>> = (0..120)
            .map(|i| vec![(i % 8) as f32, ((i / 8) % 5) as f32])
            .collect();
        let labels: Vec<u32> = rows
            .iter()
            .map(|r| u32::from((r[0] as u32 + r[1] as u32).is_multiple_of(2)))
            .collect();
        Dataset::from_rows(rows, labels, 2).expect("valid")
    }

    #[test]
    fn layers_consume_augmented_features() {
        let data = spiral_dataset();
        let cfg =
            DeepForestConfig::two_layers(ForestConfig::new(4).with_max_height(4).with_seed(3));
        let deep = DeepForest::train(&data, &cfg).expect("trains");
        assert_eq!(deep.layers()[0].n_features(), 2);
        assert_eq!(deep.layers()[1].n_features(), 2 + data.n_classes());
    }

    #[test]
    fn empty_config_rejected() {
        let data = spiral_dataset();
        let err =
            DeepForest::train(&data, &DeepForestConfig { layers: vec![] }).expect_err("no layers");
        assert_eq!(err, ForestError::EmptyDataset);
    }

    #[test]
    fn predict_runs_end_to_end() {
        let data = spiral_dataset();
        let cfg =
            DeepForestConfig::two_layers(ForestConfig::new(5).with_max_height(5).with_seed(7));
        let deep = DeepForest::train(&data, &cfg).expect("trains");
        assert!(deep.accuracy(&data) > 0.5);
        for (sample, _) in data.iter().take(5) {
            assert!(deep.predict(sample) < 2);
        }
    }

    #[test]
    fn single_layer_equals_plain_forest() {
        let data = spiral_dataset();
        let base = ForestConfig::new(3).with_max_height(3).with_seed(11);
        let deep = DeepForest::train(
            &data,
            &DeepForestConfig {
                layers: vec![base.clone()],
            },
        )
        .expect("trains");
        let flat = RandomForest::train(&data, &base);
        for (sample, _) in data.iter().take(20) {
            assert_eq!(deep.predict(sample), flat.predict(sample));
        }
    }
}
