//! DOT (Graphviz) export and import of decision trees.
//!
//! The paper's pipeline (§5) converts each scikit-learn tree to a DOT file —
//! "an edge-oriented textual layout" — and extracts root→leaf paths from
//! those files. This module reproduces that interchange step: trees round-trip
//! through the same `X[f] <= t` / `class = c` label grammar that
//! `sklearn.tree.export_graphviz` emits.
//!
//! # Examples
//!
//! ```
//! use bolt_forest::{dot, DecisionTree, NodeKind};
//!
//! let tree = DecisionTree::from_nodes(
//!     vec![
//!         NodeKind::Split { feature: 0, threshold: 0.5, left: 1, right: 2 },
//!         NodeKind::Leaf { class: 0 },
//!         NodeKind::Leaf { class: 1 },
//!     ],
//!     1,
//!     2,
//! );
//! let text = dot::to_dot(&tree);
//! let back = dot::from_dot(&text)?;
//! assert_eq!(tree, back);
//! # Ok::<(), bolt_forest::ForestError>(())
//! ```

use crate::{DecisionTree, ForestError, NodeKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes a tree to DOT text in the scikit-learn style.
#[must_use]
pub fn to_dot(tree: &DecisionTree) -> String {
    let mut out = String::from("digraph Tree {\nnode [shape=box] ;\n");
    for (i, node) in tree.nodes().iter().enumerate() {
        match *node {
            NodeKind::Split {
                feature, threshold, ..
            } => {
                let _ = writeln!(out, "{i} [label=\"X[{feature}] <= {threshold}\"] ;");
            }
            NodeKind::Leaf { class } => {
                let _ = writeln!(out, "{i} [label=\"class = {class}\"] ;");
            }
        }
    }
    for (i, node) in tree.nodes().iter().enumerate() {
        if let NodeKind::Split { left, right, .. } = *node {
            let _ = writeln!(out, "{i} -> {left} [label=\"true\"] ;");
            let _ = writeln!(out, "{i} -> {right} [label=\"false\"] ;");
        }
    }
    out.push_str("}\n");
    out
}

#[derive(Debug, Clone)]
enum RawNode {
    Split { feature: u32, threshold: f32 },
    Leaf { class: u32 },
}

/// Parses DOT text produced by [`to_dot`] (or scikit-learn's exporter with
/// `class = N` labels) back into a [`DecisionTree`].
///
/// # Errors
///
/// Returns [`ForestError::ParseDot`] for malformed node labels, dangling
/// edges, missing roots, or nodes with a number of children other than two.
pub fn from_dot(text: &str) -> Result<DecisionTree, ForestError> {
    let mut raw: HashMap<u32, RawNode> = HashMap::new();
    let mut edges: HashMap<u32, (Option<u32>, Option<u32>)> = HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim().trim_end_matches(';').trim();
        let err = |detail: String| ForestError::ParseDot {
            line: Some(lineno + 1),
            detail,
        };
        if line.is_empty()
            || line.starts_with("digraph")
            || line.starts_with('}')
            || line.starts_with("node ")
            || line.starts_with("edge ")
        {
            continue;
        }
        if let Some(arrow) = line.find("->") {
            // Edge line: `src -> dst [label="true|false"]`.
            let src: u32 = line[..arrow]
                .trim()
                .parse()
                .map_err(|_| err("edge source is not an integer".into()))?;
            let rest = &line[arrow + 2..];
            let dst_end = rest.find('[').unwrap_or(rest.len());
            let dst: u32 = rest[..dst_end]
                .trim()
                .parse()
                .map_err(|_| err("edge target is not an integer".into()))?;
            let slot = edges.entry(src).or_default();
            let is_true_edge = if rest.contains("true") {
                true
            } else if rest.contains("false") {
                false
            } else {
                // Unlabelled edges follow scikit-learn order: first=true.
                slot.0.is_none()
            };
            let field = if is_true_edge {
                &mut slot.0
            } else {
                &mut slot.1
            };
            if field.replace(dst).is_some() {
                return Err(err(format!("node {src} has duplicate {is_true_edge} edge")));
            }
        } else if let Some(bracket) = line.find('[') {
            // Node line: `id [label="..."]`.
            let id: u32 = line[..bracket]
                .trim()
                .parse()
                .map_err(|_| err("node id is not an integer".into()))?;
            let label_start = line
                .find("label=\"")
                .ok_or_else(|| err("node line without label".into()))?
                + 7;
            let label_end = line[label_start..]
                .find('"')
                .ok_or_else(|| err("unterminated label".into()))?
                + label_start;
            let label = &line[label_start..label_end];
            let node = if let Some(rest) = label.strip_prefix("X[") {
                let close = rest
                    .find(']')
                    .ok_or_else(|| err("missing ] in split label".into()))?;
                let feature: u32 = rest[..close]
                    .parse()
                    .map_err(|_| err("feature index is not an integer".into()))?;
                let after = rest[close + 1..].trim();
                let threshold: f32 = after
                    .strip_prefix("<=")
                    .ok_or_else(|| err("split label missing <=".into()))?
                    .split_whitespace()
                    .next()
                    .ok_or_else(|| err("missing threshold".into()))?
                    .parse()
                    .map_err(|_| err("threshold is not a number".into()))?;
                RawNode::Split { feature, threshold }
            } else if let Some(rest) = label.strip_prefix("class = ") {
                let class: u32 = rest
                    .split_whitespace()
                    .next()
                    .ok_or_else(|| err("missing class".into()))?
                    .parse()
                    .map_err(|_| err("class is not an integer".into()))?;
                RawNode::Leaf { class }
            } else {
                return Err(err(format!("unrecognized label {label:?}")));
            };
            if raw.insert(id, node).is_some() {
                return Err(err(format!("duplicate node id {id}")));
            }
        } else {
            return Err(err(format!("unrecognized line {line:?}")));
        }
    }

    if raw.is_empty() {
        return Err(ForestError::ParseDot {
            line: None,
            detail: "no nodes found".into(),
        });
    }
    // The root is the node that is never an edge target.
    let targets: std::collections::HashSet<u32> = edges
        .values()
        .flat_map(|&(a, b)| [a, b])
        .flatten()
        .collect();
    let root = *raw
        .keys()
        .find(|id| !targets.contains(id))
        .ok_or(ForestError::ParseDot {
            line: None,
            detail: "no root node (cycle?)".into(),
        })?;

    // Rebuild a forward-pointing arena by BFS from the root.
    let mut order: Vec<u32> = Vec::with_capacity(raw.len());
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(id) = queue.pop_front() {
        if remap.contains_key(&id) {
            return Err(ForestError::ParseDot {
                line: None,
                detail: format!("node {id} reachable twice (not a tree)"),
            });
        }
        remap.insert(id, order.len() as u32);
        order.push(id);
        if matches!(raw.get(&id), Some(RawNode::Split { .. })) {
            let (left, right) = edges.get(&id).copied().unwrap_or((None, None));
            let (left, right) = (
                left.ok_or_else(|| ForestError::ParseDot {
                    line: None,
                    detail: format!("split node {id} missing true edge"),
                })?,
                right.ok_or_else(|| ForestError::ParseDot {
                    line: None,
                    detail: format!("split node {id} missing false edge"),
                })?,
            );
            queue.push_back(left);
            queue.push_back(right);
        }
    }
    if order.len() != raw.len() {
        return Err(ForestError::ParseDot {
            line: None,
            detail: "unreachable nodes present".into(),
        });
    }

    let mut n_features = 1usize;
    let mut n_classes = 1usize;
    let nodes: Vec<NodeKind> = order
        .iter()
        .map(|id| match raw[id] {
            RawNode::Split { feature, threshold } => {
                n_features = n_features.max(feature as usize + 1);
                let (l, r) = edges[id];
                NodeKind::Split {
                    feature,
                    threshold,
                    left: remap[&l.expect("checked above")],
                    right: remap[&r.expect("checked above")],
                }
            }
            RawNode::Leaf { class } => {
                n_classes = n_classes.max(class as usize + 1);
                NodeKind::Leaf { class }
            }
        })
        .collect();
    Ok(DecisionTree::from_nodes(nodes, n_features, n_classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, ForestConfig, RandomForest};

    #[test]
    fn roundtrip_trained_trees() {
        let rows: Vec<Vec<f32>> = (0..80)
            .map(|i| vec![(i % 8) as f32, (i % 3) as f32])
            .collect();
        let labels: Vec<u32> = (0..80).map(|i| u32::from(i % 8 > 3)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest =
            RandomForest::train(&data, &ForestConfig::new(3).with_max_height(4).with_seed(6));
        for tree in forest.trees() {
            let text = to_dot(tree);
            let parsed = from_dot(&text).expect("round trip");
            // Compare behaviour (arena order may legitimately differ).
            for (sample, _) in data.iter() {
                assert_eq!(tree.predict(sample), parsed.predict(sample));
            }
        }
    }

    #[test]
    fn parses_sklearn_flavoured_labels() {
        let text = r#"digraph Tree {
node [shape=box] ;
0 [label="X[2] <= 0.5 gini=0.48 samples=10"] ;
1 [label="class = 1 samples=6"] ;
2 [label="class = 0 samples=4"] ;
0 -> 1 [label="true"] ;
0 -> 2 [label="false"] ;
}"#;
        let tree = from_dot(text).expect("parse");
        assert_eq!(tree.predict(&[0.0, 0.0, 0.0]), 1);
        assert_eq!(tree.predict(&[0.0, 0.0, 1.0]), 0);
        assert_eq!(tree.n_features(), 3);
    }

    #[test]
    fn unlabeled_edges_use_declaration_order() {
        let text = "digraph Tree {\n0 [label=\"X[0] <= 1\"] ;\n1 [label=\"class = 0\"] ;\n2 [label=\"class = 1\"] ;\n0 -> 1 ;\n0 -> 2 ;\n}";
        let tree = from_dot(text).expect("parse");
        assert_eq!(tree.predict(&[0.0]), 0);
        assert_eq!(tree.predict(&[5.0]), 1);
    }

    #[test]
    fn missing_edge_is_an_error() {
        let text = "digraph Tree {\n0 [label=\"X[0] <= 1\"] ;\n1 [label=\"class = 0\"] ;\n0 -> 1 [label=\"true\"] ;\n}";
        let err = from_dot(text).expect_err("missing false edge");
        assert!(matches!(err, ForestError::ParseDot { .. }));
        assert!(err.to_string().contains("false edge"));
    }

    #[test]
    fn garbage_line_reports_line_number() {
        let err = from_dot("digraph Tree {\nwat\n}").expect_err("garbage");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn empty_document_is_an_error() {
        assert!(from_dot("digraph Tree {\n}\n").is_err());
    }

    #[test]
    fn cycle_is_rejected() {
        // 0 -> 1, 1 -> 0 forms a cycle with no root.
        let text = "digraph Tree {\n0 [label=\"X[0] <= 1\"] ;\n1 [label=\"X[0] <= 2\"] ;\n0 -> 1 [label=\"true\"] ;\n0 -> 1 [label=\"false\"] ;\n1 -> 0 [label=\"true\"] ;\n1 -> 0 [label=\"false\"] ;\n}";
        assert!(from_dot(text).is_err());
    }
}
