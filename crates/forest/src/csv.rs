//! Minimal CSV ingestion for datasets.
//!
//! Real deployments feed Bolt from tabular exports; this loader covers the
//! common numeric-matrix case (comma-separated numeric features with the
//! class label in the last column, optional header) without pulling in a
//! CSV dependency.

use crate::{Dataset, ForestError};
use std::io::BufRead;

/// Reads a dataset from CSV text: one sample per line, comma-separated
/// numeric features, the **last column** being the integer class label.
/// A first line whose fields are not all numeric is treated as a header and
/// skipped. Blank lines are ignored.
///
/// A `&[u8]`/`&str` can be passed directly thanks to `BufRead` impls on
/// slices; pass `&mut reader` to keep ownership of an open file.
///
/// # Errors
///
/// Returns [`ForestError::Serde`] for I/O failures or non-numeric fields,
/// [`ForestError::RaggedRows`] for inconsistent column counts, and
/// [`ForestError::EmptyDataset`] when no data rows are present.
///
/// # Examples
///
/// ```
/// use bolt_forest::csv::from_csv;
///
/// let text = "x0,x1,label\n0.5,1.0,0\n2.5,3.5,1\n";
/// let data = from_csv(text.as_bytes())?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.n_features(), 2);
/// assert_eq!(data.label(1), 1);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
pub fn from_csv<R: BufRead>(reader: R) -> Result<Dataset, ForestError> {
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<u32> = Vec::new();
    let mut n_classes = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ForestError::Serde {
            detail: format!("read failed at line {}: {e}", lineno + 1),
        })?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f32>, _> = fields.iter().map(|f| f.parse::<f32>()).collect();
        let values = match parsed {
            Ok(values) => values,
            Err(_) if rows.is_empty() && labels.is_empty() => continue, // header
            Err(_) => {
                return Err(ForestError::Serde {
                    detail: format!("non-numeric field at line {}", lineno + 1),
                })
            }
        };
        if values.len() < 2 {
            return Err(ForestError::Serde {
                detail: format!("line {} needs at least one feature and a label", lineno + 1),
            });
        }
        let label = values[values.len() - 1];
        if label < 0.0 || label.fract() != 0.0 {
            return Err(ForestError::Serde {
                detail: format!("label {label} at line {} is not a class index", lineno + 1),
            });
        }
        let label = label as u32;
        n_classes = n_classes.max(label + 1);
        rows.push(values[..values.len() - 1].to_vec());
        labels.push(label);
    }
    Dataset::from_rows(rows, labels, n_classes as usize)
}

/// Writes a dataset as CSV (no header): features then the label, matching
/// what [`from_csv`] reads back.
///
/// # Errors
///
/// Returns [`ForestError::Serde`] for I/O failures.
pub fn to_csv<W: std::io::Write>(data: &Dataset, mut writer: W) -> Result<(), ForestError> {
    for (sample, label) in data.iter() {
        let mut line = String::with_capacity(sample.len() * 8 + 8);
        for &v in sample {
            line.push_str(&format!("{v},"));
        }
        line.push_str(&format!("{label}\n"));
        writer
            .write_all(line.as_bytes())
            .map_err(|e| ForestError::Serde {
                detail: format!("write failed: {e}"),
            })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_csv_round_trips() {
        let data = Dataset::from_rows(
            vec![vec![1.5, -2.25], vec![0.0, 4.0], vec![3.125, 7.5]],
            vec![0, 2, 1],
            3,
        )
        .expect("valid");
        let mut buf = Vec::new();
        to_csv(&data, &mut buf).expect("writes");
        let back = from_csv(&buf[..]).expect("parses");
        assert_eq!(back, data);
    }

    #[test]
    fn parses_with_and_without_header() {
        let with = from_csv("a,b,y\n1,2,0\n3,4,1\n".as_bytes()).expect("parses");
        let without = from_csv("1,2,0\n3,4,1\n".as_bytes()).expect("parses");
        assert_eq!(with, without);
        assert_eq!(with.n_classes(), 2);
        assert_eq!(with.sample(0), &[1.0, 2.0]);
    }

    #[test]
    fn blank_lines_ignored() {
        let data = from_csv("1,0\n\n2,1\n\n".as_bytes()).expect("parses");
        assert_eq!(data.len(), 2);
        assert_eq!(data.n_features(), 1);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = from_csv("1,2,0\n3,1\n".as_bytes()).expect_err("ragged");
        assert!(matches!(err, ForestError::RaggedRows { .. }));
    }

    #[test]
    fn non_numeric_mid_file_rejected() {
        let err = from_csv("1,2,0\nx,2,0\n".as_bytes()).expect_err("garbage");
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn fractional_label_rejected() {
        let err = from_csv("1,0.5\n".as_bytes()).expect_err("bad label");
        assert!(err.to_string().contains("not a class index"));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            from_csv("".as_bytes()).expect_err("empty"),
            ForestError::EmptyDataset
        ));
        assert!(from_csv("a,b,y\n".as_bytes()).is_err());
    }

    #[test]
    fn labels_define_class_count() {
        let data = from_csv("0,3\n0,0\n".as_bytes()).expect("parses");
        assert_eq!(data.n_classes(), 4);
    }
}
