//! Gradient-boosted regression trees (XGBoost-style, squared loss).
//!
//! The paper (§5): "Gradient-boosted trees, e.g., XG-Boost, apply weights to
//! trees within a forest. Bolt does not affect the training process and thus
//! can support gradient-boosting by simply adding the corresponding tree
//! weight to each path." This module trains the classic squared-loss GBM —
//! each round fits a regression tree to the current residuals, scaled by a
//! learning rate — and exposes the per-path weights Bolt compiles.

use crate::regression::{RegNodeKind, RegressionConfig, RegressionDataset, RegressionTree};
use crate::{BinaryPath, PredicateUniverse};
use serde::{Deserialize, Serialize};

/// Configuration for [`GradientBoostedRegressor::train`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GbtConfig {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Per-round tree settings (shallow trees are the GBM norm).
    pub tree: RegressionConfig,
}

impl GbtConfig {
    /// `n_rounds` rounds of height-3 trees at learning rate 0.3.
    #[must_use]
    pub fn new(n_rounds: usize) -> Self {
        let mut tree = RegressionConfig::new(1).with_max_height(3);
        tree.min_samples_split = 4;
        Self {
            n_rounds,
            learning_rate: 0.3,
            tree,
        }
    }

    /// Sets the learning rate.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the per-tree maximum height.
    #[must_use]
    pub fn with_max_height(mut self, h: usize) -> Self {
        self.tree.max_height = h;
        self
    }

    /// Sets the master RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.tree.seed = seed;
        self
    }
}

/// A squared-loss gradient-boosted ensemble: `base + lr * Σ treeᵢ(x)`.
///
/// # Examples
///
/// ```
/// use bolt_forest::{GbtConfig, GradientBoostedRegressor, RegressionDataset};
///
/// let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 10) as f32]).collect();
/// let targets: Vec<f32> = rows.iter().map(|r| r[0] * 5.0 + 2.0).collect();
/// let data = RegressionDataset::from_rows(rows, targets)?;
/// let model = GradientBoostedRegressor::train(&data, &GbtConfig::new(30).with_seed(1));
/// assert!((model.predict(&[4.0]) - 22.0).abs() < 4.0);
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostedRegressor {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl GradientBoostedRegressor {
    /// Trains with squared loss: round `t` fits the residual
    /// `y - prediction_{t-1}(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_rounds == 0` or the learning rate is not in
    /// `(0, 1]`.
    #[must_use]
    pub fn train(data: &RegressionDataset, config: &GbtConfig) -> Self {
        assert!(config.n_rounds > 0, "boosting needs at least one round");
        assert!(
            config.learning_rate > 0.0 && config.learning_rate <= 1.0,
            "learning rate must be in (0, 1], got {}",
            config.learning_rate
        );
        let base: f64 = data.iter().map(|(_, t)| f64::from(t)).sum::<f64>() / data.len() as f64;
        let mut predictions = vec![base; data.len()];
        let mut trees = Vec::with_capacity(config.n_rounds);
        for round in 0..config.n_rounds {
            // Residual targets for this round.
            let residuals: Vec<f32> = (0..data.len())
                .map(|i| (f64::from(data.target(i)) - predictions[i]) as f32)
                .collect();
            let rows: Vec<Vec<f32>> = (0..data.len()).map(|i| data.sample(i).to_vec()).collect();
            let residual_data =
                RegressionDataset::from_rows(rows, residuals).expect("residuals preserve shape");
            let mut tree_cfg = config.tree.clone();
            tree_cfg.seed = config.tree.seed ^ (round as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            tree_cfg.n_trees = 1;
            // Train on all samples (GBM uses no bagging by default).
            let indices: Vec<usize> = (0..data.len()).collect();
            let tree = RegressionTree::train_single(&residual_data, &indices, &tree_cfg);
            for (i, p) in predictions.iter_mut().enumerate() {
                *p += config.learning_rate * f64::from(tree.predict(data.sample(i)));
            }
            trees.push(tree);
        }
        Self {
            base,
            learning_rate: config.learning_rate,
            trees,
            n_features: data.n_features(),
        }
    }

    /// The constant base score (the training-target mean).
    #[must_use]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The shrinkage factor.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// The boosted trees, in round order.
    #[must_use]
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of rounds.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predicts one sample: `base + lr * Σ treeᵢ(x)`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the trained feature count.
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> f32 {
        let sum: f64 = self
            .trees
            .iter()
            .map(|t| f64::from(t.predict(sample)))
            .sum();
        (self.base + self.learning_rate * sum) as f32
    }

    /// Mean squared error over a dataset.
    #[must_use]
    pub fn mse(&self, data: &RegressionDataset) -> f64 {
        data.iter()
            .map(|(sample, target)| {
                let d = f64::from(self.predict(sample)) - f64::from(target);
                d * d
            })
            .sum::<f64>()
            / data.len() as f64
    }

    /// The ensemble-wide predicate universe.
    #[must_use]
    pub fn universe(&self) -> PredicateUniverse {
        let splits = self.trees.iter().flat_map(|tree| {
            tree.nodes().iter().filter_map(|node| match *node {
                RegNodeKind::Split {
                    feature, threshold, ..
                } => Some((feature, threshold)),
                RegNodeKind::Leaf { .. } => None,
            })
        });
        PredicateUniverse::from_splits(splits, self.n_features)
    }

    /// Enumerates the ensemble's paths: each path's weight is
    /// `learning_rate × leaf value` — exactly "adding the corresponding
    /// tree weight to each path" (§5). Summed over matched paths plus the
    /// base, this reproduces [`Self::predict`].
    #[must_use]
    pub fn enumerate_paths(&self, universe: &PredicateUniverse) -> Vec<BinaryPath> {
        let mut out = Vec::new();
        for (tree_id, tree) in self.trees.iter().enumerate() {
            for mut path in tree.binary_paths(universe) {
                path.tree = tree_id as u32;
                path.weight *= self.learning_rate;
                out.push(path);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy_dataset(seed: u64) -> RegressionDataset {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f32 / 10.0
        };
        let rows: Vec<Vec<f32>> = (0..400).map(|_| vec![next(), next()]).collect();
        let targets: Vec<f32> = rows
            .iter()
            .map(|r| r[0] * r[0] * 0.3 - r[1] * 2.0 + 7.0)
            .collect();
        RegressionDataset::from_rows(rows, targets).expect("valid")
    }

    #[test]
    fn boosting_reduces_error_monotonically_in_rounds() {
        let data = wavy_dataset(1);
        let few = GradientBoostedRegressor::train(&data, &GbtConfig::new(5).with_seed(2));
        let many = GradientBoostedRegressor::train(&data, &GbtConfig::new(60).with_seed(2));
        assert!(
            many.mse(&data) < few.mse(&data) / 2.0,
            "60 rounds {} vs 5 rounds {}",
            many.mse(&data),
            few.mse(&data)
        );
    }

    #[test]
    fn base_is_target_mean() {
        let data = wavy_dataset(3);
        let model = GradientBoostedRegressor::train(&data, &GbtConfig::new(3).with_seed(1));
        let mean: f64 = data.iter().map(|(_, t)| f64::from(t)).sum::<f64>() / data.len() as f64;
        assert!((model.base() - mean).abs() < 1e-6);
    }

    #[test]
    fn path_sums_reproduce_predictions() {
        let data = wavy_dataset(5);
        let model = GradientBoostedRegressor::train(&data, &GbtConfig::new(12).with_seed(4));
        let universe = model.universe();
        let paths = model.enumerate_paths(&universe);
        for (sample, _) in data.iter().take(40) {
            let bits = universe.evaluate(sample);
            let sum: f64 = paths
                .iter()
                .filter(|p| p.matches(&bits))
                .map(|p| p.weight)
                .sum();
            let expected = f64::from(model.predict(sample));
            assert!(
                (model.base() + sum - expected).abs() < 1e-3,
                "base+paths {} vs predict {expected}",
                model.base() + sum
            );
        }
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_learning_rate_rejected() {
        let data = wavy_dataset(1);
        let _ = GradientBoostedRegressor::train(&data, &GbtConfig::new(2).with_learning_rate(0.0));
    }

    #[test]
    fn deterministic() {
        let data = wavy_dataset(9);
        let cfg = GbtConfig::new(6).with_seed(11);
        assert_eq!(
            GradientBoostedRegressor::train(&data, &cfg),
            GradientBoostedRegressor::train(&data, &cfg)
        );
    }
}
