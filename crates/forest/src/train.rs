//! CART training with Gini impurity.

use crate::{Dataset, DecisionTree, NodeKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for training a single [`DecisionTree`].
///
/// Mirrors the knobs machine-learning experts use in the paper (§2): maximum
/// height, minimum node size, and the per-split feature sub-sampling that
/// makes forests diverse.
///
/// # Examples
///
/// ```
/// use bolt_forest::TreeConfig;
///
/// let cfg = TreeConfig::new().with_max_height(4).with_seed(1);
/// assert_eq!(cfg.max_height, 4);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree height (edges from root to deepest leaf).
    pub max_height: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of candidate features examined per split; `None` means
    /// `ceil(sqrt(n_features))` as in classic random forests.
    pub features_per_split: Option<usize>,
    /// Maximum number of candidate thresholds evaluated per feature.
    pub max_thresholds: usize,
    /// RNG seed for feature sub-sampling.
    pub seed: u64,
}

impl TreeConfig {
    /// A sensible default configuration (height 8, `sqrt` feature sampling).
    #[must_use]
    pub fn new() -> Self {
        Self {
            max_height: 8,
            min_samples_split: 2,
            features_per_split: None,
            max_thresholds: 16,
            seed: 0,
        }
    }

    /// Sets the maximum tree height.
    #[must_use]
    pub fn with_max_height(mut self, max_height: usize) -> Self {
        self.max_height = max_height;
        self
    }

    /// Sets the number of features examined per split.
    #[must_use]
    pub fn with_features_per_split(mut self, k: usize) -> Self {
        self.features_per_split = Some(k);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the minimum samples needed to split a node.
    #[must_use]
    pub fn with_min_samples_split(mut self, n: usize) -> Self {
        self.min_samples_split = n.max(2);
        self
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Trains a single tree on (a subset of) `data` given by `indices`.
///
/// Weighted variants pass per-sample weights (used by boosting); pass `None`
/// for uniform weights.
pub(crate) fn train_tree(
    data: &Dataset,
    indices: &[usize],
    weights: Option<&[f64]>,
    config: &TreeConfig,
) -> DecisionTree {
    assert!(!indices.is_empty(), "cannot train on zero samples");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut nodes: Vec<NodeKind> = Vec::new();
    // Work stack: (arena slot to fill, samples, depth).
    // We reserve slots so children always point forward.
    nodes.push(NodeKind::Leaf { class: 0 }); // placeholder for root
    let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(0, indices.to_vec(), 0)];
    let k_features = config
        .features_per_split
        .unwrap_or_else(|| (data.n_features() as f64).sqrt().ceil() as usize)
        .clamp(1, data.n_features());

    while let Some((slot, idx, depth)) = stack.pop() {
        let majority = majority_class(data, &idx, weights);
        let should_split = depth < config.max_height
            && idx.len() >= config.min_samples_split
            && !is_pure(data, &idx);
        let split = if should_split {
            best_split(
                data,
                &idx,
                weights,
                k_features,
                config.max_thresholds,
                &mut rng,
            )
        } else {
            None
        };
        match split {
            None => nodes[slot] = NodeKind::Leaf { class: majority },
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                    .iter()
                    .partition(|&&i| data.sample(i)[feature as usize] <= threshold);
                debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
                let left = nodes.len() as u32;
                nodes.push(NodeKind::Leaf { class: 0 }); // placeholder
                let right = nodes.len() as u32;
                nodes.push(NodeKind::Leaf { class: 0 }); // placeholder
                nodes[slot] = NodeKind::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                stack.push((left as usize, left_idx, depth + 1));
                stack.push((right as usize, right_idx, depth + 1));
            }
        }
    }
    DecisionTree::from_nodes(nodes, data.n_features(), data.n_classes())
}

fn weight_of(weights: Option<&[f64]>, i: usize) -> f64 {
    weights.map_or(1.0, |w| w[i])
}

fn is_pure(data: &Dataset, idx: &[usize]) -> bool {
    let first = data.label(idx[0]);
    idx.iter().all(|&i| data.label(i) == first)
}

fn majority_class(data: &Dataset, idx: &[usize], weights: Option<&[f64]>) -> u32 {
    let mut counts = vec![0.0f64; data.n_classes()];
    for &i in idx {
        counts[data.label(i) as usize] += weight_of(weights, i);
    }
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
        .map(|(c, _)| c as u32)
        .unwrap_or(0)
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c / total;
            p * p
        })
        .sum::<f64>()
}

/// Finds the `(feature, threshold)` with the lowest weighted Gini impurity
/// among `k_features` randomly chosen features, or `None` if no split
/// separates the samples.
fn best_split(
    data: &Dataset,
    idx: &[usize],
    weights: Option<&[f64]>,
    k_features: usize,
    max_thresholds: usize,
    rng: &mut StdRng,
) -> Option<(u32, f32)> {
    let mut features: Vec<usize> = (0..data.n_features()).collect();
    features.shuffle(rng);
    features.truncate(k_features);

    let n_classes = data.n_classes();
    let total_weight: f64 = idx.iter().map(|&i| weight_of(weights, i)).sum();
    let mut best: Option<(f64, u32, f32)> = None;

    for &feature in &features {
        // Candidate thresholds: midpoints between adjacent distinct values.
        let mut values: Vec<f32> = idx.iter().map(|&i| data.sample(i)[feature]).collect();
        values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        let stride = (values.len() - 1).div_ceil(max_thresholds).max(1);
        let mut t = 0;
        while t + 1 < values.len() {
            let threshold = (values[t] + values[t + 1]) / 2.0;
            let mut left = vec![0.0f64; n_classes];
            let mut right = vec![0.0f64; n_classes];
            let (mut wl, mut wr) = (0.0f64, 0.0f64);
            for &i in idx {
                let w = weight_of(weights, i);
                if data.sample(i)[feature] <= threshold {
                    left[data.label(i) as usize] += w;
                    wl += w;
                } else {
                    right[data.label(i) as usize] += w;
                    wr += w;
                }
            }
            if wl > 0.0 && wr > 0.0 {
                let score = (wl * gini(&left, wl) + wr * gini(&right, wr)) / total_weight;
                let better = best.is_none_or(|(s, _, _)| score + 1e-12 < s);
                if better {
                    best = Some((score, feature as u32, threshold));
                }
            }
            t += stride;
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR of two binary features: needs height >= 2.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..10 {
                    rows.push(vec![a as f32, b as f32]);
                    labels.push((a ^ b) as u32);
                }
            }
        }
        Dataset::from_rows(rows, labels, 2).expect("valid")
    }

    #[test]
    fn learns_xor_with_enough_height() {
        let data = xor_dataset();
        let idx: Vec<usize> = (0..data.len()).collect();
        let cfg = TreeConfig::new()
            .with_max_height(3)
            .with_features_per_split(2)
            .with_seed(3);
        let tree = train_tree(&data, &idx, None, &cfg);
        for (sample, label) in data.iter() {
            assert_eq!(tree.predict(sample), label);
        }
    }

    #[test]
    fn respects_max_height() {
        let data = xor_dataset();
        let idx: Vec<usize> = (0..data.len()).collect();
        for h in 0..4 {
            let cfg = TreeConfig::new()
                .with_max_height(h)
                .with_features_per_split(2);
            let tree = train_tree(&data, &idx, None, &cfg);
            assert!(tree.height() <= h, "height {} > limit {h}", tree.height());
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1, 1, 1], 2)
            .expect("valid");
        let tree = train_tree(&data, &[0, 1, 2], None, &TreeConfig::new());
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.predict(&[9.0]), 1);
    }

    #[test]
    fn weighted_majority_prefers_heavy_samples() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![0.0], vec![0.0]], vec![0, 0, 1], 2)
            .expect("valid");
        // Identical features: tree is a single leaf; weights decide the class.
        let weights = vec![0.1, 0.1, 5.0];
        let tree = train_tree(&data, &[0, 1, 2], Some(&weights), &TreeConfig::new());
        assert_eq!(tree.predict(&[0.0]), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = xor_dataset();
        let idx: Vec<usize> = (0..data.len()).collect();
        let cfg = TreeConfig::new().with_seed(11);
        let a = train_tree(&data, &idx, None, &cfg);
        let b = train_tree(&data, &idx, None, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn config_builder_chains() {
        let cfg = TreeConfig::new()
            .with_max_height(2)
            .with_min_samples_split(1)
            .with_features_per_split(3)
            .with_seed(5);
        assert_eq!(cfg.max_height, 2);
        assert_eq!(cfg.min_samples_split, 2, "min split clamps to 2");
        assert_eq!(cfg.features_per_split, Some(3));
        assert_eq!(cfg.seed, 5);
    }
}
