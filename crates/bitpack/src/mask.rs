//! Fixed-width, word-backed bitmasks.

use crate::BitVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-width bitmask backed by 64-bit words.
///
/// `Mask` is the workhorse of Bolt's dictionary scan (§4.3 of the paper): a
/// dictionary entry stores a mask of its *common* predicates and the expected
/// values under that mask, and an input matches the entry iff
/// `input.and(&mask) == key`. All operations are branch-free word loops.
///
/// # Examples
///
/// ```
/// use bolt_bitpack::Mask;
///
/// let mut mask = Mask::zeros(8);
/// mask.set(1, true);
/// mask.set(3, true);
/// let mut input = Mask::zeros(8);
/// input.set(1, true);
/// input.set(6, true); // outside the mask, ignored by masked_eq
/// let mut key = Mask::zeros(8);
/// key.set(1, true);
/// assert!(input.masked_eq(&mask, &key));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mask {
    words: Vec<u64>,
    width: usize,
}

impl Mask {
    /// Creates an all-zero mask of `width` bits.
    #[must_use]
    pub fn zeros(width: usize) -> Self {
        Self {
            words: vec![0; width.div_ceil(64).max(1)],
            width,
        }
    }

    /// Creates a mask from a [`BitVec`], preserving its length as the width.
    #[must_use]
    pub fn from_bitvec(bits: &BitVec) -> Self {
        let mut m = Self::zeros(bits.len());
        m.words[..bits.as_words().len()].copy_from_slice(bits.as_words());
        m
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.width,
            "bit {index} out of width {}",
            self.width
        );
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Sets bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.width,
            "bit {index} out of width {}",
            self.width
        );
        let m = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= m;
        } else {
            self.words[index / 64] &= !m;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise AND, producing a new mask of the same width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.width, other.width, "mask width mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            width: self.width,
        }
    }

    /// Bitwise OR, producing a new mask of the same width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.width, other.width, "mask width mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            width: self.width,
        }
    }

    /// The branch-free masked comparison `(self & mask) == key`.
    ///
    /// This is exactly the test Bolt runs per dictionary entry during
    /// inference: it simultaneously decides whether the input is relevant to
    /// the entry without any conditional control flow inside the word loop.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn masked_eq(&self, mask: &Self, key: &Self) -> bool {
        assert_eq!(self.width, mask.width, "mask width mismatch");
        assert_eq!(self.width, key.width, "key width mismatch");
        let mut diff = 0u64;
        for ((a, m), k) in self.words.iter().zip(&mask.words).zip(&key.words) {
            diff |= (a & m) ^ k;
        }
        diff == 0
    }

    /// Whether every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.width, other.width, "mask width mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Borrows the backing words.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutably borrows the backing words for bulk updates.
    ///
    /// Callers must keep bits at or beyond [`Self::width`] zero; the word
    /// count and width are fixed.
    #[must_use]
    pub fn as_mut_words(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Sets the contiguous run of `len` bits starting at `start`, word-wise.
    ///
    /// # Panics
    ///
    /// Panics if the run extends past the mask width.
    pub fn set_run(&mut self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        assert!(
            start + len <= self.width,
            "run {start}+{len} exceeds width {}",
            self.width
        );
        let (mut bit, end) = (start, start + len);
        while bit < end {
            let word = bit / 64;
            let offset = bit % 64;
            let span = (64 - offset).min(end - bit);
            let mask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << offset
            };
            self.words[word] |= mask;
            bit += span;
        }
    }

    /// Heap bytes used by the packed words.
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let width = self.width;
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
            .take_while(move |&i| i < width)
        })
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask<{}>{{", self.width)?;
        let ones: Vec<usize> = self.ones().collect();
        for (i, b) in ones.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_across_words() {
        let mut m = Mask::zeros(200);
        for i in [0, 63, 64, 127, 128, 199] {
            m.set(i, true);
            assert!(m.get(i));
        }
        assert_eq!(m.count_ones(), 6);
    }

    #[test]
    fn and_or_basic() {
        let mut a = Mask::zeros(10);
        let mut b = Mask::zeros(10);
        a.set(1, true);
        a.set(2, true);
        b.set(2, true);
        b.set(3, true);
        assert_eq!(a.and(&b).ones().collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.or(&b).ones().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn masked_eq_ignores_unmasked_bits() {
        let mut input = Mask::zeros(70);
        input.set(0, true);
        input.set(69, true);
        let mut mask = Mask::zeros(70);
        mask.set(0, true);
        let mut key = Mask::zeros(70);
        key.set(0, true);
        assert!(input.masked_eq(&mask, &key));
        // Flip the masked bit: no longer matches.
        input.set(0, false);
        assert!(!input.masked_eq(&mask, &key));
    }

    #[test]
    fn subset_detection() {
        let mut small = Mask::zeros(128);
        let mut big = Mask::zeros(128);
        small.set(5, true);
        big.set(5, true);
        big.set(100, true);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
    }

    #[test]
    fn ones_iterator_order() {
        let mut m = Mask::zeros(130);
        for i in [129, 3, 64] {
            m.set(i, true);
        }
        assert_eq!(m.ones().collect::<Vec<_>>(), vec![3, 64, 129]);
    }

    #[test]
    fn from_bitvec_preserves_bits() {
        let bits: BitVec = [true, false, true].into_iter().collect();
        let m = Mask::from_bitvec(&bits);
        assert_eq!(m.width(), 3);
        assert!(m.get(0) && !m.get(1) && m.get(2));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn and_width_mismatch_panics() {
        let _ = Mask::zeros(3).and(&Mask::zeros(4));
    }

    #[test]
    fn debug_nonempty_for_zero_mask() {
        assert_eq!(format!("{:?}", Mask::zeros(4)), "Mask<4>{}");
    }

    #[test]
    fn set_run_matches_individual_sets() {
        for (start, len) in [(0, 1), (5, 60), (63, 2), (0, 130), (64, 64), (10, 0)] {
            let mut by_run = Mask::zeros(130);
            let mut by_bit = Mask::zeros(130);
            by_run.set_run(start, len);
            for i in start..start + len {
                by_bit.set(i, true);
            }
            assert_eq!(by_run, by_bit, "run ({start}, {len})");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn set_run_out_of_range_panics() {
        Mask::zeros(10).set_run(5, 6);
    }

    #[test]
    fn clear_resets_all_bits() {
        let mut m = Mask::zeros(100);
        m.set_run(0, 100);
        m.clear();
        assert_eq!(m.count_ones(), 0);
    }

    proptest! {
        #[test]
        fn prop_set_run_equals_loop(width in 1usize..300, a in any::<usize>(), b in any::<usize>()) {
            let start = a % width;
            let len = b % (width - start + 1);
            let mut by_run = Mask::zeros(width);
            let mut by_bit = Mask::zeros(width);
            by_run.set_run(start, len);
            for i in start..start + len {
                by_bit.set(i, true);
            }
            prop_assert_eq!(by_run, by_bit);
        }

        #[test]
        fn prop_masked_eq_matches_naive(
            bits in proptest::collection::vec(any::<(bool, bool, bool)>(), 1..200)
        ) {
            let width = bits.len();
            let mut input = Mask::zeros(width);
            let mut mask = Mask::zeros(width);
            let mut key = Mask::zeros(width);
            for (i, &(a, m, k)) in bits.iter().enumerate() {
                input.set(i, a);
                mask.set(i, m);
                key.set(i, k && m); // keys only make sense under the mask
            }
            let naive = (0..width).all(|i| (input.get(i) && mask.get(i)) == key.get(i));
            prop_assert_eq!(input.masked_eq(&mask, &key), naive);
        }

        #[test]
        fn prop_subset_consistent_with_or(
            bits in proptest::collection::vec(any::<(bool, bool)>(), 1..200)
        ) {
            let width = bits.len();
            let mut a = Mask::zeros(width);
            let mut b = Mask::zeros(width);
            for (i, &(x, y)) in bits.iter().enumerate() {
                a.set(i, x);
                b.set(i, y);
            }
            prop_assert_eq!(a.is_subset_of(&b), a.or(&b) == b);
        }
    }
}
