//! Fixed-width packed integer vectors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vector of unsigned integers stored with a fixed bit width (1–64 bits).
///
/// The Bolt paper's implementation section (§5) stores feature values with
/// only enough bits to represent the largest value used in any binary split,
/// instead of full-width integers. `PackedIntVec` is that representation.
///
/// # Examples
///
/// ```
/// use bolt_bitpack::PackedIntVec;
///
/// let mut v = PackedIntVec::new(9); // e.g. pixel thresholds 0..=511
/// v.push(200);
/// v.push(511);
/// assert_eq!(v.get(1), Some(511));
/// assert_eq!(v.packed_bytes(), 8); // both values fit in one word
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedIntVec {
    words: Vec<u64>,
    width: u32,
    len: usize,
}

impl PackedIntVec {
    /// Creates an empty vector whose elements occupy `width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be in 1..=64, got {width}"
        );
        Self {
            words: Vec::new(),
            width,
            len: 0,
        }
    }

    /// Creates a vector by packing `values` at the given width.
    ///
    /// # Panics
    ///
    /// Panics if the width is invalid or any value does not fit.
    #[must_use]
    pub fn from_values(width: u32, values: impl IntoIterator<Item = u64>) -> Self {
        let mut v = Self::new(width);
        for value in values {
            v.push(value);
        }
        v
    }

    /// Bit width of each element.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest value representable at this width.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Appends a value.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the configured width.
    pub fn push(&mut self, value: u64) {
        assert!(
            value <= self.max_value(),
            "value {value} does not fit in {} bits",
            self.width
        );
        let bit = self.len * self.width as usize;
        let word = bit / 64;
        let offset = (bit % 64) as u32;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << offset;
        let spill = offset + self.width > 64;
        if spill {
            self.words.push(value >> (64 - offset));
        }
        self.len += 1;
    }

    /// Returns the element at `index`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<u64> {
        if index >= self.len {
            return None;
        }
        let bit = index * self.width as usize;
        let word = bit / 64;
        let offset = (bit % 64) as u32;
        let mut value = self.words[word] >> offset;
        if offset + self.width > 64 {
            value |= self.words[word + 1] << (64 - offset);
        }
        Some(value & self.max_value())
    }

    /// Iterates over the stored values in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("index in range"))
    }

    /// Heap bytes used by the packed words.
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl fmt::Debug for PackedIntVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedIntVec<{}b>", self.width)?;
        f.debug_list().entries(self.iter()).finish()
    }
}

impl Extend<u64> for PackedIntVec {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_get_simple() {
        let mut v = PackedIntVec::new(3);
        for x in 0..8 {
            v.push(x);
        }
        for x in 0..8 {
            assert_eq!(v.get(x as usize), Some(x));
        }
        assert_eq!(v.get(8), None);
    }

    #[test]
    fn values_straddling_word_boundary() {
        // width 60: second value straddles the first/second word.
        let mut v = PackedIntVec::new(60);
        let a = (1u64 << 60) - 1;
        let b = 0x00ab_cdef_0123_4567;
        v.push(a);
        v.push(b);
        assert_eq!(v.get(0), Some(a));
        assert_eq!(v.get(1), Some(b));
    }

    #[test]
    fn width_64_roundtrip() {
        let mut v = PackedIntVec::new(64);
        v.push(u64::MAX);
        v.push(0);
        assert_eq!(v.get(0), Some(u64::MAX));
        assert_eq!(v.get(1), Some(0));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_panics() {
        let mut v = PackedIntVec::new(4);
        v.push(16);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_panics() {
        let _ = PackedIntVec::new(0);
    }

    #[test]
    fn packing_saves_space_vs_u64() {
        let v = PackedIntVec::from_values(8, 0..64u64);
        // 64 8-bit values = 512 bits = 8 words, vs 64 words for Vec<u64>.
        assert_eq!(v.packed_bytes(), 64);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(width in 1u32..=64, raw in proptest::collection::vec(any::<u64>(), 0..150)) {
            let max = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let values: Vec<u64> = raw.iter().map(|v| v & max).collect();
            let packed = PackedIntVec::from_values(width, values.iter().copied());
            prop_assert_eq!(packed.len(), values.len());
            prop_assert_eq!(packed.iter().collect::<Vec<_>>(), values);
        }
    }
}
