//! Growable vector of single bits.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A growable, heap-allocated vector of bits packed into 64-bit words.
///
/// Used throughout Bolt for predicate evaluations (one bit per binary
/// feature-value test) and for the packed representation of lookup-table
/// addresses.
///
/// # Examples
///
/// ```
/// use bolt_bitpack::BitVec;
///
/// let mut v = BitVec::new();
/// v.push(true);
/// v.push(false);
/// v.push(true);
/// assert_eq!(v.len(), 3);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(v.iter().collect::<Vec<_>>(), vec![true, false, true]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` zero bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector stores no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Returns the bit at `index`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some(self.words[index / 64] >> (index % 64) & 1 == 1)
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("index in range"))
    }

    /// Borrows the backing words. The final word's unused high bits are zero.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Total heap bytes used by the packed representation.
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for bit in self.iter() {
            write!(f, "{}", u8::from(bit))?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::new();
        for bit in iter {
            v.push(bit);
        }
        v
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_get_roundtrip() {
        let mut v = BitVec::new();
        let pattern = [true, false, true, true, false];
        for &b in &pattern {
            v.push(b);
        }
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), Some(b));
        }
        assert_eq!(v.get(5), None);
    }

    #[test]
    fn zeros_then_set() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.count_ones(), 0);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert_eq!(v.count_ones(), 3);
        assert_eq!(v.get(64), Some(true));
        assert_eq!(v.get(63), Some(false));
    }

    #[test]
    fn set_then_clear() {
        let mut v = BitVec::zeros(10);
        v.set(3, true);
        assert_eq!(v.get(3), Some(true));
        v.set(3, false);
        assert_eq!(v.get(3), Some(false));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = BitVec::zeros(4);
        v.set(4, true);
    }

    #[test]
    fn debug_is_nonempty() {
        let v = BitVec::zeros(2);
        assert_eq!(format!("{v:?}"), "BitVec[00]");
        assert_eq!(format!("{:?}", BitVec::new()), "BitVec[]");
    }

    #[test]
    fn from_iterator_matches_pushes() {
        let bits = vec![true, true, false, true];
        let v: BitVec = bits.iter().copied().collect();
        assert_eq!(v.iter().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn unused_high_bits_are_zero() {
        let mut v = BitVec::new();
        v.push(true);
        assert_eq!(v.as_words(), &[1]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v: BitVec = bits.iter().copied().collect();
            prop_assert_eq!(v.len(), bits.len());
            prop_assert_eq!(v.iter().collect::<Vec<_>>(), bits.clone());
            prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
        }

        #[test]
        fn prop_set_is_idempotent(len in 1usize..200, idx_seed in any::<usize>(), bit in any::<bool>()) {
            let idx = idx_seed % len;
            let mut v = BitVec::zeros(len);
            v.set(idx, bit);
            v.set(idx, bit);
            prop_assert_eq!(v.get(idx), Some(bit));
        }
    }
}
