//! Word-level helpers for multi-sample (lane-parallel) masked compares.
//!
//! Bolt's per-sample dictionary scan tests one input against one entry at a
//! time: `(input & mask) == key` over the entry's stride words. The batched
//! engine inverts that loop — for each entry it tests *B* encoded samples at
//! once. When the batch's mask words are stored lane-contiguously (word `w`
//! of sample `b` at `lanes[w * B + b]`), the per-word compare becomes a
//! dense loop over `B` adjacent words with a single broadcast mask/key pair,
//! which the compiler auto-vectorizes into wide SIMD ops. These helpers are
//! that inner loop.

/// Folds one entry word's masked compare into per-sample diff accumulators:
/// `diffs[b] |= (lanes[b] & mask) ^ key` for every lane.
///
/// A sample matches the entry iff its accumulated diff over all stride
/// words is zero — exactly the per-sample `masked_eq`, vectorized across
/// the batch.
///
/// # Panics
///
/// Panics if `lanes` and `diffs` differ in length.
#[inline]
pub fn fold_masked_compare(lanes: &[u64], mask: u64, key: u64, diffs: &mut [u64]) {
    assert_eq!(
        lanes.len(),
        diffs.len(),
        "lane count {} != diff count {}",
        lanes.len(),
        diffs.len()
    );
    for (d, &w) in diffs.iter_mut().zip(lanes) {
        *d |= (w & mask) ^ key;
    }
}

/// Overwrites each diff with one entry word's masked compare:
/// `diffs[b] = (lanes[b] & mask) ^ key` for every lane.
///
/// The non-accumulating variant of [`fold_masked_compare`], used for the
/// first stride word so the kernel skips a separate zero-fill pass.
///
/// # Panics
///
/// Panics if `lanes` and `diffs` differ in length.
#[inline]
pub fn masked_compare_into(lanes: &[u64], mask: u64, key: u64, diffs: &mut [u64]) {
    assert_eq!(
        lanes.len(),
        diffs.len(),
        "lane count {} != diff count {}",
        lanes.len(),
        diffs.len()
    );
    for (d, &w) in diffs.iter_mut().zip(lanes) {
        *d = (w & mask) ^ key;
    }
}

/// Appends the indices of zero diff accumulators (the samples that matched
/// every word of the entry) to `out`.
#[inline]
pub fn zero_lanes_into(diffs: &[u64], out: &mut Vec<u32>) {
    for (i, &d) in diffs.iter().enumerate() {
        if d == 0 {
            out.push(i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mask;

    #[test]
    fn fold_agrees_with_single_sample_masked_eq() {
        // 8 samples over one word, random-ish bit patterns.
        let inputs: Vec<u64> = (0..8).map(|i| 0x9E37_79B9u64.wrapping_mul(i + 1)).collect();
        let mask = 0x0F0F_0F0F_0F0Fu64;
        let key = inputs[3] & mask; // sample 3 matches by construction
        let mut diffs = vec![0u64; 8];
        fold_masked_compare(&inputs, mask, key, &mut diffs);
        for (b, (&input, &diff)) in inputs.iter().zip(&diffs).enumerate() {
            let mut im = Mask::zeros(64);
            let mut mm = Mask::zeros(64);
            let mut km = Mask::zeros(64);
            im.as_mut_words()[0] = input;
            mm.as_mut_words()[0] = mask;
            km.as_mut_words()[0] = key;
            assert_eq!(diff == 0, im.masked_eq(&mm, &km), "sample {b}");
        }
    }

    #[test]
    fn fold_accumulates_across_words() {
        // Two stride words: a sample must match both to stay zero.
        let word0 = [0b1010u64, 0b1010];
        let word1 = [0b0001u64, 0b0000];
        let mut diffs = vec![0u64; 2];
        fold_masked_compare(&word0, 0b1111, 0b1010, &mut diffs);
        assert_eq!(diffs, [0, 0]);
        fold_masked_compare(&word1, 0b0001, 0b0001, &mut diffs);
        assert_eq!(diffs[0], 0, "sample 0 matches both words");
        assert_ne!(diffs[1], 0, "sample 1 fails the second word");
    }

    #[test]
    fn zero_lanes_reports_matching_indices() {
        let mut out = Vec::new();
        zero_lanes_into(&[0, 3, 0, 0, 9], &mut out);
        assert_eq!(out, [0, 2, 3]);
        // Appends without clearing.
        zero_lanes_into(&[1, 0], &mut out);
        assert_eq!(out, [0, 2, 3, 1]);
    }

    #[test]
    fn compare_into_overwrites_stale_diffs() {
        let mut diffs = vec![u64::MAX; 3];
        masked_compare_into(&[0b1010, 0b1000, 0b0010], 0b1010, 0b1010, &mut diffs);
        assert_eq!(diffs[0], 0, "exact match overwrites a stale nonzero diff");
        assert_ne!(diffs[1], 0);
        assert_ne!(diffs[2], 0);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn mismatched_lengths_panic() {
        fold_masked_compare(&[0u64; 3], 0, 0, &mut [0u64; 2]);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn compare_into_mismatched_lengths_panic() {
        masked_compare_into(&[0u64; 2], 0, 0, &mut [0u64; 3]);
    }
}
