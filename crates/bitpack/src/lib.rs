//! Bit-level packed containers used by Bolt's compressed memory layouts.
//!
//! The Bolt paper (§5, Fig. 8) reports that verbose data layouts inflate the
//! storage demand of lookup tables and dictionaries, and that bit-level
//! packing of masks, feature values, results, and dictionary entry IDs is
//! what lets a compiled forest fit in processor cache. This crate provides
//! the packing primitives:
//!
//! * [`BitVec`] — a growable vector of single bits.
//! * [`Mask`] — a fixed-width, word-backed bitmask supporting the branch-free
//!   `(input & mask) == key` membership test at the heart of Bolt's
//!   dictionary scan.
//! * [`PackedIntVec`] — a vector of fixed-width (1–64 bit) unsigned integers.
//! * [`KneeCodec`] — the "knee-point" variable-width codec from §5 of the
//!   paper: most values are stored with just enough bits to cover the 99th
//!   percentile, and rare outliers spill into a side table.
//! * [`lanes`] — word-level helpers for the batched engine's entry-major,
//!   multi-sample masked compare.
//!
//! # Examples
//!
//! ```
//! use bolt_bitpack::{BitVec, Mask, PackedIntVec};
//!
//! let mut bits = BitVec::new();
//! bits.push(true);
//! bits.push(false);
//! assert_eq!(bits.get(0), Some(true));
//!
//! let mut mask = Mask::zeros(128);
//! mask.set(70, true);
//! assert!(mask.get(70));
//!
//! let mut packed = PackedIntVec::new(5); // 5 bits per value
//! packed.push(21);
//! assert_eq!(packed.get(0), Some(21));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod knee;
pub mod lanes;
mod mask;
mod packed;

pub use bitvec::BitVec;
pub use knee::{KneeCodec, KneeStats};
pub use mask::Mask;
pub use packed::PackedIntVec;

/// Number of bits required to represent `value` (at least 1).
///
/// ```
/// assert_eq!(bolt_bitpack::bits_for(0), 1);
/// assert_eq!(bolt_bitpack::bits_for(1), 1);
/// assert_eq!(bolt_bitpack::bits_for(255), 8);
/// assert_eq!(bolt_bitpack::bits_for(256), 9);
/// ```
#[must_use]
pub fn bits_for(value: u64) -> u32 {
    if value == 0 {
        1
    } else {
        64 - value.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::bits_for;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(u64::MAX), 64);
    }
}
