//! Knee-point variable-width codec for lookup-table results.
//!
//! Bolt's implementation (§5 of the paper) observes that *most* results fit
//! in a few bits but a handful need many: "Our scripts found knee-points; a
//! number of bits that represented a large fraction of the results. The
//! typical result was represented using those knee-points. Atypical results
//! used additional space. This approach compressed table entries by 3X."

use crate::{bits_for, PackedIntVec};
use serde::{Deserialize, Serialize};

/// Statistics produced when fitting a [`KneeCodec`] to a value distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KneeStats {
    /// Bits used for typical (inline) values, including the escape tag bit.
    pub inline_bits: u32,
    /// Number of values that fit inline.
    pub inline_count: usize,
    /// Number of escaped (atypical) values stored in the side table.
    pub escaped_count: usize,
    /// Bits per escaped value in the side table.
    pub side_bits: u32,
}

impl KneeStats {
    /// Total packed payload size in bits (excluding word-alignment padding).
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        (self.inline_count + self.escaped_count) * self.inline_bits as usize
            + self.escaped_count * self.side_bits as usize
    }
}

/// Encodes a sequence of `u64` values using a knee-point split: values below
/// the chosen percentile are stored inline at a small fixed width; larger
/// values are replaced by an escape tag plus an index into a side table.
///
/// # Examples
///
/// ```
/// use bolt_bitpack::KneeCodec;
///
/// // 99 tiny values and one huge outlier: the codec picks a small inline
/// // width rather than paying 64 bits everywhere.
/// let mut values: Vec<u64> = (0..99).map(|i| i % 8).collect();
/// values.push(u64::MAX);
/// let codec = KneeCodec::fit(&values, 0.99);
/// for (i, &v) in values.iter().enumerate() {
///     assert_eq!(codec.get(i), Some(v));
/// }
/// assert!(codec.packed_bytes() < values.len() * 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KneeCodec {
    /// Inline stream; each slot holds `value + 1` for typical values, or the
    /// escape tag `0` for atypical ones.
    inline: PackedIntVec,
    /// Side table of escaped values in order of appearance.
    side: Vec<u64>,
    /// For each escaped slot index (in inline order), its rank in `side`.
    escape_ranks: Vec<u32>,
    stats: KneeStats,
}

impl KneeCodec {
    /// Fits a codec to `values`, choosing the inline width from the
    /// `percentile` knee point (e.g. `0.99` for the paper's 99th percentile).
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is not in `(0, 1]`.
    #[must_use]
    pub fn fit(values: &[u64], percentile: f64) -> Self {
        assert!(
            percentile > 0.0 && percentile <= 1.0,
            "percentile must be in (0, 1], got {percentile}"
        );
        let knee = if values.is_empty() {
            0
        } else {
            let mut sorted: Vec<u64> = values.to_vec();
            sorted.sort_unstable();
            let rank = ((sorted.len() as f64 * percentile).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        // Inline slots store value+1 with 0 reserved as the escape tag, so we
        // need room for knee+1.
        let inline_bits = bits_for(knee.saturating_add(1));
        let mut inline = PackedIntVec::new(inline_bits);
        let mut side = Vec::new();
        let mut escape_ranks = Vec::new();
        for &v in values {
            if v <= knee {
                inline.push(v + 1);
            } else {
                inline.push(0);
                escape_ranks.push(side.len() as u32);
                side.push(v);
            }
        }
        let stats = KneeStats {
            inline_bits,
            inline_count: values.len() - side.len(),
            escaped_count: side.len(),
            side_bits: 64,
        };
        Self {
            inline,
            side,
            escape_ranks,
            stats,
        }
    }

    /// Number of encoded values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inline.len()
    }

    /// Whether the codec holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inline.is_empty()
    }

    /// Decodes the value at `index`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<u64> {
        let slot = self.inline.get(index)?;
        if slot != 0 {
            return Some(slot - 1);
        }
        // Escape: rank = number of escape slots strictly before `index`.
        let rank = (0..index)
            .filter(|&i| self.inline.get(i) == Some(0))
            .count();
        Some(self.side[rank])
    }

    /// Fit statistics.
    #[must_use]
    pub fn stats(&self) -> KneeStats {
        self.stats
    }

    /// Total packed bytes (inline stream + side table).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.inline.packed_bytes() + self.side.len() * 8 + self.escape_ranks.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_small_values_inline() {
        let values: Vec<u64> = (0..100).map(|i| i % 10).collect();
        let codec = KneeCodec::fit(&values, 0.99);
        assert_eq!(codec.stats().escaped_count, 0);
        assert_eq!(codec.stats().inline_bits, bits_for(10));
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(codec.get(i), Some(v));
        }
    }

    #[test]
    fn outliers_escape() {
        let mut values: Vec<u64> = vec![1; 99];
        values.push(1 << 40);
        let codec = KneeCodec::fit(&values, 0.99);
        assert_eq!(codec.stats().escaped_count, 1);
        assert_eq!(codec.get(99), Some(1 << 40));
        assert!(codec.stats().inline_bits <= 2);
    }

    #[test]
    fn compression_beats_fixed_width_on_skewed_data() {
        let mut values: Vec<u64> = (0..990).map(|i| i % 4).collect();
        values.extend(std::iter::repeat_n(u64::MAX / 3, 10));
        let codec = KneeCodec::fit(&values, 0.99);
        let fixed = values.len() * 8;
        assert!(
            codec.packed_bytes() * 3 <= fixed,
            "knee codec ({}) should be >=3x smaller than fixed u64 ({fixed})",
            codec.packed_bytes()
        );
    }

    #[test]
    fn empty_input() {
        let codec = KneeCodec::fit(&[], 0.99);
        assert!(codec.is_empty());
        assert_eq!(codec.get(0), None);
    }

    #[test]
    fn percentile_one_keeps_everything_inline() {
        let values = vec![0, 5, 1000, 7];
        let codec = KneeCodec::fit(&values, 1.0);
        assert_eq!(codec.stats().escaped_count, 0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let _ = KneeCodec::fit(&[1], 0.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..200),
                          pct in 0.01f64..=1.0) {
            let codec = KneeCodec::fit(&values, pct);
            prop_assert_eq!(codec.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(codec.get(i), Some(v));
            }
        }

        #[test]
        fn prop_payload_never_larger_than_naive_for_small_values(
            values in proptest::collection::vec(0u64..16, 1..300)
        ) {
            let codec = KneeCodec::fit(&values, 0.99);
            prop_assert!(codec.packed_bytes() <= values.len() * 8 + 8);
        }
    }
}
