//! Explicit-SIMD kernels for the dictionary scan — single-sample *and*
//! batched.
//!
//! The scan tests every entry with `(input & mask) == key` over `stride`
//! words. This module vectorizes both hot paths over one entry-blocked
//! layout: the mask/key words of [`BLOCK`] = 4 consecutive entries are
//! interleaved word-by-word, so one input word tests four entries per
//! vector compare (a `u64x4` register on AVX2, two `u64x2` halves on
//! SSE2/NEON, half a `u64x8` register on AVX-512).
//!
//! The *single-sample* kernels ([`scan_blocked`]) broadcast each input word
//! and compare it against four entries at once. The *batched* kernels
//! ([`scan_lanes_blocked`]) fuse the same blocked layout with the
//! entry-major lane layout of `Dictionary::scan_lanes`: each iteration
//! broadcasts the four entries' mask/key words and compares them against a
//! vector of `W` sample lane words, accumulating per-entry diff rows in a
//! `BLOCK × n_samples` arena — every input lane word is loaded once for
//! four entries instead of once per entry.
//!
//! Blocked layout, for entries `e0..e3` of a block with stride 3:
//!
//! ```text
//! flat    (entry-major): e0w0 e0w1 e0w2 | e1w0 e1w1 e1w2 | e2w0 ... e3w2
//! blocked (word-major):  e0w0 e1w0 e2w0 e3w0 | e0w1 e1w1 e2w1 e3w1 | e0w2 ...
//!                        └───── one u64x4 load per word ─────┘
//! ```
//!
//! Only *full* blocks are stored (`n_entries / 4` of them); the
//! `n_entries % 4` tail is scanned by the scalar reference path over the
//! flat arrays, which always remain the source of truth. Padding partial
//! blocks with ghost entries would be hazardous: an all-zero mask/key
//! entry matches every input.
//!
//! Kernels are selected once per process ([`Kernel::selected`]) from
//! runtime CPU feature detection, overridable with
//! `BOLT_KERNEL=scalar|sse2|avx2|avx512|neon` for debugging and CI. Every
//! kernel emits matches in ascending entry order — the same order as the
//! scalar scan — so downstream `f64` vote accumulation stays bit-identical.
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! is `deny(unsafe_code)` elsewhere): `std::arch` intrinsics are unsafe to
//! *call* on hosts without the feature, which the dispatcher rules out
//! before handing out a kernel, and the loads are plain unaligned reads at
//! indices the dispatcher bounds-checks up front.

use std::sync::OnceLock;

/// Entries per block: one 256-bit register (or two 128-bit halves) of
/// `u64` lanes.
pub const BLOCK: usize = 4;

/// A single-sample scan backend over the blocked layout.
///
/// `Scalar` is the reference semantics; the SIMD variants must agree with
/// it bit-for-bit on every input (pinned by the differential harness and
/// the `kernels` proptest suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Portable scalar fallback over the flat arrays — reference semantics.
    Scalar,
    /// x86-64 SSE2: two `u64x2` halves per block.
    Sse2,
    /// x86-64 AVX2: one `u64x4` register per block.
    Avx2,
    /// x86-64 AVX-512F: two blocks per `u64x8` register (single-sample) and
    /// eight sample lanes per register (batched).
    Avx512,
    /// AArch64 NEON: two `u64x2` halves per block.
    Neon,
}

/// The resolved scan routine over the blocked prefix of a dictionary;
/// see [`scan_fn`].
pub type ScanFn = fn(&[u64], &[u64], usize, &[u64], &mut dyn FnMut(u32));

impl Kernel {
    /// Every kernel this build knows about, whether or not the host
    /// supports it.
    pub const ALL: [Kernel; 5] = [
        Kernel::Scalar,
        Kernel::Sse2,
        Kernel::Avx2,
        Kernel::Avx512,
        Kernel::Neon,
    ];

    /// The kernel's lowercase name, as spelled in `BOLT_KERNEL`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
            Kernel::Avx512 => "avx512",
            Kernel::Neon => "neon",
        }
    }

    /// Parses a `BOLT_KERNEL` value (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Kernel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "sse2" => Some(Kernel::Sse2),
            "avx2" => Some(Kernel::Avx2),
            "avx512" => Some(Kernel::Avx512),
            "neon" => Some(Kernel::Neon),
            _ => None,
        }
    }

    /// Whether the running host can execute this kernel.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => is_x86_feature_detected!("avx2"),
            // The AVX-512 kernels fall back to 256-bit ops for odd tail
            // blocks, so they need AVX2 alongside AVX-512F (every AVX-512
            // part ships both).
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => {
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2")
            }
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
        }
    }

    /// The best kernel the host supports:
    /// AVX-512 > AVX2 > SSE2 > NEON > scalar.
    #[must_use]
    pub fn detect() -> Kernel {
        for kernel in [Kernel::Avx512, Kernel::Avx2, Kernel::Sse2, Kernel::Neon] {
            if kernel.is_available() {
                return kernel;
            }
        }
        Kernel::Scalar
    }

    /// Every kernel the host can execute (always includes `Scalar`), in
    /// `ALL` order — what the differential harness sweeps.
    #[must_use]
    pub fn all_supported() -> Vec<Kernel> {
        Self::ALL.into_iter().filter(|k| k.is_available()).collect()
    }

    /// The process-wide kernel: `BOLT_KERNEL` if set to a known, available
    /// kernel, otherwise [`Kernel::detect`]. Resolved once and cached; an
    /// unknown or unsupported override warns on stderr (once) and falls
    /// back to detection rather than failing the process.
    #[must_use]
    pub fn selected() -> Kernel {
        static SELECTED: OnceLock<Kernel> = OnceLock::new();
        *SELECTED.get_or_init(|| match std::env::var("BOLT_KERNEL") {
            Ok(value) => match Kernel::from_name(&value) {
                Some(kernel) if kernel.is_available() => kernel,
                Some(kernel) => {
                    let fallback = Kernel::detect();
                    eprintln!(
                        "BOLT_KERNEL={value}: {} is not available on this host; \
                         falling back to {}",
                        kernel.name(),
                        fallback.name()
                    );
                    fallback
                }
                None => {
                    let fallback = Kernel::detect();
                    eprintln!(
                        "BOLT_KERNEL={value}: unknown kernel (expected \
                         scalar|sse2|avx2|avx512|neon); falling back to {}",
                        fallback.name()
                    );
                    fallback
                }
            },
            Err(_) => Kernel::detect(),
        })
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of words in the blocked arrays for a dictionary shape: full
/// blocks only, `stride` words for each of the block's [`BLOCK`] entries.
#[must_use]
pub fn blocked_len(n_entries: usize, stride: usize) -> usize {
    (n_entries / BLOCK) * BLOCK * stride
}

/// Interleaves a flat entry-major scan array (`stride` words per entry)
/// into the blocked word-major layout: word `w` of entry `block * 4 + lane`
/// lands at `(block * stride + w) * 4 + lane`. Partial tail entries are
/// omitted (scanned via the flat arrays).
#[must_use]
pub fn interleave_blocked(flat: &[u64], stride: usize) -> Vec<u64> {
    assert!(stride > 0, "stride must be positive");
    assert_eq!(flat.len() % stride, 0, "flat array must be entry-aligned");
    let n_entries = flat.len() / stride;
    let n_blocks = n_entries / BLOCK;
    let mut blocked = vec![0u64; n_blocks * BLOCK * stride];
    for block in 0..n_blocks {
        for lane in 0..BLOCK {
            let entry = block * BLOCK + lane;
            for w in 0..stride {
                blocked[(block * stride + w) * BLOCK + lane] = flat[entry * stride + w];
            }
        }
    }
    blocked
}

/// The resolved scan routine for a kernel: a plain function pointer, so
/// engines dispatch once at selection rather than per block. Unavailable
/// kernels resolve to the scalar routine.
#[must_use]
pub fn scan_fn(kernel: Kernel) -> ScanFn {
    match kernel {
        Kernel::Scalar => scan_blocked_scalar,
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 if kernel.is_available() => scan_blocked_sse2_checked,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if kernel.is_available() => scan_blocked_avx2_checked,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 if kernel.is_available() => scan_blocked_avx512_checked,
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon if kernel.is_available() => scan_blocked_neon_checked,
        _ => scan_blocked_scalar,
    }
}

/// Scans the blocked prefix of a dictionary with `kernel`, invoking
/// `on_match` with each matching entry index in ascending order.
///
/// `blk_mask`/`blk_key` are the interleaved arrays from
/// [`interleave_blocked`]; `words` is the input mask truncated to at most
/// `stride` words (input words beyond `words.len()` are treated as zero,
/// so key bits there reject — the same narrow-input semantics as the
/// scalar scan). Entries past the last full block are *not* visited.
///
/// # Panics
///
/// Panics if the blocked arrays disagree in length, are not whole blocks
/// of `stride` words, or `words` is longer than `stride`.
pub fn scan_blocked(
    kernel: Kernel,
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    scan_fn(kernel)(blk_mask, blk_key, stride, words, on_match);
}

/// The bounds contract every kernel relies on; asserted before any unsafe
/// kernel runs so the raw loads inside are in range by construction.
fn check_blocked_shape(blk_mask: &[u64], blk_key: &[u64], stride: usize, words: &[u64]) {
    assert!(stride > 0, "stride must be positive");
    assert_eq!(blk_mask.len(), blk_key.len(), "blocked array shapes differ");
    assert_eq!(
        blk_mask.len() % (stride * BLOCK),
        0,
        "blocked arrays must hold whole blocks"
    );
    assert!(words.len() <= stride, "input wider than dictionary stride");
}

/// Scalar reference over the *blocked* layout. The flat scalar scan in
/// `dictionary.rs` is the semantic source of truth; this routine exists so
/// `scan_fn(Scalar)` has the same signature as the SIMD kernels and so the
/// blocked interleave itself is exercised without SIMD.
fn scan_blocked_scalar(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    let block_words = stride * BLOCK;
    let n_blocks = blk_mask.len() / block_words;
    let n = words.len().min(stride);
    // Zero-padded input, mirroring the SIMD kernels: a padded word
    // contributes `(0 & mask) ^ key = key`, which is exactly the
    // narrow-input reject semantics.
    let mut padded = vec![0u64; stride];
    padded[..n].copy_from_slice(&words[..n]);
    for block in 0..n_blocks {
        let base = block * block_words;
        let mut acc = [0u64; BLOCK];
        for (w, &input) in padded.iter().enumerate() {
            let row = base + w * BLOCK;
            for (lane, a) in acc.iter_mut().enumerate() {
                *a |= (input & blk_mask[row + lane]) ^ blk_key[row + lane];
            }
        }
        for (lane, &a) in acc.iter().enumerate() {
            if a == 0 {
                on_match((block * BLOCK + lane) as u32);
            }
        }
    }
}

/// The resolved *batched* scan routine over the blocked prefix: fills
/// per-entry diff rows for one batch and reports matches; see
/// [`scan_lanes_blocked`].
pub type LanesFn = fn(
    &[u64],                      // blk_mask
    &[u64],                      // blk_key
    usize,                       // stride
    &[u64],                      // lane_words (stride x n_samples)
    usize,                       // n_samples
    &mut [u64],                  // diffs arena (>= BLOCK x n_samples)
    &mut Vec<u32>,               // matched scratch
    &mut dyn FnMut(u32, &[u32]), // on_entry(entry_index, matched samples)
);

/// The resolved batched scan routine for a kernel; unavailable kernels
/// resolve to the blocked-scalar routine.
#[must_use]
pub fn scan_lanes_fn(kernel: Kernel) -> LanesFn {
    match kernel {
        Kernel::Scalar => scan_lanes_blocked_scalar,
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 if kernel.is_available() => scan_lanes_blocked_sse2_checked,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if kernel.is_available() => scan_lanes_blocked_avx2_checked,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 if kernel.is_available() => scan_lanes_blocked_avx512_checked,
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon if kernel.is_available() => scan_lanes_blocked_neon_checked,
        _ => scan_lanes_blocked_scalar,
    }
}

/// Batched scan of the blocked prefix: tests all `n_samples` lane-packed
/// inputs against every full-block entry, invoking `on_entry` with each
/// matching entry index (ascending) and the ascending sample indices that
/// matched it — the exact emission order of the flat
/// `Dictionary::scan_lanes` reference.
///
/// `lane_words` is the entry-major batch layout (word `w` of sample `b` at
/// `lane_words[w * n_samples + b]`). `diffs` is a `BLOCK × n_samples`
/// scratch arena: row `l` accumulates the masked-compare diffs of the
/// current block's entry lane `l` across all samples. Entries past the
/// last full block are *not* visited.
///
/// # Panics
///
/// Panics if the blocked arrays disagree in length or block shape,
/// `lane_words` is not `stride × n_samples` long, or `diffs` is shorter
/// than `BLOCK × n_samples`.
// The argument list is the [`LanesFn`] dispatch signature plus the
// kernel selector — collapsing it into a struct would cost a rebuild of
// the borrow set on every call for no clarity gain.
#[allow(clippy::too_many_arguments)]
pub fn scan_lanes_blocked(
    kernel: Kernel,
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    lane_words: &[u64],
    n_samples: usize,
    diffs: &mut [u64],
    matched: &mut Vec<u32>,
    on_entry: &mut dyn FnMut(u32, &[u32]),
) {
    check_lanes_shape(blk_mask, blk_key, stride, lane_words, n_samples, diffs);
    if n_samples == 0 {
        return;
    }
    scan_lanes_fn(kernel)(
        blk_mask, blk_key, stride, lane_words, n_samples, diffs, matched, on_entry,
    );
}

/// The bounds contract every batched kernel relies on; asserted before any
/// unsafe kernel runs so the raw loads/stores inside are in range by
/// construction.
fn check_lanes_shape(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    lane_words: &[u64],
    n_samples: usize,
    diffs: &[u64],
) {
    assert!(stride > 0, "stride must be positive");
    assert_eq!(blk_mask.len(), blk_key.len(), "blocked array shapes differ");
    assert_eq!(
        blk_mask.len() % (stride * BLOCK),
        0,
        "blocked arrays must hold whole blocks"
    );
    assert_eq!(
        lane_words.len(),
        stride * n_samples,
        "lane words must be stride ({stride}) x n_samples ({n_samples})"
    );
    assert!(
        diffs.len() >= BLOCK * n_samples,
        "diffs arena must hold BLOCK x n_samples words"
    );
}

/// Shared tail of every batched kernel: zero-scan the block's four diff
/// rows and emit matches in ascending entry order. `all_zero` short-cuts
/// the block whose mask *and* key words were all zero — its four entries
/// match every sample, and their diff rows were never written.
fn emit_block_matches(
    block: usize,
    all_zero: bool,
    n_samples: usize,
    diffs: &[u64],
    matched: &mut Vec<u32>,
    on_entry: &mut dyn FnMut(u32, &[u32]),
) {
    for lane in 0..BLOCK {
        matched.clear();
        if all_zero {
            matched.extend(0..n_samples as u32);
        } else {
            bolt_bitpack::lanes::zero_lanes_into(
                &diffs[lane * n_samples..(lane + 1) * n_samples],
                matched,
            );
        }
        if !matched.is_empty() {
            on_entry((block * BLOCK + lane) as u32, matched);
        }
    }
}

/// Scalar reference for the batched blocked scan — the same block/word
/// iteration order as the SIMD kernels, one sample at a time. The flat
/// `Dictionary::scan_lanes` loop remains the semantic source of truth;
/// this routine pins the blocked iteration itself without SIMD.
#[allow(clippy::too_many_arguments)] // the [`LanesFn`] signature
fn scan_lanes_blocked_scalar(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    lane_words: &[u64],
    n_samples: usize,
    diffs: &mut [u64],
    matched: &mut Vec<u32>,
    on_entry: &mut dyn FnMut(u32, &[u32]),
) {
    let block_words = stride * BLOCK;
    let n_blocks = blk_mask.len() / block_words;
    let n = n_samples;
    for block in 0..n_blocks {
        let base = block * block_words;
        let mut first = true;
        for w in 0..stride {
            let row = base + w * BLOCK;
            let m = &blk_mask[row..row + BLOCK];
            let k = &blk_key[row..row + BLOCK];
            // A word with no mask and no key bits across the whole block
            // row can never reject a sample; skipping it is semantics-free
            // (a stray key bit under a zero mask is *not* skipped, so
            // corrupted entries keep rejecting exactly as the flat scan
            // does).
            if m.iter().chain(k.iter()).all(|&x| x == 0) {
                continue;
            }
            let lane = &lane_words[w * n..(w + 1) * n];
            for (l, (&ml, &kl)) in m.iter().zip(k.iter()).enumerate() {
                let rows = &mut diffs[l * n..(l + 1) * n];
                if first {
                    for (d, &input) in rows.iter_mut().zip(lane) {
                        *d = (input & ml) ^ kl;
                    }
                } else {
                    for (d, &input) in rows.iter_mut().zip(lane) {
                        *d |= (input & ml) ^ kl;
                    }
                }
            }
            first = false;
        }
        emit_block_matches(block, first, n, diffs, matched, on_entry);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::BLOCK;
    use core::arch::x86_64::{
        __m128i, __m256i, __m512i, _mm256_and_si256, _mm256_castsi256_pd, _mm256_cmpeq_epi64,
        _mm256_i32gather_epi64, _mm256_loadu_si256, _mm256_movemask_pd, _mm256_or_si256,
        _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_sll_epi64, _mm256_srl_epi64,
        _mm256_storeu_si256, _mm256_xor_si256, _mm512_and_si512, _mm512_castsi256_si512,
        _mm512_cmpeq_epi64_mask, _mm512_inserti64x4, _mm512_loadu_si512, _mm512_mullo_epi64,
        _mm512_or_si512, _mm512_set1_epi64, _mm512_setzero_si512, _mm512_srli_epi64,
        _mm512_storeu_si512, _mm512_xor_si512, _mm_and_si128, _mm_castsi128_ps, _mm_cmpeq_epi32,
        _mm_cvtsi32_si128, _mm_loadu_si128, _mm_movemask_ps, _mm_or_si128, _mm_set1_epi64x,
        _mm_setzero_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    /// One `u64x4` register per block: broadcast the input word, fold
    /// `(input & mask) ^ key` across the stride, then compare the four
    /// accumulators against zero at once.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and the shapes satisfy
    /// [`super::check_blocked_shape`] (all loads below stay in bounds).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_blocked_avx2(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        words: &[u64],
        on_match: &mut dyn FnMut(u32),
    ) {
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = words.len().min(stride);
        let zero = _mm256_setzero_si256();
        // Broadcast the input once per scan, zero-padded to the stride:
        // a padded word contributes `(0 & mask) ^ key = key`, which is
        // exactly the narrow-input reject semantics — so the per-block
        // loop needs no separate tail fold and no per-word broadcast.
        let splat: Vec<__m256i> = (0..stride)
            .map(|w| _mm256_set1_epi64x(if w < n { words[w] as i64 } else { 0 }))
            .collect();
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut acc = zero;
            for (w, &input) in splat.iter().enumerate() {
                let row = base + w * BLOCK;
                let mask = _mm256_loadu_si256(blk_mask.as_ptr().add(row).cast::<__m256i>());
                let key = _mm256_loadu_si256(blk_key.as_ptr().add(row).cast::<__m256i>());
                acc = _mm256_or_si256(acc, _mm256_xor_si256(_mm256_and_si256(input, mask), key));
            }
            let hits =
                _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(acc, zero))) as u32;
            if hits != 0 {
                for lane in 0..BLOCK {
                    if hits & (1 << lane) != 0 {
                        on_match((block * BLOCK + lane) as u32);
                    }
                }
            }
        }
    }

    /// Bitmask of fully-zero `u64` lanes across the two accumulator
    /// halves: bit `lane` is set iff that lane still matches. SSE2 has no
    /// 64-bit equality compare, so the test goes through
    /// `_mm_cmpeq_epi32`: a `u64` lane is zero iff both of its 32-bit
    /// halves compare equal to zero.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn sse2_zero_lanes(acc_lo: __m128i, acc_hi: __m128i) -> u32 {
        let zero = _mm_setzero_si128();
        let eq_lo = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(acc_lo, zero))) as u32;
        let eq_hi = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(acc_hi, zero))) as u32;
        u32::from(eq_lo & 0b0011 == 0b0011)
            | (u32::from(eq_lo & 0b1100 == 0b1100) << 1)
            | (u32::from(eq_hi & 0b0011 == 0b0011) << 2)
            | (u32::from(eq_hi & 0b1100 == 0b1100) << 3)
    }

    /// Two `u64x2` halves per block. SSE2 has no 64-bit equality compare,
    /// so zero-testing goes through `_mm_cmpeq_epi32`: a `u64` lane is
    /// zero iff both of its 32-bit halves compare equal to zero.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available and the shapes satisfy
    /// [`super::check_blocked_shape`].
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn scan_blocked_sse2(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        words: &[u64],
        on_match: &mut dyn FnMut(u32),
    ) {
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = words.len().min(stride);
        // Input broadcast once per scan, zero-padded to the stride (see
        // the AVX2 kernel for why padding gives narrow-input semantics).
        let splat: Vec<__m128i> = (0..stride)
            .map(|w| _mm_set1_epi64x(if w < n { words[w] as i64 } else { 0 }))
            .collect();
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut acc_lo = _mm_setzero_si128();
            let mut acc_hi = _mm_setzero_si128();
            for (w, &input) in splat.iter().enumerate() {
                let row = base + w * BLOCK;
                let mask_lo = _mm_loadu_si128(blk_mask.as_ptr().add(row).cast::<__m128i>());
                let mask_hi = _mm_loadu_si128(blk_mask.as_ptr().add(row + 2).cast::<__m128i>());
                let key_lo = _mm_loadu_si128(blk_key.as_ptr().add(row).cast::<__m128i>());
                let key_hi = _mm_loadu_si128(blk_key.as_ptr().add(row + 2).cast::<__m128i>());
                acc_lo = _mm_or_si128(acc_lo, _mm_xor_si128(_mm_and_si128(input, mask_lo), key_lo));
                acc_hi = _mm_or_si128(acc_hi, _mm_xor_si128(_mm_and_si128(input, mask_hi), key_hi));
            }
            let hits = sse2_zero_lanes(acc_lo, acc_hi);
            if hits != 0 {
                for lane in 0..BLOCK {
                    if hits & (1 << lane) != 0 {
                        on_match((block * BLOCK + lane) as u32);
                    }
                }
            }
        }
    }

    /// Two blocks per `u64x8` register: each 512-bit mask/key vector is
    /// assembled from two 256-bit block rows (the rows of consecutive
    /// blocks sit `stride * 4` words apart, so a single 512-bit load cannot
    /// span them), and `_mm512_cmpeq_epi64_mask` yields an 8-bit hit mask
    /// covering both blocks at once. An odd trailing block falls back to
    /// the AVX2 shape.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F *and* AVX2 are available and the shapes
    /// satisfy [`super::check_blocked_shape`].
    #[target_feature(enable = "avx512f,avx2")]
    pub(super) unsafe fn scan_blocked_avx512(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        words: &[u64],
        on_match: &mut dyn FnMut(u32),
    ) {
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = words.len().min(stride);
        let zero = _mm512_setzero_si512();
        // Input broadcast once per scan, zero-padded to the stride (see
        // the AVX2 kernel for why padding gives narrow-input semantics).
        let splat: Vec<__m512i> = (0..stride)
            .map(|w| _mm512_set1_epi64(if w < n { words[w] as i64 } else { 0 }))
            .collect();
        let paired = n_blocks / 2 * 2;
        let mut block = 0;
        while block < paired {
            let lo_base = block * block_words;
            let hi_base = (block + 1) * block_words;
            let mut acc = zero;
            for (w, &input) in splat.iter().enumerate() {
                let row = w * BLOCK;
                let mask = _mm512_inserti64x4::<1>(
                    _mm512_castsi256_si512(_mm256_loadu_si256(
                        blk_mask.as_ptr().add(lo_base + row).cast::<__m256i>(),
                    )),
                    _mm256_loadu_si256(blk_mask.as_ptr().add(hi_base + row).cast::<__m256i>()),
                );
                let key = _mm512_inserti64x4::<1>(
                    _mm512_castsi256_si512(_mm256_loadu_si256(
                        blk_key.as_ptr().add(lo_base + row).cast::<__m256i>(),
                    )),
                    _mm256_loadu_si256(blk_key.as_ptr().add(hi_base + row).cast::<__m256i>()),
                );
                acc = _mm512_or_si512(acc, _mm512_xor_si512(_mm512_and_si512(input, mask), key));
            }
            let hits = _mm512_cmpeq_epi64_mask(acc, zero);
            if hits != 0 {
                for lane in 0..2 * BLOCK {
                    if hits & (1 << lane) != 0 {
                        on_match((block * BLOCK + lane) as u32);
                    }
                }
            }
            block += 2;
        }
        if paired < n_blocks {
            // Odd trailing block: one AVX2-shaped pass reusing the low
            // halves of the 512-bit input splats.
            let base = paired * block_words;
            let zero256 = _mm256_setzero_si256();
            let mut acc = zero256;
            for (w, &input) in splat.iter().enumerate() {
                let row = base + w * BLOCK;
                let mask = _mm256_loadu_si256(blk_mask.as_ptr().add(row).cast::<__m256i>());
                let key = _mm256_loadu_si256(blk_key.as_ptr().add(row).cast::<__m256i>());
                let input = core::arch::x86_64::_mm512_castsi512_si256(input);
                acc = _mm256_or_si256(acc, _mm256_xor_si256(_mm256_and_si256(input, mask), key));
            }
            let hits =
                _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(acc, zero256))) as u32;
            if hits != 0 {
                for lane in 0..BLOCK {
                    if hits & (1 << lane) != 0 {
                        on_match((paired * BLOCK + lane) as u32);
                    }
                }
            }
        }
    }

    /// Batched blocked kernel, AVX2: for each block, iterate its non-zero
    /// word rows; broadcast the four entries' mask/key words once per row
    /// and fold them against four sample lane words per 256-bit op,
    /// writing the four per-entry diff rows of the `BLOCK × n_samples`
    /// arena. Tail samples (`n_samples % 4`) fold scalar.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and the shapes satisfy
    /// [`super::check_lanes_shape`].
    #[allow(clippy::too_many_arguments)] // the [`LanesFn`] signature
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_lanes_blocked_avx2(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        lane_words: &[u64],
        n_samples: usize,
        diffs: &mut [u64],
        matched: &mut Vec<u32>,
        on_entry: &mut dyn FnMut(u32, &[u32]),
    ) {
        const W: usize = 4;
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = n_samples;
        let wide = n / W * W;
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut first = true;
            for w in 0..stride {
                let row = base + w * BLOCK;
                let m = &blk_mask[row..row + BLOCK];
                let k = &blk_key[row..row + BLOCK];
                if m.iter().chain(k.iter()).all(|&x| x == 0) {
                    continue;
                }
                let lane_base = lane_words.as_ptr().add(w * n);
                let vm: [__m256i; BLOCK] =
                    core::array::from_fn(|l| _mm256_set1_epi64x(m[l] as i64));
                let vk: [__m256i; BLOCK] =
                    core::array::from_fn(|l| _mm256_set1_epi64x(k[l] as i64));
                let mut s = 0;
                while s < wide {
                    let input = _mm256_loadu_si256(lane_base.add(s).cast::<__m256i>());
                    for l in 0..BLOCK {
                        let d = _mm256_xor_si256(_mm256_and_si256(input, vm[l]), vk[l]);
                        let dst = diffs.as_mut_ptr().add(l * n + s).cast::<__m256i>();
                        if first {
                            _mm256_storeu_si256(dst, d);
                        } else {
                            _mm256_storeu_si256(dst, _mm256_or_si256(_mm256_loadu_si256(dst), d));
                        }
                    }
                    s += W;
                }
                for s in wide..n {
                    let input = *lane_base.add(s);
                    for l in 0..BLOCK {
                        let d = (input & m[l]) ^ k[l];
                        let dst = diffs.get_unchecked_mut(l * n + s);
                        if first {
                            *dst = d;
                        } else {
                            *dst |= d;
                        }
                    }
                }
                first = false;
            }
            super::emit_block_matches(block, first, n, diffs, matched, on_entry);
        }
    }

    /// Batched blocked kernel, SSE2: the AVX2 shape with two sample lanes
    /// per 128-bit op.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available and the shapes satisfy
    /// [`super::check_lanes_shape`].
    #[allow(clippy::too_many_arguments)] // the [`LanesFn`] signature
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn scan_lanes_blocked_sse2(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        lane_words: &[u64],
        n_samples: usize,
        diffs: &mut [u64],
        matched: &mut Vec<u32>,
        on_entry: &mut dyn FnMut(u32, &[u32]),
    ) {
        const W: usize = 2;
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = n_samples;
        let wide = n / W * W;
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut first = true;
            for w in 0..stride {
                let row = base + w * BLOCK;
                let m = &blk_mask[row..row + BLOCK];
                let k = &blk_key[row..row + BLOCK];
                if m.iter().chain(k.iter()).all(|&x| x == 0) {
                    continue;
                }
                let lane_base = lane_words.as_ptr().add(w * n);
                let vm: [__m128i; BLOCK] = core::array::from_fn(|l| _mm_set1_epi64x(m[l] as i64));
                let vk: [__m128i; BLOCK] = core::array::from_fn(|l| _mm_set1_epi64x(k[l] as i64));
                let mut s = 0;
                while s < wide {
                    let input = _mm_loadu_si128(lane_base.add(s).cast::<__m128i>());
                    for l in 0..BLOCK {
                        let d = _mm_xor_si128(_mm_and_si128(input, vm[l]), vk[l]);
                        let dst = diffs.as_mut_ptr().add(l * n + s).cast::<__m128i>();
                        if first {
                            _mm_storeu_si128(dst, d);
                        } else {
                            _mm_storeu_si128(dst, _mm_or_si128(_mm_loadu_si128(dst), d));
                        }
                    }
                    s += W;
                }
                for s in wide..n {
                    let input = *lane_base.add(s);
                    for l in 0..BLOCK {
                        let d = (input & m[l]) ^ k[l];
                        let dst = diffs.get_unchecked_mut(l * n + s);
                        if first {
                            *dst = d;
                        } else {
                            *dst |= d;
                        }
                    }
                }
                first = false;
            }
            super::emit_block_matches(block, first, n, diffs, matched, on_entry);
        }
    }

    /// Batched blocked kernel, AVX-512F: the AVX2 shape with eight sample
    /// lanes per 512-bit op.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F is available and the shapes satisfy
    /// [`super::check_lanes_shape`].
    #[allow(clippy::too_many_arguments)] // the [`LanesFn`] signature
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn scan_lanes_blocked_avx512(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        lane_words: &[u64],
        n_samples: usize,
        diffs: &mut [u64],
        matched: &mut Vec<u32>,
        on_entry: &mut dyn FnMut(u32, &[u32]),
    ) {
        const W: usize = 8;
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = n_samples;
        let wide = n / W * W;
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut first = true;
            for w in 0..stride {
                let row = base + w * BLOCK;
                let m = &blk_mask[row..row + BLOCK];
                let k = &blk_key[row..row + BLOCK];
                if m.iter().chain(k.iter()).all(|&x| x == 0) {
                    continue;
                }
                let lane_base = lane_words.as_ptr().add(w * n);
                let vm: [__m512i; BLOCK] = core::array::from_fn(|l| _mm512_set1_epi64(m[l] as i64));
                let vk: [__m512i; BLOCK] = core::array::from_fn(|l| _mm512_set1_epi64(k[l] as i64));
                let mut s = 0;
                while s < wide {
                    let input = _mm512_loadu_si512(lane_base.add(s).cast());
                    for l in 0..BLOCK {
                        let d = _mm512_xor_si512(_mm512_and_si512(input, vm[l]), vk[l]);
                        let dst = diffs.as_mut_ptr().add(l * n + s);
                        if first {
                            _mm512_storeu_si512(dst.cast(), d);
                        } else {
                            let prev = _mm512_loadu_si512(dst.cast_const().cast());
                            _mm512_storeu_si512(dst.cast(), _mm512_or_si512(prev, d));
                        }
                    }
                    s += W;
                }
                for s in wide..n {
                    let input = *lane_base.add(s);
                    for l in 0..BLOCK {
                        let d = (input & m[l]) ^ k[l];
                        let dst = diffs.get_unchecked_mut(l * n + s);
                        if first {
                            *dst = d;
                        } else {
                            *dst |= d;
                        }
                    }
                }
                first = false;
            }
            super::emit_block_matches(block, first, n, diffs, matched, on_entry);
        }
    }

    /// Address gather, AVX2: per uncommon predicate, fetch the lane words
    /// of four matched samples with one hardware gather, isolate the
    /// predicate's bit, and OR it into four addresses at once.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available, every `(pred / 64) *
    /// n_samples + matched[j]` index is in range for `lane_words`,
    /// `n_samples <= i32::MAX`, and `out.len() == matched.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_lane_addresses_avx2(
        preds: &[u32],
        lane_words: &[u64],
        n_samples: usize,
        matched: &[u32],
        out: &mut [u64],
    ) {
        let m = matched.len();
        let wide = m / 4 * 4;
        let one = _mm256_set1_epi64x(1);
        let mut j = 0;
        while j < wide {
            // Matched sample indices fit i32 (asserted by the dispatcher),
            // so the four u32s reinterpret directly as gather indices.
            let idx = _mm_loadu_si128(matched.as_ptr().add(j).cast::<__m128i>());
            let mut addr = _mm256_setzero_si256();
            for (bit, &pred) in preds.iter().enumerate() {
                let p = pred as usize;
                let row = lane_words.as_ptr().add((p / 64) * n_samples);
                let gathered = _mm256_i32gather_epi64::<8>(row.cast::<i64>(), idx);
                let b = _mm256_and_si256(
                    _mm256_srl_epi64(gathered, _mm_cvtsi32_si128((p % 64) as i32)),
                    one,
                );
                addr = _mm256_or_si256(addr, _mm256_sll_epi64(b, _mm_cvtsi32_si128(bit as i32)));
            }
            _mm256_storeu_si256(out.as_mut_ptr().add(j).cast::<__m256i>(), addr);
            j += 4;
        }
        super::scalar_lane_addresses(
            preds,
            lane_words,
            n_samples,
            &matched[wide..],
            &mut out[wide..],
        );
    }

    /// Table-key mixing, AVX-512DQ: eight splitmix64 finalizers per
    /// register (`vpmullq` is the DQ extension's 64-bit multiply).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX-512F and AVX-512DQ are available and
    /// `out.len() == addresses.len()`.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn fill_table_keys_avx512(salt: u64, addresses: &[u64], out: &mut [u64]) {
        let vsalt = _mm512_set1_epi64(salt as i64);
        let c1 = _mm512_set1_epi64(0xBF58_476D_1CE4_E5B9u64 as i64);
        let c2 = _mm512_set1_epi64(0x94D0_49BB_1331_11EBu64 as i64);
        let m = addresses.len();
        let wide = m / 8 * 8;
        let mut j = 0;
        while j < wide {
            let mut x =
                _mm512_xor_si512(_mm512_loadu_si512(addresses.as_ptr().add(j).cast()), vsalt);
            x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64::<30>(x)), c1);
            x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64::<27>(x)), c2);
            x = _mm512_xor_si512(x, _mm512_srli_epi64::<31>(x));
            _mm512_storeu_si512(out.as_mut_ptr().add(j).cast(), x);
            j += 8;
        }
        for j in wide..m {
            out[j] = crate::filter::mix64(addresses[j] ^ salt);
        }
    }
}

/// Safe `ScanFn` wrapper; only handed out by [`scan_fn`] after the AVX2
/// availability check.
#[cfg(target_arch = "x86_64")]
fn scan_blocked_avx2_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: `scan_fn` resolves this wrapper only when AVX2 is detected,
    // and `check_blocked_shape` establishes the bounds the kernel's raw
    // loads rely on.
    unsafe { x86::scan_blocked_avx2(blk_mask, blk_key, stride, words, on_match) }
}

/// Safe `ScanFn` wrapper; only handed out by [`scan_fn`] after the SSE2
/// availability check.
#[cfg(target_arch = "x86_64")]
fn scan_blocked_sse2_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    debug_assert!(is_x86_feature_detected!("sse2"));
    // SAFETY: as for AVX2 above, with SSE2 detected.
    unsafe { x86::scan_blocked_sse2(blk_mask, blk_key, stride, words, on_match) }
}

/// Safe `ScanFn` wrapper; only handed out by [`scan_fn`] after the AVX-512
/// availability check.
#[cfg(target_arch = "x86_64")]
fn scan_blocked_avx512_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    debug_assert!(is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2"));
    // SAFETY: `scan_fn` resolves this wrapper only when AVX-512F and AVX2
    // are detected, and `check_blocked_shape` establishes the bounds the
    // kernel's raw loads rely on.
    unsafe { x86::scan_blocked_avx512(blk_mask, blk_key, stride, words, on_match) }
}

/// Safe `LanesFn` wrapper; only handed out by [`scan_lanes_fn`] after the
/// AVX2 availability check.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn scan_lanes_blocked_avx2_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    lane_words: &[u64],
    n_samples: usize,
    diffs: &mut [u64],
    matched: &mut Vec<u32>,
    on_entry: &mut dyn FnMut(u32, &[u32]),
) {
    check_lanes_shape(blk_mask, blk_key, stride, lane_words, n_samples, diffs);
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: `scan_lanes_fn` resolves this wrapper only when AVX2 is
    // detected, and `check_lanes_shape` establishes the bounds the kernel's
    // raw loads and stores rely on.
    unsafe {
        x86::scan_lanes_blocked_avx2(
            blk_mask, blk_key, stride, lane_words, n_samples, diffs, matched, on_entry,
        );
    }
}

/// Safe `LanesFn` wrapper; only handed out by [`scan_lanes_fn`] after the
/// SSE2 availability check.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn scan_lanes_blocked_sse2_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    lane_words: &[u64],
    n_samples: usize,
    diffs: &mut [u64],
    matched: &mut Vec<u32>,
    on_entry: &mut dyn FnMut(u32, &[u32]),
) {
    check_lanes_shape(blk_mask, blk_key, stride, lane_words, n_samples, diffs);
    debug_assert!(is_x86_feature_detected!("sse2"));
    // SAFETY: as for the AVX2 wrapper above, with SSE2 detected.
    unsafe {
        x86::scan_lanes_blocked_sse2(
            blk_mask, blk_key, stride, lane_words, n_samples, diffs, matched, on_entry,
        );
    }
}

/// Safe `LanesFn` wrapper; only handed out by [`scan_lanes_fn`] after the
/// AVX-512 availability check.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn scan_lanes_blocked_avx512_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    lane_words: &[u64],
    n_samples: usize,
    diffs: &mut [u64],
    matched: &mut Vec<u32>,
    on_entry: &mut dyn FnMut(u32, &[u32]),
) {
    check_lanes_shape(blk_mask, blk_key, stride, lane_words, n_samples, diffs);
    debug_assert!(is_x86_feature_detected!("avx512f"));
    // SAFETY: as for the AVX2 wrapper above, with AVX-512F detected.
    unsafe {
        x86::scan_lanes_blocked_avx512(
            blk_mask, blk_key, stride, lane_words, n_samples, diffs, matched, on_entry,
        );
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::BLOCK;
    use core::arch::aarch64::{
        uint64x2_t, vandq_u64, vdupq_n_u64, veorq_u64, vgetq_lane_u64, vld1q_u64, vorrq_u64,
    };

    /// Two `u64x2` halves per block, mirroring the SSE2 shape.
    ///
    /// # Safety
    ///
    /// Caller must ensure NEON is available and the shapes satisfy
    /// [`super::check_blocked_shape`].
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn scan_blocked_neon(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        words: &[u64],
        on_match: &mut dyn FnMut(u32),
    ) {
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = words.len().min(stride);
        // Input broadcast once per scan, zero-padded to the stride (see
        // the AVX2 kernel for why padding gives narrow-input semantics).
        let splat: Vec<uint64x2_t> = (0..stride)
            .map(|w| vdupq_n_u64(if w < n { words[w] } else { 0 }))
            .collect();
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut acc_lo = vdupq_n_u64(0);
            let mut acc_hi = vdupq_n_u64(0);
            for (w, &input) in splat.iter().enumerate() {
                let row = base + w * BLOCK;
                let mask_lo = vld1q_u64(blk_mask.as_ptr().add(row));
                let mask_hi = vld1q_u64(blk_mask.as_ptr().add(row + 2));
                let key_lo = vld1q_u64(blk_key.as_ptr().add(row));
                let key_hi = vld1q_u64(blk_key.as_ptr().add(row + 2));
                acc_lo = vorrq_u64(acc_lo, veorq_u64(vandq_u64(input, mask_lo), key_lo));
                acc_hi = vorrq_u64(acc_hi, veorq_u64(vandq_u64(input, mask_hi), key_hi));
            }
            let base_id = (block * BLOCK) as u32;
            if vgetq_lane_u64(acc_lo, 0) == 0 {
                on_match(base_id);
            }
            if vgetq_lane_u64(acc_lo, 1) == 0 {
                on_match(base_id + 1);
            }
            if vgetq_lane_u64(acc_hi, 0) == 0 {
                on_match(base_id + 2);
            }
            if vgetq_lane_u64(acc_hi, 1) == 0 {
                on_match(base_id + 3);
            }
        }
    }

    /// Batched blocked kernel, NEON: the SSE2 shape with two sample lanes
    /// per 128-bit op.
    ///
    /// # Safety
    ///
    /// Caller must ensure NEON is available and the shapes satisfy
    /// [`super::check_lanes_shape`].
    #[allow(clippy::too_many_arguments)] // the [`LanesFn`] signature
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn scan_lanes_blocked_neon(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        lane_words: &[u64],
        n_samples: usize,
        diffs: &mut [u64],
        matched: &mut Vec<u32>,
        on_entry: &mut dyn FnMut(u32, &[u32]),
    ) {
        use core::arch::aarch64::vst1q_u64;
        const W: usize = 2;
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = n_samples;
        let wide = n / W * W;
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut first = true;
            for w in 0..stride {
                let row = base + w * BLOCK;
                let m = &blk_mask[row..row + BLOCK];
                let k = &blk_key[row..row + BLOCK];
                if m.iter().chain(k.iter()).all(|&x| x == 0) {
                    continue;
                }
                let lane_base = lane_words.as_ptr().add(w * n);
                let vm: [uint64x2_t; BLOCK] = [
                    vdupq_n_u64(m[0]),
                    vdupq_n_u64(m[1]),
                    vdupq_n_u64(m[2]),
                    vdupq_n_u64(m[3]),
                ];
                let vk: [uint64x2_t; BLOCK] = [
                    vdupq_n_u64(k[0]),
                    vdupq_n_u64(k[1]),
                    vdupq_n_u64(k[2]),
                    vdupq_n_u64(k[3]),
                ];
                let mut s = 0;
                while s < wide {
                    let input = vld1q_u64(lane_base.add(s));
                    for l in 0..BLOCK {
                        let d = veorq_u64(vandq_u64(input, vm[l]), vk[l]);
                        let dst = diffs.as_mut_ptr().add(l * n + s);
                        if first {
                            vst1q_u64(dst, d);
                        } else {
                            vst1q_u64(dst, vorrq_u64(vld1q_u64(dst.cast_const()), d));
                        }
                    }
                    s += W;
                }
                for s in wide..n {
                    let input = *lane_base.add(s);
                    for l in 0..BLOCK {
                        let d = (input & m[l]) ^ k[l];
                        let dst = diffs.get_unchecked_mut(l * n + s);
                        if first {
                            *dst = d;
                        } else {
                            *dst |= d;
                        }
                    }
                }
                first = false;
            }
            super::emit_block_matches(block, first, n, diffs, matched, on_entry);
        }
    }
}

/// Safe `ScanFn` wrapper; only handed out by [`scan_fn`] after the NEON
/// availability check.
#[cfg(target_arch = "aarch64")]
fn scan_blocked_neon_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    debug_assert!(std::arch::is_aarch64_feature_detected!("neon"));
    // SAFETY: as for the x86 wrappers, with NEON detected.
    unsafe { arm::scan_blocked_neon(blk_mask, blk_key, stride, words, on_match) }
}

/// Safe `LanesFn` wrapper; only handed out by [`scan_lanes_fn`] after the
/// NEON availability check.
#[cfg(target_arch = "aarch64")]
#[allow(clippy::too_many_arguments)]
fn scan_lanes_blocked_neon_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    lane_words: &[u64],
    n_samples: usize,
    diffs: &mut [u64],
    matched: &mut Vec<u32>,
    on_entry: &mut dyn FnMut(u32, &[u32]),
) {
    check_lanes_shape(blk_mask, blk_key, stride, lane_words, n_samples, diffs);
    debug_assert!(std::arch::is_aarch64_feature_detected!("neon"));
    // SAFETY: as for the x86 wrappers, with NEON detected.
    unsafe {
        arm::scan_lanes_blocked_neon(
            blk_mask, blk_key, stride, lane_words, n_samples, diffs, matched, on_entry,
        );
    }
}

/// Batched address gather: for each matched sample, collects the bits of
/// the entry's uncommon predicates from the lane-contiguous batch words
/// into a table address — `out[j]` is exactly
/// `DictView::address_of_lane(id, lane_words, n_samples, matched[j])`.
///
/// On AVX2-class kernels (AVX2/AVX-512) four sample lane words are fetched
/// per predicate with a hardware gather; everywhere else the scalar loop
/// runs. Results are bit-identical either way.
///
/// # Panics
///
/// Panics if any predicate's lane row or any matched sample index is out
/// of range for `lane_words`/`n_samples`.
pub fn gather_lane_addresses(
    kernel: Kernel,
    preds: &[u32],
    lane_words: &[u64],
    n_samples: usize,
    matched: &[u32],
    out: &mut Vec<u64>,
) {
    out.clear();
    out.resize(matched.len(), 0);
    if preds.is_empty() || matched.is_empty() {
        return;
    }
    let max_row = preds.iter().map(|&p| p as usize / 64).max().unwrap_or(0);
    assert!(
        (max_row + 1) * n_samples <= lane_words.len(),
        "predicate lane row out of range"
    );
    assert!(
        matched.iter().all(|&b| (b as usize) < n_samples),
        "matched sample index out of range"
    );
    #[cfg(target_arch = "x86_64")]
    if matches!(kernel, Kernel::Avx2 | Kernel::Avx512)
        && is_x86_feature_detected!("avx2")
        && n_samples <= i32::MAX as usize
    {
        // SAFETY: AVX2 detected; the asserts above bound every gathered
        // lane-word index, and `out` was resized to `matched.len()`.
        unsafe { x86::gather_lane_addresses_avx2(preds, lane_words, n_samples, matched, out) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = kernel;
    scalar_lane_addresses(preds, lane_words, n_samples, matched, out);
}

/// Scalar reference for [`gather_lane_addresses`] — the exact
/// `address_of_lane` bit-gather, one matched sample at a time.
fn scalar_lane_addresses(
    preds: &[u32],
    lane_words: &[u64],
    n_samples: usize,
    matched: &[u32],
    out: &mut [u64],
) {
    for (o, &b) in out.iter_mut().zip(matched) {
        let b = b as usize;
        let mut address = 0u64;
        for (bit, &pred) in preds.iter().enumerate() {
            let p = pred as usize;
            address |= (lane_words[(p / 64) * n_samples + b] >> (p % 64) & 1) << bit;
        }
        *o = address;
    }
}

/// Batched table-key hashing: `out[j]` is exactly
/// `filter::table_key(entry_id, addresses[j])` — the key the bloom filter
/// probes and the recombined table hashes. On AVX-512 with the DQ
/// extension (64-bit vector multiply) eight keys mix per register;
/// everywhere else the scalar splitmix finalizer runs. Bit-identical
/// either way.
pub fn fill_table_keys(kernel: Kernel, entry_id: u32, addresses: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.resize(addresses.len(), 0);
    let salt = (u64::from(entry_id) << 48) ^ u64::from(entry_id);
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx512
        && is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx512dq")
    {
        // SAFETY: AVX-512F+DQ detected; `out` matches `addresses` in
        // length.
        unsafe { x86::fill_table_keys_avx512(salt, addresses, out) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = kernel;
    for (o, &a) in out.iter_mut().zip(addresses) {
        *o = crate::filter::mix64(a ^ salt);
    }
}

/// Hints the CPU to pull the cache line holding `data[index]` toward L1
/// ahead of an upcoming read. Out-of-range indices and non-x86 hosts are
/// a no-op; prefetching never faults and never changes results — it only
/// hides the memory latency of the recombined-table probe behind the
/// bloom check that precedes it.
#[inline]
pub fn prefetch<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < data.len() {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // SAFETY: in-bounds pointer arithmetic; `_mm_prefetch` is a pure
        // hint and performs no dereference.
        unsafe {
            _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(index).cast::<i8>());
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flat scalar reference: the exact semantics of `DictView::scan`.
    fn flat_matches(mask: &[u64], key: &[u64], stride: usize, words: &[u64]) -> Vec<u32> {
        let mut out = Vec::new();
        for (idx, (m, k)) in mask
            .chunks_exact(stride)
            .zip(key.chunks_exact(stride))
            .enumerate()
        {
            let n = words.len().min(stride);
            let mut diff = 0u64;
            for w in 0..n {
                diff |= (words[w] & m[w]) ^ k[w];
            }
            for &kw in &k[n..] {
                diff |= kw;
            }
            if diff == 0 {
                out.push(idx as u32);
            }
        }
        out
    }

    /// Splitmix-ish deterministic word stream for layout tests.
    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn interleave_round_trips_word_positions() {
        let stride = 3;
        let n_entries = 9; // two full blocks + one tail entry
        let flat = words(7, n_entries * stride);
        let blocked = interleave_blocked(&flat, stride);
        assert_eq!(blocked.len(), blocked_len(n_entries, stride));
        for block in 0..n_entries / BLOCK {
            for lane in 0..BLOCK {
                for w in 0..stride {
                    assert_eq!(
                        blocked[(block * stride + w) * BLOCK + lane],
                        flat[(block * BLOCK + lane) * stride + w],
                        "block {block} lane {lane} word {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_available_kernel_agrees_with_the_flat_reference() {
        for (seed, stride, n_entries) in [(1u64, 1usize, 8usize), (2, 2, 12), (3, 5, 16), (4, 3, 4)]
        {
            let mask = words(seed, n_entries * stride);
            // Keys under the masks plus a few stray bits outside them, so
            // kernels also agree on corrupted key ⊄ mask entries.
            let mut key: Vec<u64> = words(seed + 100, n_entries * stride)
                .iter()
                .zip(&mask)
                .map(|(k, m)| k & m)
                .collect();
            key[0] |= !mask[0] & 1; // corrupt entry 0
            let blk_mask = interleave_blocked(&mask, stride);
            let blk_key = interleave_blocked(&key, stride);
            // Inputs: full width, narrow, empty — and one forced match
            // (input = key of entry 1, widened by mask semantics).
            let mut inputs = vec![words(seed + 200, stride), words(seed + 300, 1), vec![]];
            inputs.push(key[stride..2 * stride].to_vec());
            for input in &inputs {
                let expected = flat_matches(&mask, &key, stride, input);
                let in_block: Vec<u32> = expected
                    .iter()
                    .copied()
                    .filter(|&i| (i as usize) < (n_entries / BLOCK) * BLOCK)
                    .collect();
                for kernel in Kernel::all_supported() {
                    let mut got = Vec::new();
                    scan_blocked(kernel, &blk_mask, &blk_key, stride, input, &mut |i| {
                        got.push(i)
                    });
                    assert_eq!(
                        got,
                        in_block,
                        "kernel {kernel} seed {seed} stride {stride} input len {}",
                        input.len()
                    );
                }
            }
        }
    }

    #[test]
    fn all_zero_mask_entries_match_everything_in_every_kernel() {
        let stride = 2;
        let mask = vec![0u64; 4 * stride];
        let key = vec![0u64; 4 * stride];
        let blk_mask = interleave_blocked(&mask, stride);
        let blk_key = interleave_blocked(&key, stride);
        for kernel in Kernel::all_supported() {
            let mut got = Vec::new();
            scan_blocked(
                kernel,
                &blk_mask,
                &blk_key,
                stride,
                &[u64::MAX, 17],
                &mut |i| got.push(i),
            );
            assert_eq!(got, vec![0, 1, 2, 3], "kernel {kernel}");
        }
    }

    #[test]
    fn env_name_round_trip() {
        for kernel in Kernel::ALL {
            assert_eq!(Kernel::from_name(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::from_name(" AVX2 "), Some(Kernel::Avx2));
        assert_eq!(Kernel::from_name("AVX512"), Some(Kernel::Avx512));
        assert_eq!(Kernel::from_name("avx1024"), None);
        assert!(Kernel::Scalar.is_available());
        assert!(Kernel::all_supported().contains(&Kernel::detect()));
        assert!(Kernel::all_supported().contains(&Kernel::selected()));
    }

    /// Packs per-sample word vectors lane-contiguously, as the batched
    /// engine does.
    fn to_lanes(inputs: &[Vec<u64>], stride: usize) -> Vec<u64> {
        let n = inputs.len();
        let mut lanes = vec![0u64; stride * n];
        for (b, input) in inputs.iter().enumerate() {
            for (w, &word) in input.iter().enumerate().take(stride) {
                lanes[w * n + b] = word;
            }
        }
        lanes
    }

    #[test]
    fn every_batched_kernel_agrees_with_the_flat_reference() {
        for (seed, stride, n_entries, n_samples) in [
            (1u64, 1usize, 8usize, 7usize),
            (2, 3, 12, 17),
            (3, 5, 16, 2),
        ] {
            let mask = words(seed, n_entries * stride);
            let mut key: Vec<u64> = words(seed + 100, n_entries * stride)
                .iter()
                .zip(&mask)
                .map(|(k, m)| k & m)
                .collect();
            key[0] |= !mask[0] & 1; // corrupt entry 0: key bit outside mask
            let blk_mask = interleave_blocked(&mask, stride);
            let blk_key = interleave_blocked(&key, stride);
            // Samples: random plus one forced match (entry 1's key).
            let mut inputs: Vec<Vec<u64>> = (0..n_samples - 1)
                .map(|b| words(seed + 300 + b as u64, stride))
                .collect();
            inputs.push(key[stride..2 * stride].to_vec());
            let lanes = to_lanes(&inputs, stride);
            let n = inputs.len();
            // Flat reference, regrouped entry-major over full blocks only.
            let full = (n_entries / BLOCK) * BLOCK;
            let mut expected: Vec<(u32, Vec<u32>)> = Vec::new();
            for entry in 0..full {
                let matches: Vec<u32> = (0..n)
                    .filter(|&b| {
                        flat_matches(
                            &mask[entry * stride..(entry + 1) * stride],
                            &key[entry * stride..(entry + 1) * stride],
                            stride,
                            &inputs[b],
                        ) == vec![0]
                    })
                    .map(|b| b as u32)
                    .collect();
                if !matches.is_empty() {
                    expected.push((entry as u32, matches));
                }
            }
            for kernel in Kernel::all_supported() {
                let mut diffs = vec![0u64; BLOCK * n];
                let mut matched = Vec::new();
                let mut got: Vec<(u32, Vec<u32>)> = Vec::new();
                scan_lanes_blocked(
                    kernel,
                    &blk_mask,
                    &blk_key,
                    stride,
                    &lanes,
                    n,
                    &mut diffs,
                    &mut matched,
                    &mut |idx, m| got.push((idx, m.to_vec())),
                );
                assert_eq!(got, expected, "kernel {kernel} seed {seed}");
            }
        }
    }

    #[test]
    fn batched_all_zero_mask_block_matches_every_sample() {
        let stride = 2;
        let blk_mask = vec![0u64; BLOCK * stride];
        let blk_key = vec![0u64; BLOCK * stride];
        let inputs: Vec<Vec<u64>> = (0..5).map(|b| words(b as u64, stride)).collect();
        let lanes = to_lanes(&inputs, stride);
        for kernel in Kernel::all_supported() {
            let mut diffs = vec![0u64; BLOCK * 5];
            let mut matched = Vec::new();
            let mut got: Vec<(u32, Vec<u32>)> = Vec::new();
            scan_lanes_blocked(
                kernel,
                &blk_mask,
                &blk_key,
                stride,
                &lanes,
                5,
                &mut diffs,
                &mut matched,
                &mut |idx, m| got.push((idx, m.to_vec())),
            );
            let all: Vec<u32> = (0..5).collect();
            let expected: Vec<(u32, Vec<u32>)> =
                (0..BLOCK as u32).map(|e| (e, all.clone())).collect();
            assert_eq!(got, expected, "kernel {kernel}");
        }
    }

    #[test]
    fn gathered_addresses_match_the_scalar_gather_on_every_kernel() {
        let (stride, n_samples) = (3usize, 11usize);
        let inputs: Vec<Vec<u64>> = (0..n_samples)
            .map(|b| words(b as u64 + 9, stride))
            .collect();
        let lanes = to_lanes(&inputs, stride);
        let preds: Vec<u32> = vec![0, 5, 63, 64, 130, 77, 2];
        let matched: Vec<u32> = vec![0, 2, 3, 5, 6, 7, 8, 10, 1];
        let mut reference = vec![0u64; matched.len()];
        scalar_lane_addresses(&preds, &lanes, n_samples, &matched, &mut reference);
        for kernel in Kernel::all_supported() {
            let mut got = Vec::new();
            gather_lane_addresses(kernel, &preds, &lanes, n_samples, &matched, &mut got);
            assert_eq!(got, reference, "kernel {kernel}");
            // Empty predicate list: all-zero addresses.
            gather_lane_addresses(kernel, &[], &lanes, n_samples, &matched, &mut got);
            assert!(got.iter().all(|&a| a == 0), "kernel {kernel}");
        }
    }

    #[test]
    fn table_keys_match_the_scalar_mix_on_every_kernel() {
        let addresses: Vec<u64> = (0..19).map(|i| words(i, 1)[0]).collect();
        for entry_id in [0u32, 1, 7, 65_000] {
            let expected: Vec<u64> = addresses
                .iter()
                .map(|&a| crate::filter::table_key(entry_id, a))
                .collect();
            for kernel in Kernel::all_supported() {
                let mut got = Vec::new();
                fill_table_keys(kernel, entry_id, &addresses, &mut got);
                assert_eq!(got, expected, "kernel {kernel} entry {entry_id}");
            }
        }
    }

    #[test]
    fn prefetch_is_a_safe_no_op_out_of_range() {
        let data = [1u64, 2, 3];
        prefetch(&data, 0);
        prefetch(&data, 2);
        prefetch(&data, 3); // out of range: ignored
        prefetch::<u64>(&[], 0);
    }
}
