//! Explicit-SIMD kernels for the single-sample dictionary scan.
//!
//! The scan tests every entry with `(input & mask) == key` over `stride`
//! words. PR 2 made the *batched* path auto-vectorize by going entry-major
//! across samples; this module vectorizes the *single-sample* hot path —
//! the one every latency-sensitive `Classify` request takes — by blocking
//! the dictionary itself: the mask/key words of [`BLOCK`] = 4 consecutive
//! entries are interleaved word-by-word, so one broadcast input word tests
//! four entries per vector compare (a `u64x4` register on AVX2, two
//! `u64x2` halves on SSE2/NEON).
//!
//! Blocked layout, for entries `e0..e3` of a block with stride 3:
//!
//! ```text
//! flat    (entry-major): e0w0 e0w1 e0w2 | e1w0 e1w1 e1w2 | e2w0 ... e3w2
//! blocked (word-major):  e0w0 e1w0 e2w0 e3w0 | e0w1 e1w1 e2w1 e3w1 | e0w2 ...
//!                        └───── one u64x4 load per word ─────┘
//! ```
//!
//! Only *full* blocks are stored (`n_entries / 4` of them); the
//! `n_entries % 4` tail is scanned by the scalar reference path over the
//! flat arrays, which always remain the source of truth. Padding partial
//! blocks with ghost entries would be hazardous: an all-zero mask/key
//! entry matches every input.
//!
//! Kernels are selected once per process ([`Kernel::selected`]) from
//! runtime CPU feature detection, overridable with
//! `BOLT_KERNEL=scalar|sse2|avx2|neon` for debugging and CI. Every kernel
//! emits matches in ascending entry order — the same order as the scalar
//! scan — so downstream `f64` vote accumulation stays bit-identical.
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! is `deny(unsafe_code)` elsewhere): `std::arch` intrinsics are unsafe to
//! *call* on hosts without the feature, which the dispatcher rules out
//! before handing out a kernel, and the loads are plain unaligned reads at
//! indices the dispatcher bounds-checks up front.

use std::sync::OnceLock;

/// Entries per block: one 256-bit register (or two 128-bit halves) of
/// `u64` lanes.
pub const BLOCK: usize = 4;

/// A single-sample scan backend over the blocked layout.
///
/// `Scalar` is the reference semantics; the SIMD variants must agree with
/// it bit-for-bit on every input (pinned by the differential harness and
/// the `kernels` proptest suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Portable scalar fallback over the flat arrays — reference semantics.
    Scalar,
    /// x86-64 SSE2: two `u64x2` halves per block.
    Sse2,
    /// x86-64 AVX2: one `u64x4` register per block.
    Avx2,
    /// AArch64 NEON: two `u64x2` halves per block.
    Neon,
}

/// The resolved scan routine over the blocked prefix of a dictionary;
/// see [`scan_fn`].
pub type ScanFn = fn(&[u64], &[u64], usize, &[u64], &mut dyn FnMut(u32));

impl Kernel {
    /// Every kernel this build knows about, whether or not the host
    /// supports it.
    pub const ALL: [Kernel; 4] = [Kernel::Scalar, Kernel::Sse2, Kernel::Avx2, Kernel::Neon];

    /// The kernel's lowercase name, as spelled in `BOLT_KERNEL`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
            Kernel::Neon => "neon",
        }
    }

    /// Parses a `BOLT_KERNEL` value (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Kernel> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "sse2" => Some(Kernel::Sse2),
            "avx2" => Some(Kernel::Avx2),
            "neon" => Some(Kernel::Neon),
            _ => None,
        }
    }

    /// Whether the running host can execute this kernel.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
        }
    }

    /// The best kernel the host supports: AVX2 > SSE2 > NEON > scalar.
    #[must_use]
    pub fn detect() -> Kernel {
        for kernel in [Kernel::Avx2, Kernel::Sse2, Kernel::Neon] {
            if kernel.is_available() {
                return kernel;
            }
        }
        Kernel::Scalar
    }

    /// Every kernel the host can execute (always includes `Scalar`), in
    /// `ALL` order — what the differential harness sweeps.
    #[must_use]
    pub fn all_supported() -> Vec<Kernel> {
        Self::ALL.into_iter().filter(|k| k.is_available()).collect()
    }

    /// The process-wide kernel: `BOLT_KERNEL` if set to a known, available
    /// kernel, otherwise [`Kernel::detect`]. Resolved once and cached; an
    /// unknown or unsupported override warns on stderr (once) and falls
    /// back to detection rather than failing the process.
    #[must_use]
    pub fn selected() -> Kernel {
        static SELECTED: OnceLock<Kernel> = OnceLock::new();
        *SELECTED.get_or_init(|| match std::env::var("BOLT_KERNEL") {
            Ok(value) => match Kernel::from_name(&value) {
                Some(kernel) if kernel.is_available() => kernel,
                Some(kernel) => {
                    let fallback = Kernel::detect();
                    eprintln!(
                        "BOLT_KERNEL={value}: {} is not available on this host; \
                         falling back to {}",
                        kernel.name(),
                        fallback.name()
                    );
                    fallback
                }
                None => {
                    let fallback = Kernel::detect();
                    eprintln!(
                        "BOLT_KERNEL={value}: unknown kernel (expected \
                         scalar|sse2|avx2|neon); falling back to {}",
                        fallback.name()
                    );
                    fallback
                }
            },
            Err(_) => Kernel::detect(),
        })
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of words in the blocked arrays for a dictionary shape: full
/// blocks only, `stride` words for each of the block's [`BLOCK`] entries.
#[must_use]
pub fn blocked_len(n_entries: usize, stride: usize) -> usize {
    (n_entries / BLOCK) * BLOCK * stride
}

/// Interleaves a flat entry-major scan array (`stride` words per entry)
/// into the blocked word-major layout: word `w` of entry `block * 4 + lane`
/// lands at `(block * stride + w) * 4 + lane`. Partial tail entries are
/// omitted (scanned via the flat arrays).
#[must_use]
pub fn interleave_blocked(flat: &[u64], stride: usize) -> Vec<u64> {
    assert!(stride > 0, "stride must be positive");
    assert_eq!(flat.len() % stride, 0, "flat array must be entry-aligned");
    let n_entries = flat.len() / stride;
    let n_blocks = n_entries / BLOCK;
    let mut blocked = vec![0u64; n_blocks * BLOCK * stride];
    for block in 0..n_blocks {
        for lane in 0..BLOCK {
            let entry = block * BLOCK + lane;
            for w in 0..stride {
                blocked[(block * stride + w) * BLOCK + lane] = flat[entry * stride + w];
            }
        }
    }
    blocked
}

/// The resolved scan routine for a kernel: a plain function pointer, so
/// engines dispatch once at selection rather than per block. Unavailable
/// kernels resolve to the scalar routine.
#[must_use]
pub fn scan_fn(kernel: Kernel) -> ScanFn {
    match kernel {
        Kernel::Scalar => scan_blocked_scalar,
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse2 if kernel.is_available() => scan_blocked_sse2_checked,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if kernel.is_available() => scan_blocked_avx2_checked,
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon if kernel.is_available() => scan_blocked_neon_checked,
        _ => scan_blocked_scalar,
    }
}

/// Scans the blocked prefix of a dictionary with `kernel`, invoking
/// `on_match` with each matching entry index in ascending order.
///
/// `blk_mask`/`blk_key` are the interleaved arrays from
/// [`interleave_blocked`]; `words` is the input mask truncated to at most
/// `stride` words (input words beyond `words.len()` are treated as zero,
/// so key bits there reject — the same narrow-input semantics as the
/// scalar scan). Entries past the last full block are *not* visited.
///
/// # Panics
///
/// Panics if the blocked arrays disagree in length, are not whole blocks
/// of `stride` words, or `words` is longer than `stride`.
pub fn scan_blocked(
    kernel: Kernel,
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    scan_fn(kernel)(blk_mask, blk_key, stride, words, on_match);
}

/// The bounds contract every kernel relies on; asserted before any unsafe
/// kernel runs so the raw loads inside are in range by construction.
fn check_blocked_shape(blk_mask: &[u64], blk_key: &[u64], stride: usize, words: &[u64]) {
    assert!(stride > 0, "stride must be positive");
    assert_eq!(blk_mask.len(), blk_key.len(), "blocked array shapes differ");
    assert_eq!(
        blk_mask.len() % (stride * BLOCK),
        0,
        "blocked arrays must hold whole blocks"
    );
    assert!(words.len() <= stride, "input wider than dictionary stride");
}

/// Scalar reference over the *blocked* layout. The flat scalar scan in
/// `dictionary.rs` is the semantic source of truth; this routine exists so
/// `scan_fn(Scalar)` has the same signature as the SIMD kernels and so the
/// blocked interleave itself is exercised without SIMD.
fn scan_blocked_scalar(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    let block_words = stride * BLOCK;
    let n_blocks = blk_mask.len() / block_words;
    let n = words.len().min(stride);
    // Zero-padded input, mirroring the SIMD kernels: a padded word
    // contributes `(0 & mask) ^ key = key`, which is exactly the
    // narrow-input reject semantics.
    let mut padded = vec![0u64; stride];
    padded[..n].copy_from_slice(&words[..n]);
    for block in 0..n_blocks {
        let base = block * block_words;
        let mut acc = [0u64; BLOCK];
        for (w, &input) in padded.iter().enumerate() {
            let row = base + w * BLOCK;
            for (lane, a) in acc.iter_mut().enumerate() {
                *a |= (input & blk_mask[row + lane]) ^ blk_key[row + lane];
            }
        }
        for (lane, &a) in acc.iter().enumerate() {
            if a == 0 {
                on_match((block * BLOCK + lane) as u32);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::BLOCK;
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_and_si256, _mm256_castsi256_pd, _mm256_cmpeq_epi64,
        _mm256_loadu_si256, _mm256_movemask_pd, _mm256_or_si256, _mm256_set1_epi64x,
        _mm256_setzero_si256, _mm256_xor_si256, _mm_and_si128, _mm_castsi128_ps, _mm_cmpeq_epi32,
        _mm_loadu_si128, _mm_movemask_ps, _mm_or_si128, _mm_set1_epi64x, _mm_setzero_si128,
        _mm_xor_si128,
    };

    /// One `u64x4` register per block: broadcast the input word, fold
    /// `(input & mask) ^ key` across the stride, then compare the four
    /// accumulators against zero at once.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and the shapes satisfy
    /// [`super::check_blocked_shape`] (all loads below stay in bounds).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_blocked_avx2(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        words: &[u64],
        on_match: &mut dyn FnMut(u32),
    ) {
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = words.len().min(stride);
        let zero = _mm256_setzero_si256();
        // Broadcast the input once per scan, zero-padded to the stride:
        // a padded word contributes `(0 & mask) ^ key = key`, which is
        // exactly the narrow-input reject semantics — so the per-block
        // loop needs no separate tail fold and no per-word broadcast.
        let splat: Vec<__m256i> = (0..stride)
            .map(|w| _mm256_set1_epi64x(if w < n { words[w] as i64 } else { 0 }))
            .collect();
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut acc = zero;
            for (w, &input) in splat.iter().enumerate() {
                let row = base + w * BLOCK;
                let mask = _mm256_loadu_si256(blk_mask.as_ptr().add(row).cast::<__m256i>());
                let key = _mm256_loadu_si256(blk_key.as_ptr().add(row).cast::<__m256i>());
                acc = _mm256_or_si256(acc, _mm256_xor_si256(_mm256_and_si256(input, mask), key));
            }
            let hits =
                _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(acc, zero))) as u32;
            if hits != 0 {
                for lane in 0..BLOCK {
                    if hits & (1 << lane) != 0 {
                        on_match((block * BLOCK + lane) as u32);
                    }
                }
            }
        }
    }

    /// Bitmask of fully-zero `u64` lanes across the two accumulator
    /// halves: bit `lane` is set iff that lane still matches. SSE2 has no
    /// 64-bit equality compare, so the test goes through
    /// `_mm_cmpeq_epi32`: a `u64` lane is zero iff both of its 32-bit
    /// halves compare equal to zero.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn sse2_zero_lanes(acc_lo: __m128i, acc_hi: __m128i) -> u32 {
        let zero = _mm_setzero_si128();
        let eq_lo = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(acc_lo, zero))) as u32;
        let eq_hi = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(acc_hi, zero))) as u32;
        u32::from(eq_lo & 0b0011 == 0b0011)
            | (u32::from(eq_lo & 0b1100 == 0b1100) << 1)
            | (u32::from(eq_hi & 0b0011 == 0b0011) << 2)
            | (u32::from(eq_hi & 0b1100 == 0b1100) << 3)
    }

    /// Two `u64x2` halves per block. SSE2 has no 64-bit equality compare,
    /// so zero-testing goes through `_mm_cmpeq_epi32`: a `u64` lane is
    /// zero iff both of its 32-bit halves compare equal to zero.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSE2 is available and the shapes satisfy
    /// [`super::check_blocked_shape`].
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn scan_blocked_sse2(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        words: &[u64],
        on_match: &mut dyn FnMut(u32),
    ) {
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = words.len().min(stride);
        // Input broadcast once per scan, zero-padded to the stride (see
        // the AVX2 kernel for why padding gives narrow-input semantics).
        let splat: Vec<__m128i> = (0..stride)
            .map(|w| _mm_set1_epi64x(if w < n { words[w] as i64 } else { 0 }))
            .collect();
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut acc_lo = _mm_setzero_si128();
            let mut acc_hi = _mm_setzero_si128();
            for (w, &input) in splat.iter().enumerate() {
                let row = base + w * BLOCK;
                let mask_lo = _mm_loadu_si128(blk_mask.as_ptr().add(row).cast::<__m128i>());
                let mask_hi = _mm_loadu_si128(blk_mask.as_ptr().add(row + 2).cast::<__m128i>());
                let key_lo = _mm_loadu_si128(blk_key.as_ptr().add(row).cast::<__m128i>());
                let key_hi = _mm_loadu_si128(blk_key.as_ptr().add(row + 2).cast::<__m128i>());
                acc_lo = _mm_or_si128(acc_lo, _mm_xor_si128(_mm_and_si128(input, mask_lo), key_lo));
                acc_hi = _mm_or_si128(acc_hi, _mm_xor_si128(_mm_and_si128(input, mask_hi), key_hi));
            }
            let hits = sse2_zero_lanes(acc_lo, acc_hi);
            if hits != 0 {
                for lane in 0..BLOCK {
                    if hits & (1 << lane) != 0 {
                        on_match((block * BLOCK + lane) as u32);
                    }
                }
            }
        }
    }
}

/// Safe `ScanFn` wrapper; only handed out by [`scan_fn`] after the AVX2
/// availability check.
#[cfg(target_arch = "x86_64")]
fn scan_blocked_avx2_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    debug_assert!(is_x86_feature_detected!("avx2"));
    // SAFETY: `scan_fn` resolves this wrapper only when AVX2 is detected,
    // and `check_blocked_shape` establishes the bounds the kernel's raw
    // loads rely on.
    unsafe { x86::scan_blocked_avx2(blk_mask, blk_key, stride, words, on_match) }
}

/// Safe `ScanFn` wrapper; only handed out by [`scan_fn`] after the SSE2
/// availability check.
#[cfg(target_arch = "x86_64")]
fn scan_blocked_sse2_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    debug_assert!(is_x86_feature_detected!("sse2"));
    // SAFETY: as for AVX2 above, with SSE2 detected.
    unsafe { x86::scan_blocked_sse2(blk_mask, blk_key, stride, words, on_match) }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::BLOCK;
    use core::arch::aarch64::{
        uint64x2_t, vandq_u64, vdupq_n_u64, veorq_u64, vgetq_lane_u64, vld1q_u64, vorrq_u64,
    };

    /// Two `u64x2` halves per block, mirroring the SSE2 shape.
    ///
    /// # Safety
    ///
    /// Caller must ensure NEON is available and the shapes satisfy
    /// [`super::check_blocked_shape`].
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn scan_blocked_neon(
        blk_mask: &[u64],
        blk_key: &[u64],
        stride: usize,
        words: &[u64],
        on_match: &mut dyn FnMut(u32),
    ) {
        let block_words = stride * BLOCK;
        let n_blocks = blk_mask.len() / block_words;
        let n = words.len().min(stride);
        // Input broadcast once per scan, zero-padded to the stride (see
        // the AVX2 kernel for why padding gives narrow-input semantics).
        let splat: Vec<uint64x2_t> = (0..stride)
            .map(|w| vdupq_n_u64(if w < n { words[w] } else { 0 }))
            .collect();
        for block in 0..n_blocks {
            let base = block * block_words;
            let mut acc_lo = vdupq_n_u64(0);
            let mut acc_hi = vdupq_n_u64(0);
            for (w, &input) in splat.iter().enumerate() {
                let row = base + w * BLOCK;
                let mask_lo = vld1q_u64(blk_mask.as_ptr().add(row));
                let mask_hi = vld1q_u64(blk_mask.as_ptr().add(row + 2));
                let key_lo = vld1q_u64(blk_key.as_ptr().add(row));
                let key_hi = vld1q_u64(blk_key.as_ptr().add(row + 2));
                acc_lo = vorrq_u64(acc_lo, veorq_u64(vandq_u64(input, mask_lo), key_lo));
                acc_hi = vorrq_u64(acc_hi, veorq_u64(vandq_u64(input, mask_hi), key_hi));
            }
            let base_id = (block * BLOCK) as u32;
            if vgetq_lane_u64(acc_lo, 0) == 0 {
                on_match(base_id);
            }
            if vgetq_lane_u64(acc_lo, 1) == 0 {
                on_match(base_id + 1);
            }
            if vgetq_lane_u64(acc_hi, 0) == 0 {
                on_match(base_id + 2);
            }
            if vgetq_lane_u64(acc_hi, 1) == 0 {
                on_match(base_id + 3);
            }
        }
    }
}

/// Safe `ScanFn` wrapper; only handed out by [`scan_fn`] after the NEON
/// availability check.
#[cfg(target_arch = "aarch64")]
fn scan_blocked_neon_checked(
    blk_mask: &[u64],
    blk_key: &[u64],
    stride: usize,
    words: &[u64],
    on_match: &mut dyn FnMut(u32),
) {
    check_blocked_shape(blk_mask, blk_key, stride, words);
    debug_assert!(std::arch::is_aarch64_feature_detected!("neon"));
    // SAFETY: as for the x86 wrappers, with NEON detected.
    unsafe { arm::scan_blocked_neon(blk_mask, blk_key, stride, words, on_match) }
}

/// Hints the CPU to pull the cache line holding `data[index]` toward L1
/// ahead of an upcoming read. Out-of-range indices and non-x86 hosts are
/// a no-op; prefetching never faults and never changes results — it only
/// hides the memory latency of the recombined-table probe behind the
/// bloom check that precedes it.
#[inline]
pub fn prefetch<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < data.len() {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // SAFETY: in-bounds pointer arithmetic; `_mm_prefetch` is a pure
        // hint and performs no dereference.
        unsafe {
            _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(index).cast::<i8>());
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flat scalar reference: the exact semantics of `DictView::scan`.
    fn flat_matches(mask: &[u64], key: &[u64], stride: usize, words: &[u64]) -> Vec<u32> {
        let mut out = Vec::new();
        for (idx, (m, k)) in mask
            .chunks_exact(stride)
            .zip(key.chunks_exact(stride))
            .enumerate()
        {
            let n = words.len().min(stride);
            let mut diff = 0u64;
            for w in 0..n {
                diff |= (words[w] & m[w]) ^ k[w];
            }
            for &kw in &k[n..] {
                diff |= kw;
            }
            if diff == 0 {
                out.push(idx as u32);
            }
        }
        out
    }

    /// Splitmix-ish deterministic word stream for layout tests.
    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn interleave_round_trips_word_positions() {
        let stride = 3;
        let n_entries = 9; // two full blocks + one tail entry
        let flat = words(7, n_entries * stride);
        let blocked = interleave_blocked(&flat, stride);
        assert_eq!(blocked.len(), blocked_len(n_entries, stride));
        for block in 0..n_entries / BLOCK {
            for lane in 0..BLOCK {
                for w in 0..stride {
                    assert_eq!(
                        blocked[(block * stride + w) * BLOCK + lane],
                        flat[(block * BLOCK + lane) * stride + w],
                        "block {block} lane {lane} word {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_available_kernel_agrees_with_the_flat_reference() {
        for (seed, stride, n_entries) in [(1u64, 1usize, 8usize), (2, 2, 12), (3, 5, 16), (4, 3, 4)]
        {
            let mask = words(seed, n_entries * stride);
            // Keys under the masks plus a few stray bits outside them, so
            // kernels also agree on corrupted key ⊄ mask entries.
            let mut key: Vec<u64> = words(seed + 100, n_entries * stride)
                .iter()
                .zip(&mask)
                .map(|(k, m)| k & m)
                .collect();
            key[0] |= !mask[0] & 1; // corrupt entry 0
            let blk_mask = interleave_blocked(&mask, stride);
            let blk_key = interleave_blocked(&key, stride);
            // Inputs: full width, narrow, empty — and one forced match
            // (input = key of entry 1, widened by mask semantics).
            let mut inputs = vec![words(seed + 200, stride), words(seed + 300, 1), vec![]];
            inputs.push(key[stride..2 * stride].to_vec());
            for input in &inputs {
                let expected = flat_matches(&mask, &key, stride, input);
                let in_block: Vec<u32> = expected
                    .iter()
                    .copied()
                    .filter(|&i| (i as usize) < (n_entries / BLOCK) * BLOCK)
                    .collect();
                for kernel in Kernel::all_supported() {
                    let mut got = Vec::new();
                    scan_blocked(kernel, &blk_mask, &blk_key, stride, input, &mut |i| {
                        got.push(i)
                    });
                    assert_eq!(
                        got,
                        in_block,
                        "kernel {kernel} seed {seed} stride {stride} input len {}",
                        input.len()
                    );
                }
            }
        }
    }

    #[test]
    fn all_zero_mask_entries_match_everything_in_every_kernel() {
        let stride = 2;
        let mask = vec![0u64; 4 * stride];
        let key = vec![0u64; 4 * stride];
        let blk_mask = interleave_blocked(&mask, stride);
        let blk_key = interleave_blocked(&key, stride);
        for kernel in Kernel::all_supported() {
            let mut got = Vec::new();
            scan_blocked(
                kernel,
                &blk_mask,
                &blk_key,
                stride,
                &[u64::MAX, 17],
                &mut |i| got.push(i),
            );
            assert_eq!(got, vec![0, 1, 2, 3], "kernel {kernel}");
        }
    }

    #[test]
    fn env_name_round_trip() {
        for kernel in Kernel::ALL {
            assert_eq!(Kernel::from_name(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::from_name(" AVX2 "), Some(Kernel::Avx2));
        assert_eq!(Kernel::from_name("avx512"), None);
        assert!(Kernel::Scalar.is_available());
        assert!(Kernel::all_supported().contains(&Kernel::detect()));
        assert!(Kernel::all_supported().contains(&Kernel::selected()));
    }

    #[test]
    fn prefetch_is_a_safe_no_op_out_of_range() {
        let data = [1u64, 2, 3];
        prefetch(&data, 0);
        prefetch(&data, 2);
        prefetch(&data, 3); // out of range: ignored
        prefetch::<u64>(&[], 0);
    }
}
