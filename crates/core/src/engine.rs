//! The compiled Bolt forest and its inference loop (§4.5, Fig. 7).

use crate::cluster::Clustering;
use crate::dictionary::{DictView, Dictionary};
use crate::filter::{table_key, BloomFilter, BloomView};
use crate::paths::SortedPaths;
use crate::table::{RecombinedTable, TableView, Votes};
use crate::BoltError;
use bolt_bitpack::Mask;
use bolt_forest::{BinaryPath, BoostedForest, PredicateUniverse, RandomForest};
use serde::{Deserialize, Serialize};

/// Compilation options for [`BoltForest::compile`].
///
/// # Examples
///
/// ```
/// use bolt_core::BoltConfig;
///
/// let cfg = BoltConfig::default()
///     .with_cluster_threshold(6)
///     .with_bloom_bits_per_key(12);
/// assert_eq!(cfg.cluster_threshold, 6);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoltConfig {
    /// Phase-1 clustering threshold: maximum cumulative count of novel
    /// feature-value pairs a cluster may accumulate beyond its seed path
    /// (§4.1). Lower values mean more, smaller dictionary entries.
    pub cluster_threshold: usize,
    /// Bloom-filter budget in bits per stored table key (Phase 3); `0`
    /// disables the filter and probes the table directly.
    pub bloom_bits_per_key: usize,
    /// Record per-cell path features so [`BoltForest::classify_explained`]
    /// can produce salience maps (§2.1). Costs table memory.
    pub explanations: bool,
}

impl BoltConfig {
    /// Sets the clustering threshold.
    #[must_use]
    pub fn with_cluster_threshold(mut self, threshold: usize) -> Self {
        self.cluster_threshold = threshold;
        self
    }

    /// Sets the bloom-filter bits per key (0 disables).
    #[must_use]
    pub fn with_bloom_bits_per_key(mut self, bits: usize) -> Self {
        self.bloom_bits_per_key = bits;
        self
    }

    /// Enables salience tracking.
    #[must_use]
    pub fn with_explanations(mut self, on: bool) -> Self {
        self.explanations = on;
        self
    }
}

impl Default for BoltConfig {
    fn default() -> Self {
        Self {
            cluster_threshold: 4,
            bloom_bits_per_key: 10,
            explanations: false,
        }
    }
}

/// Counters describing one classification, used by the evaluation figures
/// and by Phase-2 tuning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InferenceStats {
    /// Dictionary entries scanned (always the full dictionary).
    pub entries_scanned: usize,
    /// Entries whose common-feature mask matched the input.
    pub entries_matched: usize,
    /// Lookups skipped by the bloom filter.
    pub bloom_rejects: usize,
    /// Table probes that found a verified cell.
    pub table_hits: usize,
    /// Table probes that found nothing (false positives of the mask test
    /// that survived the bloom filter).
    pub table_misses: usize,
}

/// Reusable per-thread buffers for allocation-free inference
/// ([`BoltForest::classify_with`]).
#[derive(Clone, Debug)]
pub struct BoltScratch {
    bits: Mask,
    votes: Vec<f64>,
}

/// A borrowed view of a compiled model's inference structures: dictionary,
/// table, optional bloom filter, constant votes, and the class count.
///
/// Every inference path — per-sample, batched, owned or memory-mapped —
/// funnels through this one view, so an mmap-backed `BLT1` artifact runs
/// literally the same scan/lookup/accumulate code as an in-memory
/// [`BoltForest`], and vote vectors are bit-identical by construction.
#[derive(Clone, Copy, Debug)]
pub struct ForestView<'a> {
    dict: DictView<'a>,
    table: TableView<'a>,
    bloom: Option<BloomView<'a>>,
    constant_votes: &'a [(u32, f64)],
    n_classes: usize,
}

impl<'a> ForestView<'a> {
    /// Assembles a view from component views. For regressors (which carry
    /// no per-class votes) pass an empty `constant_votes` and
    /// `n_classes = 0`; only [`Self::accumulate_weights`] is meaningful
    /// then.
    #[must_use]
    pub fn new(
        dict: DictView<'a>,
        table: TableView<'a>,
        bloom: Option<BloomView<'a>>,
        constant_votes: &'a [(u32, f64)],
        n_classes: usize,
    ) -> Self {
        Self {
            dict,
            table,
            bloom,
            constant_votes,
            n_classes,
        }
    }

    /// The dictionary view.
    #[must_use]
    pub fn dict(&self) -> DictView<'a> {
        self.dict
    }

    /// The table view.
    #[must_use]
    pub fn table(&self) -> TableView<'a> {
        self.table
    }

    /// The bloom-filter view, if the model carries one.
    #[must_use]
    pub fn bloom(&self) -> Option<BloomView<'a>> {
        self.bloom
    }

    /// Constant votes contributed by single-leaf trees.
    #[must_use]
    pub fn constant_votes(&self) -> &'a [(u32, f64)] {
        self.constant_votes
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The single shared scan body behind every inference path: constant
    /// votes, dictionary scan, bloom filtering, verified table lookups, and
    /// vote accumulation — counted into `stats` when provided. Votes must
    /// be zeroed by the caller (`entries_scanned` is also the caller's).
    pub fn scan_votes_into(
        &self,
        bits: &Mask,
        votes: &mut [f64],
        mut stats: Option<&mut InferenceStats>,
    ) {
        for &(class, weight) in self.constant_votes {
            votes[class as usize] += weight;
        }
        self.dict.scan(bits, |entry_id| {
            if let Some(stats) = stats.as_deref_mut() {
                stats.entries_matched += 1;
            }
            // Address gather through the contiguous `uncommon_flat` mirror
            // (no per-entry heap hop).
            let address = self.dict.address_of(entry_id, bits);
            // Pull the table line toward L1 while the bloom check runs;
            // pure latency hiding, no effect on results.
            self.table.prefetch(entry_id, address);
            self.accumulate_entry_votes(entry_id, address, votes, stats.as_deref_mut());
        });
    }

    /// Back half of the shared scan body, from a matched entry's gathered
    /// address onward: bloom filtering, the verified table lookup, and vote
    /// accumulation. The batched kernel calls this per matched
    /// (entry, sample) pair, so additions happen in the exact order of the
    /// per-sample path and votes stay bit-identical.
    #[inline]
    fn accumulate_entry_votes(
        &self,
        entry_id: u32,
        address: u64,
        votes: &mut [f64],
        stats: Option<&mut InferenceStats>,
    ) {
        if let Some(bloom) = &self.bloom {
            if !bloom.contains(table_key(entry_id, address)) {
                if let Some(stats) = stats {
                    stats.bloom_rejects += 1;
                }
                return;
            }
        }
        let cell_votes = self.table.lookup(entry_id, address);
        if let Some(stats) = stats {
            // Every stored cell carries at least one vote, so an empty
            // view is exactly a table miss (a surviving false positive).
            if cell_votes.is_empty() {
                stats.table_misses += 1;
            } else {
                stats.table_hits += 1;
            }
        }
        for (class, weight) in cell_votes.iter() {
            votes[class as usize] += weight;
        }
    }

    /// Verified table cell for `(entry, address)` with the bloom filter
    /// consulted first — empty when filtered out, missed, or unstored. The
    /// batched kernel memoizes this per entry across samples sharing an
    /// address; the returned votes are exactly what the per-sample path
    /// would have added.
    #[inline]
    #[must_use]
    pub fn lookup_entry_votes(&self, entry_id: u32, address: u64) -> Votes<'a> {
        self.lookup_entry_votes_keyed(entry_id, address, table_key(entry_id, address))
    }

    /// [`Self::lookup_entry_votes`] with the table key already computed:
    /// the batched path hashes an entry's whole matched-address vector in
    /// one SIMD pass ([`crate::simd::fill_table_keys`]) and spends the key
    /// twice — bloom probe and table probe — without rehashing. `key`
    /// **must** equal `table_key(entry_id, address)`.
    #[inline]
    #[must_use]
    pub fn lookup_entry_votes_keyed(&self, entry_id: u32, address: u64, key: u64) -> Votes<'a> {
        debug_assert_eq!(key, table_key(entry_id, address));
        if let Some(bloom) = &self.bloom {
            if !bloom.contains(key) {
                return Votes::empty();
            }
        }
        self.table.lookup_keyed(entry_id, address, key)
    }

    /// Classifies an encoded input through a caller-owned vote buffer,
    /// which is cleared and resized to `n_classes`. Bit-identical to
    /// [`BoltForest::classify_bits`] on the same structures.
    #[must_use]
    pub fn classify_bits_into(&self, bits: &Mask, votes: &mut Vec<f64>) -> u32 {
        votes.clear();
        votes.resize(self.n_classes, 0.0);
        self.scan_votes_into(bits, votes, None);
        argmax(votes)
    }

    /// Regression scan: folds every surviving vote weight into `init`
    /// (start it at the model's constant sum) in the exact per-sample
    /// order, and returns the accumulated sum.
    #[must_use]
    pub fn accumulate_weights(&self, bits: &Mask, init: f64) -> f64 {
        let mut sum = init;
        self.dict.scan(bits, |entry_id| {
            let address = self.dict.address_of(entry_id, bits);
            self.table.prefetch(entry_id, address);
            if let Some(bloom) = &self.bloom {
                if !bloom.contains(table_key(entry_id, address)) {
                    return;
                }
            }
            for &value in self.table.lookup(entry_id, address).weights() {
                sum += value;
            }
        });
        sum
    }
}

/// A random forest compiled into Bolt's lookup structures: one dictionary,
/// one recombined table, one bloom filter, plus the forest's predicate
/// universe for input encoding.
///
/// See the crate-level docs for the full pipeline; the safety property
/// (classification equals the original forest for *all* inputs, §4 fn. 1)
/// is enforced by this crate's property tests.
///
/// Compiled artifacts serialize with Serde; after deserialization call
/// [`BoltForest::rebuild`] to restore the predicate universe's derived
/// lookup structures before classifying.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoltForest {
    universe: PredicateUniverse,
    dictionary: Dictionary,
    table: RecombinedTable,
    bloom: Option<BloomFilter>,
    /// Votes from single-leaf trees whose (empty) path matches every input.
    constant_votes: Vec<(u32, f64)>,
    n_classes: usize,
    n_trees: usize,
    /// Total vote weight across trees (`n_trees` for plain forests).
    total_weight: f64,
    config: BoltConfig,
}

impl BoltForest {
    /// Compiles a trained random forest (Fig. 1: compression → tables +
    /// dictionary → filters).
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::AddressTooWide`] when some tree path tests more
    /// distinct predicates than a cluster address can hold — the deep-tree
    /// regime where the paper recommends Forest Packing instead.
    pub fn compile(forest: &RandomForest, config: &BoltConfig) -> Result<Self, BoltError> {
        let universe = PredicateUniverse::from_forest(forest);
        let paths = bolt_forest::enumerate_paths(forest, &universe);
        Self::from_paths(
            universe,
            paths,
            forest.n_trees(),
            forest.n_classes(),
            config,
        )
    }

    /// Compiles a boosted forest; each path carries its tree's weight (§5).
    ///
    /// # Errors
    ///
    /// Same contract as [`BoltForest::compile`].
    pub fn compile_boosted(forest: &BoostedForest, config: &BoltConfig) -> Result<Self, BoltError> {
        let universe = PredicateUniverse::from_boosted(forest);
        let paths = bolt_forest::enumerate_weighted_paths(forest, &universe);
        Self::from_paths(
            universe,
            paths,
            forest.n_trees(),
            forest.n_classes(),
            config,
        )
    }

    fn from_paths(
        universe: PredicateUniverse,
        paths: Vec<BinaryPath>,
        n_trees: usize,
        n_classes: usize,
        config: &BoltConfig,
    ) -> Result<Self, BoltError> {
        if paths.is_empty() {
            return Err(BoltError::EmptyForest);
        }
        let total_weight = {
            // One matching path per tree: total per-input weight is the sum
            // of per-tree weights; paths of one tree share its weight.
            let mut per_tree = vec![None; n_trees];
            for p in &paths {
                per_tree[p.tree as usize] = Some(p.weight);
            }
            per_tree.iter().flatten().sum()
        };
        // Single-leaf trees yield empty-pair paths that match every input;
        // fold them into constant votes instead of tables.
        let (constant, real): (Vec<BinaryPath>, Vec<BinaryPath>) =
            paths.into_iter().partition(|p| p.pairs.is_empty());
        let constant_votes = constant.iter().map(|p| (p.class, p.weight)).collect();

        let (dictionary, table) = if real.is_empty() {
            let empty = Clustering::from_clusters(Vec::new(), config.cluster_threshold);
            (
                Dictionary::from_clustering(&empty, universe.len()),
                RecombinedTable::build(&empty, false),
            )
        } else {
            let sorted = SortedPaths::from_paths(real, n_trees);
            let clustering = Clustering::greedy(&sorted, config.cluster_threshold)?;
            (
                Dictionary::from_clustering(&clustering, universe.len()),
                RecombinedTable::build(&clustering, config.explanations),
            )
        };
        let bloom = (config.bloom_bits_per_key > 0)
            .then(|| BloomFilter::from_keys(table.keys(), config.bloom_bits_per_key));
        Ok(Self {
            universe,
            dictionary,
            table,
            bloom,
            constant_votes,
            n_classes,
            n_trees,
            total_weight,
            config: config.clone(),
        })
    }

    /// Encodes a raw sample into its predicate mask (the "features form
    /// table address" step of Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the universe's feature count.
    #[must_use]
    pub fn encode(&self, sample: &[f32]) -> Mask {
        self.universe.evaluate(sample)
    }

    /// Accumulated per-class vote weights for an encoded input.
    #[must_use]
    pub fn votes_for_bits(&self, bits: &Mask) -> Vec<f64> {
        let (votes, _) = self.votes_with_stats(bits);
        votes
    }

    /// Votes plus the per-inference counters used by the evaluation.
    #[must_use]
    pub fn votes_with_stats(&self, bits: &Mask) -> (Vec<f64>, InferenceStats) {
        let mut votes = vec![0.0f64; self.n_classes];
        let mut stats = InferenceStats {
            entries_scanned: self.dictionary.len(),
            ..InferenceStats::default()
        };
        self.scan_votes_into(bits, &mut votes, Some(&mut stats));
        (votes, stats)
    }

    /// A borrowed [`ForestView`] over the inference structures — the shape
    /// every scan kernel runs over, shared with memory-mapped artifacts.
    #[must_use]
    pub fn view(&self) -> ForestView<'_> {
        ForestView {
            dict: self.dictionary.view(),
            table: self.table.view(),
            bloom: self.bloom.as_ref().map(BloomFilter::view),
            constant_votes: &self.constant_votes,
            n_classes: self.n_classes,
        }
    }

    /// The single shared scan body behind every inference path; see
    /// [`ForestView::scan_votes_into`]. Both the stats path and the
    /// allocation-free hot path call this, so the two can never drift.
    /// Votes must be zeroed by the caller.
    pub(crate) fn scan_votes_into(
        &self,
        bits: &Mask,
        votes: &mut [f64],
        stats: Option<&mut InferenceStats>,
    ) {
        self.view().scan_votes_into(bits, votes, stats);
    }

    /// Classifies an encoded input.
    #[must_use]
    pub fn classify_bits(&self, bits: &Mask) -> u32 {
        argmax(&self.votes_for_bits(bits))
    }

    /// Classifies a raw sample (encode + scan + lookups + aggregate).
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the universe's feature count.
    #[must_use]
    pub fn classify(&self, sample: &[f32]) -> u32 {
        self.classify_bits(&self.encode(sample))
    }

    /// Creates a reusable scratch buffer for allocation-free inference via
    /// [`Self::classify_with`].
    #[must_use]
    pub fn scratch(&self) -> BoltScratch {
        BoltScratch {
            bits: Mask::zeros(self.universe.len()),
            votes: vec![0.0; self.n_classes],
        }
    }

    /// Allocation-free classification: encodes into and aggregates through
    /// the caller's scratch buffer. Identical results to
    /// [`Self::classify`]; this is the service hot path.
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the universe's feature count or
    /// the scratch came from a differently-shaped forest.
    #[must_use]
    pub fn classify_with(&self, sample: &[f32], scratch: &mut BoltScratch) -> u32 {
        self.universe.evaluate_into(sample, &mut scratch.bits);
        let votes = &mut scratch.votes;
        assert_eq!(votes.len(), self.n_classes, "scratch from another forest");
        votes.iter_mut().for_each(|v| *v = 0.0);
        self.scan_votes_into(&scratch.bits, votes, None);
        argmax(votes)
    }

    /// Classifies and returns the inference counters.
    #[must_use]
    pub fn classify_with_stats(&self, sample: &[f32]) -> (u32, InferenceStats) {
        let (votes, stats) = self.votes_with_stats(&self.encode(sample));
        (argmax(&votes), stats)
    }

    /// Per-class vote fractions; for an unweighted forest this is bit-exact
    /// with [`RandomForest::predict_proba`].
    #[must_use]
    pub fn predict_proba(&self, sample: &[f32]) -> Vec<f32> {
        self.votes_for_bits(&self.encode(sample))
            .iter()
            .map(|&v| (v as f32) / (self.total_weight as f32))
            .collect()
    }

    /// Fraction of `data` classified correctly.
    #[must_use]
    pub fn accuracy(&self, data: &bolt_forest::Dataset) -> f64 {
        let correct = data
            .iter()
            .filter(|(sample, label)| self.classify(sample) == *label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// The predicate universe used for input encoding.
    #[must_use]
    pub fn universe(&self) -> &PredicateUniverse {
        &self.universe
    }

    /// The compiled dictionary.
    #[must_use]
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The recombined lookup table.
    #[must_use]
    pub fn table(&self) -> &RecombinedTable {
        &self.table
    }

    /// The bloom filter, if enabled.
    #[must_use]
    pub fn bloom(&self) -> Option<&BloomFilter> {
        self.bloom.as_ref()
    }

    /// Constant votes contributed by single-leaf trees.
    #[must_use]
    pub fn constant_votes(&self) -> &[(u32, f64)] {
        &self.constant_votes
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of trees in the source forest.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Total vote weight across trees (`n_trees` for plain forests).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The configuration used at compile time.
    #[must_use]
    pub fn config(&self) -> &BoltConfig {
        &self.config
    }

    /// Restores derived structures after deserialization (the predicate
    /// universe's lookup index, feature groups, and the dictionary's
    /// entry-blocked SIMD mirror are not serialized).
    pub fn rebuild(&mut self) {
        self.universe.rebuild_index();
        self.dictionary.rebuild_blocked();
    }

    /// Checks the paper's safety property against the source forest on a
    /// set of samples: classifications must match exactly. Returns the
    /// first mismatch, if any — a deployment-time guard for compiled
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::InvalidConfig`] describing the first sample
    /// whose classification diverges.
    pub fn verify_against<'a>(
        &self,
        forest: &RandomForest,
        samples: impl IntoIterator<Item = &'a [f32]>,
    ) -> Result<usize, BoltError> {
        let mut scratch = self.scratch();
        let mut checked = 0usize;
        for sample in samples {
            let (got, expected) = (
                self.classify_with(sample, &mut scratch),
                forest.predict(sample),
            );
            if got != expected {
                return Err(BoltError::InvalidConfig {
                    detail: format!(
                        "safety violation on sample {checked}: bolt={got}, forest={expected}"
                    ),
                });
            }
            checked += 1;
        }
        Ok(checked)
    }

    /// Approximate resident bytes of the inference-time structures: the
    /// dictionary scan arrays, the table's hot-path slots (16 bytes each),
    /// and the bloom filter. This is the quantity §4.6's capacity-planning
    /// diagnosis weighs against LLC capacity.
    #[must_use]
    pub fn approx_resident_bytes(&self) -> usize {
        self.dictionary.scan_bytes()
            + self.table.capacity() * 16
            + self.bloom.as_ref().map_or(0, BloomFilter::size_bytes)
    }
}

/// Index of the largest vote; ties go to the lower class, matching
/// [`RandomForest::predict`].
pub(crate) fn argmax(votes: &[f64]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in votes.iter().enumerate().skip(1) {
        if v > votes[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{BoostConfig, Dataset, ForestConfig};

    fn dataset() -> Dataset {
        let rows: Vec<Vec<f32>> = (0..120)
            .map(|i| vec![(i % 8) as f32, (i % 5) as f32, (i % 3) as f32])
            .collect();
        let labels: Vec<u32> = rows
            .iter()
            .map(|r| u32::from(r[0] + r[1] > 6.0) + u32::from(r[0] > 5.0))
            .collect();
        Dataset::from_rows(rows, labels, 3).expect("valid")
    }

    #[test]
    fn safety_equivalence_on_training_data() {
        let data = dataset();
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(10).with_max_height(4).with_seed(5),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        for (sample, _) in data.iter() {
            assert_eq!(bolt.classify(sample), forest.predict(sample));
        }
    }

    #[test]
    fn safety_equivalence_on_unseen_inputs() {
        let data = dataset();
        let forest =
            RandomForest::train(&data, &ForestConfig::new(8).with_max_height(3).with_seed(9));
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        // Adversarial off-grid samples (fractional, negative, huge).
        for i in 0..200 {
            let sample = vec![
                (i as f32) * 0.37 - 3.0,
                (i as f32) * 1.21 - 10.0,
                (i as f32) * 0.05,
            ];
            assert_eq!(
                bolt.classify(&sample),
                forest.predict(&sample),
                "sample {i}"
            );
        }
    }

    #[test]
    fn total_votes_equal_tree_count() {
        let data = dataset();
        let forest =
            RandomForest::train(&data, &ForestConfig::new(7).with_max_height(4).with_seed(2));
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        for (sample, _) in data.iter().take(40) {
            let votes = bolt.votes_for_bits(&bolt.encode(sample));
            let total: f64 = votes.iter().sum();
            assert_eq!(total, 7.0, "every tree votes exactly once");
        }
    }

    #[test]
    fn proba_is_bit_exact_with_forest() {
        let data = dataset();
        let forest =
            RandomForest::train(&data, &ForestConfig::new(9).with_max_height(3).with_seed(4));
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        for (sample, _) in data.iter().take(30) {
            assert_eq!(bolt.predict_proba(sample), forest.predict_proba(sample));
        }
    }

    #[test]
    fn bloom_disabled_still_correct() {
        let data = dataset();
        let forest =
            RandomForest::train(&data, &ForestConfig::new(6).with_max_height(4).with_seed(7));
        let with = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let without =
            BoltForest::compile(&forest, &BoltConfig::default().with_bloom_bits_per_key(0))
                .expect("compiles");
        assert!(without.bloom().is_none());
        for (sample, _) in data.iter().take(40) {
            assert_eq!(with.classify(sample), without.classify(sample));
        }
    }

    #[test]
    fn bloom_reduces_table_misses() {
        let data = dataset();
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(10).with_max_height(4).with_seed(3),
        );
        let with = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let without =
            BoltForest::compile(&forest, &BoltConfig::default().with_bloom_bits_per_key(0))
                .expect("compiles");
        let (mut misses_with, mut misses_without) = (0usize, 0usize);
        for (sample, _) in data.iter() {
            misses_with += with.classify_with_stats(sample).1.table_misses;
            misses_without += without.classify_with_stats(sample).1.table_misses;
        }
        assert!(
            misses_with <= misses_without,
            "bloom should never add table misses ({misses_with} vs {misses_without})"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let data = dataset();
        let forest =
            RandomForest::train(&data, &ForestConfig::new(5).with_max_height(4).with_seed(8));
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let (_, stats) = bolt.classify_with_stats(data.sample(0));
        assert_eq!(stats.entries_scanned, bolt.dictionary().len());
        assert_eq!(
            stats.entries_matched,
            stats.bloom_rejects + stats.table_hits + stats.table_misses
        );
        assert!(stats.table_hits >= 1, "at least one tree must vote");
    }

    #[test]
    fn threshold_trades_dictionary_for_table() {
        let data = dataset();
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(10).with_max_height(4).with_seed(6),
        );
        let fine = BoltForest::compile(&forest, &BoltConfig::default().with_cluster_threshold(0))
            .expect("compiles");
        let coarse =
            BoltForest::compile(&forest, &BoltConfig::default().with_cluster_threshold(12))
                .expect("compiles");
        assert!(
            coarse.dictionary().len() <= fine.dictionary().len(),
            "higher threshold must not grow the dictionary"
        );
        // Both remain correct.
        for (sample, _) in data.iter().take(30) {
            assert_eq!(fine.classify(sample), forest.predict(sample));
            assert_eq!(coarse.classify(sample), forest.predict(sample));
        }
    }

    #[test]
    fn boosted_votes_match_weighted_forest() {
        let data = dataset();
        let boosted = BoostedForest::train(&data, &BoostConfig::new(6).with_seed(3));
        let bolt = BoltForest::compile_boosted(&boosted, &BoltConfig::default()).expect("compiles");
        for (sample, _) in data.iter().take(40) {
            let expected = boosted.weighted_votes(sample);
            let got = bolt.votes_for_bits(&bolt.encode(sample));
            for (e, g) in expected.iter().zip(&got) {
                assert!((e - g).abs() < 1e-9, "votes {expected:?} vs {got:?}");
            }
            // Prediction agrees whenever the margin is not a float-order tie.
            let mut sorted = expected.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            if sorted[0] - sorted[1] > 1e-6 {
                assert_eq!(bolt.classify(sample), boosted.predict(sample));
            }
        }
    }

    #[test]
    fn single_leaf_trees_become_constant_votes() {
        use bolt_forest::{DecisionTree, NodeKind};
        let stump = DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 1 }], 2, 2);
        let split = DecisionTree::from_nodes(
            vec![
                NodeKind::Split {
                    feature: 0,
                    threshold: 1.0,
                    left: 1,
                    right: 2,
                },
                NodeKind::Leaf { class: 0 },
                NodeKind::Leaf { class: 1 },
            ],
            2,
            2,
        );
        let forest = RandomForest::from_trees(vec![stump, split]).expect("forest");
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        assert_eq!(bolt.constant_votes(), &[(1, 1.0)]);
        assert_eq!(bolt.classify(&[0.0, 0.0]), forest.predict(&[0.0, 0.0]));
        assert_eq!(bolt.classify(&[5.0, 0.0]), forest.predict(&[5.0, 0.0]));
    }

    #[test]
    fn verify_against_accepts_true_compilations_and_detects_corruption() {
        let data = dataset();
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(6).with_max_height(4).with_seed(21),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let samples: Vec<&[f32]> = (0..60).map(|i| data.sample(i)).collect();
        assert_eq!(
            bolt.verify_against(&forest, samples.iter().copied())
                .expect("verifies"),
            60
        );
        // A *different* forest must be detected (unless it agrees everywhere).
        let other = RandomForest::train(
            &data,
            &ForestConfig::new(6).with_max_height(4).with_seed(99),
        );
        let disagrees = samples
            .iter()
            .any(|s| other.predict(s) != forest.predict(s));
        if disagrees {
            assert!(bolt
                .verify_against(&other, samples.iter().copied())
                .is_err());
        }
    }

    #[test]
    fn compiled_artifact_serializes_and_rebuilds() {
        let data = dataset();
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(6).with_max_height(4).with_seed(14),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let json = serde_json::to_string(&bolt).expect("serializes");
        let mut restored: BoltForest = serde_json::from_str(&json).expect("deserializes");
        restored.rebuild();
        let mut scratch = restored.scratch();
        for (sample, _) in data.iter().take(40) {
            assert_eq!(restored.classify(sample), forest.predict(sample));
            assert_eq!(
                restored.classify_with(sample, &mut scratch),
                forest.predict(sample)
            );
        }
    }

    #[test]
    #[should_panic(expected = "features")]
    fn short_sample_panics() {
        let data = dataset();
        let forest =
            RandomForest::train(&data, &ForestConfig::new(3).with_max_height(3).with_seed(1));
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let _ = bolt.classify(&[1.0]); // forest expects 3 features
    }

    #[test]
    fn resident_bytes_accounts_all_structures() {
        let data = dataset();
        let forest =
            RandomForest::train(&data, &ForestConfig::new(6).with_max_height(4).with_seed(2));
        let with_bloom = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let without =
            BoltForest::compile(&forest, &BoltConfig::default().with_bloom_bits_per_key(0))
                .expect("compiles");
        assert!(with_bloom.approx_resident_bytes() > without.approx_resident_bytes());
        assert!(without.approx_resident_bytes() >= without.table().capacity() * 16);
    }

    #[test]
    fn forest_of_only_leaves_compiles() {
        use bolt_forest::{DecisionTree, NodeKind};
        let trees = vec![
            DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 0 }], 1, 2),
            DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 1 }], 1, 2),
            DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 1 }], 1, 2),
        ];
        let forest = RandomForest::from_trees(trees).expect("forest");
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        assert!(bolt.dictionary().is_empty());
        assert_eq!(bolt.classify(&[3.0]), 1);
    }
}
