//! Local explanation (salience) workloads (§2.1 of the paper).
//!
//! "Bolt uses associative arrays to track salient features. Bolt can do such
//! tracking with one memory access per tree inference, meaning that Bolt can
//! produce a list of salient features as inference is produced." Each
//! matched table cell already knows which features its contributing paths
//! tested, so accumulating salience costs no extra tree traversal.

use crate::engine::BoltForest;
use crate::filter::table_key;
use std::collections::HashMap;

/// A classification together with its salient-feature attribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Explanation {
    /// The predicted class.
    pub class: u32,
    /// Per raw-feature salience weight: how much vote weight flowed through
    /// paths testing that feature, sorted descending.
    pub salience: Vec<(u32, f64)>,
}

impl Explanation {
    /// The `k` most salient raw feature indices.
    #[must_use]
    pub fn top_features(&self, k: usize) -> Vec<u32> {
        self.salience.iter().take(k).map(|&(f, _)| f).collect()
    }
}

impl BoltForest {
    /// Classifies a sample and attributes the decision to input features.
    ///
    /// Requires compilation with
    /// [`BoltConfig::with_explanations`](crate::BoltConfig::with_explanations);
    /// otherwise the salience list is empty (the classification is still
    /// valid).
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the universe's feature count.
    #[must_use]
    pub fn classify_explained(&self, sample: &[f32]) -> Explanation {
        let bits = self.encode(sample);
        let mut votes = vec![0.0f64; self.n_classes()];
        for &(class, weight) in self.constant_votes() {
            votes[class as usize] += weight;
        }
        let mut salience: HashMap<u32, f64> = HashMap::new();
        self.dictionary().scan(&bits, |entry| {
            let address = entry.address_of(&bits);
            if let Some(bloom) = self.bloom() {
                if !bloom.contains(table_key(entry.id, address)) {
                    return;
                }
            }
            if let Some(cell) = self.table().lookup(entry.id, address) {
                for (i, &(class, weight)) in cell.votes.iter().enumerate() {
                    votes[class as usize] += weight;
                    if let Some(features) = cell.path_features.get(i) {
                        for &pred in features {
                            let feature = self.universe().predicate(pred).feature;
                            *salience.entry(feature).or_insert(0.0) += weight;
                        }
                    }
                }
            }
        });
        // Ties go to the lower class index, like the plain inference path.
        let mut class = 0usize;
        for (i, &v) in votes.iter().enumerate().skip(1) {
            if v > votes[class] {
                class = i;
            }
        }
        let class = class as u32;
        let mut salience: Vec<(u32, f64)> = salience.into_iter().collect();
        salience.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then(a.0.cmp(&b.0))
        });
        Explanation { class, salience }
    }
}

impl BoltForest {
    /// Global feature importance: per-feature salience aggregated over a
    /// dataset ("from local explanations to global understanding", the
    /// Lundberg et al. line of work the paper cites), normalized to sum
    /// to 1. Requires compilation with explanations; otherwise empty.
    #[must_use]
    pub fn feature_importance(&self, data: &bolt_forest::Dataset) -> Vec<(u32, f64)> {
        let mut totals: HashMap<u32, f64> = HashMap::new();
        for (sample, _) in data.iter() {
            for (feature, weight) in self.classify_explained(sample).salience {
                *totals.entry(feature).or_insert(0.0) += weight;
            }
        }
        let sum: f64 = totals.values().sum();
        let mut ranked: Vec<(u32, f64)> = totals
            .into_iter()
            .map(|(f, w)| (f, if sum > 0.0 { w / sum } else { 0.0 }))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then(a.0.cmp(&b.0))
        });
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoltConfig;
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn fixture() -> (Dataset, RandomForest, BoltForest) {
        // Only feature 0 carries signal; features 1-2 are noise the trainer
        // mostly ignores.
        let rows: Vec<Vec<f32>> = (0..150)
            .map(|i| vec![(i % 10) as f32, ((i * 13) % 7) as f32, ((i * 5) % 4) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 4.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(8).with_max_height(3).with_seed(12),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default().with_explanations(true))
            .expect("compiles");
        (data, forest, bolt)
    }

    #[test]
    fn explained_class_matches_plain_classification() {
        let (data, forest, bolt) = fixture();
        for (sample, _) in data.iter().take(60) {
            let explanation = bolt.classify_explained(sample);
            assert_eq!(explanation.class, forest.predict(sample));
            assert_eq!(explanation.class, bolt.classify(sample));
        }
    }

    #[test]
    fn signal_feature_dominates_salience() {
        let (data, _, bolt) = fixture();
        let mut wins = 0usize;
        for (sample, _) in data.iter().take(50) {
            let explanation = bolt.classify_explained(sample);
            if explanation.top_features(1) == vec![0] {
                wins += 1;
            }
        }
        assert!(wins >= 40, "feature 0 was top in only {wins}/50 samples");
    }

    #[test]
    fn salience_weight_bounded_by_votes() {
        let (data, _, bolt) = fixture();
        let explanation = bolt.classify_explained(data.sample(0));
        let max_possible = bolt.n_trees() as f64 * 3.0; // height <= 3 tests per path
        for &(_, w) in &explanation.salience {
            assert!(w > 0.0 && w <= max_possible);
        }
    }

    #[test]
    fn global_importance_ranks_signal_feature_first() {
        let (data, _, bolt) = fixture();
        let importance = bolt.feature_importance(&data);
        assert_eq!(importance[0].0, 0, "feature 0 carries the signal");
        let total: f64 = importance.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "normalized to 1, got {total}");
        assert!(
            importance.windows(2).all(|w| w[0].1 >= w[1].1),
            "descending"
        );
    }

    #[test]
    fn without_explanations_salience_is_empty() {
        let (data, forest, _) = fixture();
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let explanation = bolt.classify_explained(data.sample(0));
        assert!(explanation.salience.is_empty());
        assert_eq!(explanation.class, forest.predict(data.sample(0)));
    }
}
