//! Phase 2: parameter selection (§4.2, §5, Fig. 13).
//!
//! "Bolt searches the space given by these parameters by running the forest
//! with different parameter settings and selecting those partitioning
//! strategies that lead to best results." The search iterates over the three
//! implementation parameters of §5 — the uncommon-pair clustering threshold,
//! the number of table partitions, and the number of dictionary partitions —
//! measuring real per-sample latency on calibration inputs and, for
//! partitioned plans, modelling per-core latency with a [`CostModel`]
//! parameterized by the target hardware (cache capacity, memory latency,
//! clock rate).

use crate::engine::{BoltConfig, BoltForest};
use crate::parallel::{PartitionPlan, PartitionedBolt};
use crate::BoltError;
use bolt_forest::{Dataset, RandomForest};
use std::sync::Arc;
use std::time::Instant;

/// An analytic latency model of one core of the target machine.
///
/// The constants are deliberately simple — the paper's Phase 2 also mixes a
/// rough model with empirical runs — but they capture the two regimes §4.6
/// diagnoses: storage-bound (table exceeds LLC, memory latency dominates)
/// and compute-bound (dictionary scan dominates).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Last-level cache capacity available to one core, in bytes.
    pub llc_bytes: usize,
    /// Core clock frequency in GHz.
    pub freq_ghz: f64,
    /// Latency of a main-memory access, in nanoseconds.
    pub mem_latency_ns: f64,
    /// Latency of an LLC hit, in nanoseconds.
    pub cache_latency_ns: f64,
    /// Fixed per-core cost of cross-core result aggregation, in nanoseconds.
    pub aggregation_ns_per_core: f64,
}

impl CostModel {
    /// Cost of scanning `entries` dictionary entries of `stride` words each:
    /// a couple of fused ALU ops per word at the core's clock rate.
    #[must_use]
    pub fn scan_cost_ns(&self, entries: usize, stride: usize) -> f64 {
        let ops = entries as f64 * (2.0 * stride as f64 + 2.0);
        ops / self.freq_ghz
    }

    /// Cost of one table lookup given the table's resident bytes: an LLC hit
    /// when the structure fits in cache, a memory access otherwise.
    #[must_use]
    pub fn lookup_cost_ns(&self, table_bytes: usize) -> f64 {
        if table_bytes <= self.llc_bytes {
            self.cache_latency_ns
        } else {
            // Partial residency: misses proportional to the overflow.
            let overflow = (table_bytes - self.llc_bytes) as f64 / table_bytes as f64;
            self.cache_latency_ns + overflow * self.mem_latency_ns
        }
    }

    /// Cost of aggregating results across `cores` cores.
    #[must_use]
    pub fn aggregation_cost_ns(&self, cores: usize) -> f64 {
        if cores <= 1 {
            0.0
        } else {
            self.aggregation_ns_per_core * cores as f64
        }
    }
}

impl Default for CostModel {
    /// Roughly the paper's default server: one core's slice of a 30 MB LLC
    /// Xeon E5-2650 v4 at 2.2 GHz.
    fn default() -> Self {
        Self {
            llc_bytes: 30 * 1024 * 1024 / 12,
            freq_ghz: 2.2,
            mem_latency_ns: 90.0,
            cache_latency_ns: 12.0,
            aggregation_ns_per_core: 25.0,
        }
    }
}

/// One evaluated parameter setting.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub struct Trial {
    /// Clustering threshold used.
    pub threshold: usize,
    /// Bloom-filter bits per key (0 = filter disabled).
    pub bloom_bits: usize,
    /// Partition plan evaluated.
    pub plan: PartitionPlan,
    /// Measured wall-clock nanoseconds per sample (single-threaded run of
    /// the unpartitioned engine; `None` for plans only modelled).
    pub measured_ns: Option<f64>,
    /// Modelled nanoseconds per sample for the plan on the target hardware.
    pub modeled_ns: f64,
    /// Dictionary entries at this threshold.
    pub dict_entries: usize,
    /// Occupied lookup-table cells at this threshold.
    pub table_cells: usize,
    /// Table capacity in bytes (16-byte slots, as modelled).
    pub table_bytes: usize,
}

/// The outcome of a parameter search.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningReport {
    /// All evaluated settings, in evaluation order.
    pub trials: Vec<Trial>,
}

impl TuningReport {
    /// The best trial by modelled latency (ties: fewest cores, then lowest
    /// threshold).
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (searches always produce ≥1 trial).
    #[must_use]
    pub fn best(&self) -> &Trial {
        self.trials
            .iter()
            .min_by(|a, b| {
                a.modeled_ns
                    .partial_cmp(&b.modeled_ns)
                    .expect("latencies are finite")
                    .then(a.plan.cores().cmp(&b.plan.cores()))
                    .then(a.threshold.cmp(&b.threshold))
            })
            .expect("search produces at least one trial")
    }

    /// Spread between the worst and best modelled latencies — the paper's
    /// Fig. 13B shows this can reach ≈4× across settings.
    #[must_use]
    pub fn spread(&self) -> f64 {
        let best = self.best().modeled_ns;
        let worst = self
            .trials
            .iter()
            .map(|t| t.modeled_ns)
            .fold(0.0f64, f64::max);
        if best == 0.0 {
            1.0
        } else {
            worst / best
        }
    }
}

/// Sweeps clustering thresholds and partition plans for a forest.
///
/// # Examples
///
/// ```
/// use bolt_core::{CostModel, ParameterSearch};
/// use bolt_forest::{Dataset, ForestConfig, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..80).map(|i| vec![(i % 8) as f32]).collect();
/// let labels: Vec<u32> = (0..80).map(|i| u32::from(i % 8 > 3)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(4).with_seed(2));
/// let report = ParameterSearch::new()
///     .with_thresholds([0, 2, 4])
///     .with_max_cores(4)
///     .run(&forest, &data, &CostModel::default())?;
/// assert!(!report.trials.is_empty());
/// let _best = report.best();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ParameterSearch {
    thresholds: Vec<usize>,
    bloom_options: Vec<usize>,
    max_cores: usize,
    calibration_samples: usize,
}

impl ParameterSearch {
    /// A default sweep: thresholds {0, 2, 4, 8, 12}, bloom on/off, up to
    /// 4 cores.
    #[must_use]
    pub fn new() -> Self {
        Self {
            thresholds: vec![0, 2, 4, 8, 12],
            bloom_options: vec![0, 10],
            max_cores: 4,
            calibration_samples: 64,
        }
    }

    /// Sets the bloom-filter budgets (bits per key; 0 disables) to sweep.
    #[must_use]
    pub fn with_bloom_options(mut self, options: impl IntoIterator<Item = usize>) -> Self {
        self.bloom_options = options.into_iter().collect();
        self
    }

    /// Sets the clustering thresholds to sweep.
    #[must_use]
    pub fn with_thresholds(mut self, thresholds: impl IntoIterator<Item = usize>) -> Self {
        self.thresholds = thresholds.into_iter().collect();
        self
    }

    /// Sets the maximum core count for partition plans.
    #[must_use]
    pub fn with_max_cores(mut self, cores: usize) -> Self {
        self.max_cores = cores.max(1);
        self
    }

    /// Sets the number of calibration samples timed per setting.
    #[must_use]
    pub fn with_calibration_samples(mut self, n: usize) -> Self {
        self.calibration_samples = n.max(1);
        self
    }

    /// A neighbourhood sweep around a known-good trial (§4.2: "given
    /// specific parameters, it can test the effect of small deviations from
    /// the given settings"): thresholds ±1, the same bloom budget plus
    /// on/off, and plans up to one extra doubling of the trial's cores.
    #[must_use]
    pub fn around(trial: &Trial) -> Self {
        let mut thresholds = vec![trial.threshold];
        if trial.threshold > 0 {
            thresholds.insert(0, trial.threshold - 1);
        }
        thresholds.push(trial.threshold + 1);
        let mut bloom_options = vec![0, 10];
        if !bloom_options.contains(&trial.bloom_bits) {
            bloom_options.push(trial.bloom_bits);
        }
        Self {
            thresholds,
            bloom_options,
            max_cores: (trial.plan.cores() * 2).max(1),
            calibration_samples: 64,
        }
    }

    /// Runs the sweep: for each threshold, compile once, measure wall-clock
    /// latency, then model every partition plan up to `max_cores`.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::InvalidConfig`] if no thresholds were given, or
    /// any compilation error from [`BoltForest::compile`].
    pub fn run(
        &self,
        forest: &RandomForest,
        calibration: &Dataset,
        model: &CostModel,
    ) -> Result<TuningReport, BoltError> {
        if self.thresholds.is_empty() || self.bloom_options.is_empty() {
            return Err(BoltError::InvalidConfig {
                detail: "no clustering thresholds or bloom options to sweep".into(),
            });
        }
        let mut trials = Vec::new();
        let n = calibration.len().min(self.calibration_samples);
        for &threshold in &self.thresholds {
            for &bloom_bits in &self.bloom_options {
                let config = BoltConfig::default()
                    .with_cluster_threshold(threshold)
                    .with_bloom_bits_per_key(bloom_bits);
                let bolt = Arc::new(BoltForest::compile(forest, &config)?);
                // Wall-clock measurement of the single-core engine.
                let encoded: Vec<_> = (0..n).map(|i| bolt.encode(calibration.sample(i))).collect();
                let start = Instant::now();
                let mut sink = 0u32;
                for bits in &encoded {
                    sink = sink.wrapping_add(bolt.classify_bits(bits));
                }
                let measured_ns = start.elapsed().as_nanos() as f64 / n as f64;
                std::hint::black_box(sink);

                let table_bytes = bolt.table().capacity() * 16;
                let sample_bits = &encoded[0];
                for cores in 1..=self.max_cores {
                    for plan in PartitionPlan::plans_for_cores(cores) {
                        let Ok(partitioned) = PartitionedBolt::new(Arc::clone(&bolt), plan) else {
                            continue;
                        };
                        let modeled_ns = partitioned.estimate_latency_ns(sample_bits, model);
                        trials.push(Trial {
                            threshold,
                            bloom_bits,
                            plan,
                            measured_ns: (plan.cores() == 1).then_some(measured_ns),
                            modeled_ns,
                            dict_entries: bolt.dictionary().len(),
                            table_cells: bolt.table().n_cells(),
                            table_bytes,
                        });
                    }
                }
            }
        }
        Ok(TuningReport { trials })
    }
}

impl Default for ParameterSearch {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs the default Phase-2 sweep and compiles the forest at the winning
/// setting — the one-call version of the paper's "Bolt explores different
/// parameter strategies and outputs a set of lookup tables and dictionaries
/// that give the best performance given a forest and the specified
/// hardware".
///
/// # Errors
///
/// Propagates compilation or sweep errors from [`ParameterSearch::run`].
///
/// # Examples
///
/// ```
/// use bolt_core::{tuning, CostModel};
/// use bolt_forest::{Dataset, ForestConfig, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..80).map(|i| vec![(i % 8) as f32]).collect();
/// let labels: Vec<u32> = (0..80).map(|i| u32::from(i % 8 > 3)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(4).with_seed(2));
/// let (bolt, report) = tuning::compile_best(&forest, &data, &CostModel::default())?;
/// assert_eq!(bolt.config().cluster_threshold, report.best().threshold);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile_best(
    forest: &RandomForest,
    calibration: &Dataset,
    model: &CostModel,
) -> Result<(BoltForest, TuningReport), BoltError> {
    let report = ParameterSearch::new().run(forest, calibration, model)?;
    let best = report.best().clone();
    let bolt = BoltForest::compile(
        forest,
        &BoltConfig::default()
            .with_cluster_threshold(best.threshold)
            .with_bloom_bits_per_key(best.bloom_bits),
    )?;
    Ok((bolt, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::ForestConfig;

    fn fixture() -> (Dataset, RandomForest) {
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![(i % 10) as f32, (i % 4) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 4.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest =
            RandomForest::train(&data, &ForestConfig::new(8).with_max_height(4).with_seed(3));
        (data, forest)
    }

    #[test]
    fn sweep_produces_all_plan_combinations() {
        let (data, forest) = fixture();
        let report = ParameterSearch::new()
            .with_thresholds([0, 4])
            .with_bloom_options([0, 10])
            .with_max_cores(4)
            .with_calibration_samples(8)
            .run(&forest, &data, &CostModel::default())
            .expect("sweep runs");
        // Plans for 1..=4 cores: 1 + 2 + 2 + 3 = 8 per (threshold, bloom).
        assert_eq!(report.trials.len(), 2 * 2 * 8);
        assert!(report.trials.iter().any(|t| t.plan.cores() == 4));
        assert!(report.trials.iter().any(|t| t.bloom_bits == 0));
    }

    #[test]
    fn best_is_minimal_modeled_latency() {
        let (data, forest) = fixture();
        let report = ParameterSearch::new()
            .with_thresholds([0, 2, 8])
            .with_calibration_samples(8)
            .run(&forest, &data, &CostModel::default())
            .expect("sweep runs");
        let best = report.best();
        assert!(report
            .trials
            .iter()
            .all(|t| t.modeled_ns >= best.modeled_ns));
        assert!(report.spread() >= 1.0);
    }

    #[test]
    fn single_core_trials_carry_measurements() {
        let (data, forest) = fixture();
        let report = ParameterSearch::new()
            .with_thresholds([4])
            .with_max_cores(2)
            .with_calibration_samples(4)
            .run(&forest, &data, &CostModel::default())
            .expect("sweep runs");
        for trial in &report.trials {
            if trial.plan.cores() == 1 {
                assert!(trial.measured_ns.expect("measured") > 0.0);
            } else {
                assert!(trial.measured_ns.is_none());
            }
        }
    }

    #[test]
    fn around_explores_the_neighbourhood() {
        let (data, forest) = fixture();
        let report = ParameterSearch::new()
            .with_thresholds([4])
            .with_bloom_options([10])
            .with_max_cores(2)
            .with_calibration_samples(4)
            .run(&forest, &data, &CostModel::default())
            .expect("sweep runs");
        let best = report.best();
        let nearby = ParameterSearch::around(best)
            .with_calibration_samples(4)
            .run(&forest, &data, &CostModel::default())
            .expect("neighbourhood runs");
        let thresholds: std::collections::BTreeSet<usize> =
            nearby.trials.iter().map(|t| t.threshold).collect();
        assert!(thresholds.contains(&best.threshold));
        assert!(thresholds.contains(&(best.threshold + 1)));
        assert!(nearby.best().modeled_ns.is_finite());
        assert!(nearby
            .trials
            .iter()
            .any(|t| t.plan.cores() > best.plan.cores() || best.plan.cores() == 1));
    }

    #[test]
    fn empty_thresholds_rejected() {
        let (data, forest) = fixture();
        let err = ParameterSearch::new()
            .with_thresholds(Vec::<usize>::new())
            .run(&forest, &data, &CostModel::default())
            .expect_err("no thresholds");
        assert!(matches!(err, BoltError::InvalidConfig { .. }));
    }

    #[test]
    fn cost_model_regimes() {
        let model = CostModel::default();
        // In-cache lookups are cheap; overflowing tables pay memory latency.
        let cheap = model.lookup_cost_ns(1024);
        let pricey = model.lookup_cost_ns(model.llc_bytes * 10);
        assert!(cheap < pricey);
        assert_eq!(model.aggregation_cost_ns(1), 0.0);
        assert!(model.aggregation_cost_ns(8) > 0.0);
        assert!(model.scan_cost_ns(100, 2) > model.scan_cost_ns(10, 2));
    }
}
