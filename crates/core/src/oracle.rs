//! Differential-testing oracle: randomized forests, adversarial inputs,
//! and bit-exact equivalence checks against the reference traversal.
//!
//! Bolt's entire claim (§4, footnote 1 of the paper) is that the compiled
//! dictionary + table + bloom pipeline classifies **identically** to the
//! source forest for every input. This module is the reusable half of that
//! guarantee: generators for structurally adversarial forests (duplicate
//! thresholds, single-leaf trees, skewed depths, boosted weights) and
//! inputs (threshold-boundary values, NaN/infinite features, all-zero and
//! all-one predicate vectors), plus checkers that report the first
//! divergence. The `differential` integration test drives these across the
//! full configuration matrix; later performance PRs regress against the
//! same oracle.
//!
//! The generators use a self-contained splitmix64 generator
//! ([`OracleRng`]) rather than an external RNG crate so the oracle is
//! available to downstream crates without extra dependencies, and so a
//! failing case is reproducible from its single `u64` seed.

use crate::engine::{BoltConfig, BoltForest};
use bolt_forest::{BoostedForest, Dataset, DecisionTree, NodeKind, RandomForest};

/// Deterministic splitmix64 generator; one seed fully determines every
/// forest and input the oracle produces.
#[derive(Clone, Debug)]
pub struct OracleRng {
    state: u64,
}

impl OracleRng {
    /// Creates a generator for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is empty");
        (((u128::from(self.next_u64())) * (n as u128)) >> 64) as usize
    }

    /// Returns true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

/// Shape parameters for one randomly generated forest.
#[derive(Clone, Debug)]
pub struct ForestSpec {
    /// Input dimensionality.
    pub n_features: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth (a tree may stop early).
    pub max_depth: usize,
    /// Threshold values splits draw from. A small pool forces the
    /// duplicate-threshold regime where predicate deduplication and the
    /// monotone evaluation fast path must agree with raw traversal.
    pub threshold_pool: Vec<f32>,
    /// Probability that a whole tree is a single leaf (constant-vote
    /// path with an empty predicate set).
    pub single_leaf_prob: f64,
}

impl ForestSpec {
    /// Draws a randomized specification: 1–6 features, 2–5 classes, 1–8
    /// trees, depth 1–5, and a pool of 2–6 quarter-step thresholds.
    #[must_use]
    pub fn sampled(rng: &mut OracleRng) -> Self {
        let pool_len = 2 + rng.below(5);
        let threshold_pool = (0..pool_len)
            // Quarter steps in [-4, 4): duplicates across trees are likely
            // and boundary inputs can hit thresholds exactly.
            .map(|_| (rng.below(32) as f32) * 0.25 - 4.0)
            .collect();
        Self {
            n_features: 1 + rng.below(6),
            n_classes: 2 + rng.below(4),
            n_trees: 1 + rng.below(8),
            max_depth: 1 + rng.below(5),
            threshold_pool,
            single_leaf_prob: 0.15,
        }
    }
}

fn grow_subtree(
    nodes: &mut Vec<NodeKind>,
    depth_left: usize,
    spec: &ForestSpec,
    rng: &mut OracleRng,
) -> u32 {
    let idx = nodes.len() as u32;
    if depth_left == 0 || rng.chance(0.25) {
        nodes.push(NodeKind::Leaf {
            class: rng.below(spec.n_classes) as u32,
        });
        return idx;
    }
    // Reserve the parent slot so both children point strictly forward.
    nodes.push(NodeKind::Leaf { class: 0 });
    let feature = rng.below(spec.n_features) as u32;
    let threshold = if rng.chance(0.9) {
        spec.threshold_pool[rng.below(spec.threshold_pool.len())]
    } else {
        rng.uniform(-8.0, 8.0)
    };
    let left = grow_subtree(nodes, depth_left - 1, spec, rng);
    let right = grow_subtree(nodes, depth_left - 1, spec, rng);
    nodes[idx as usize] = NodeKind::Split {
        feature,
        threshold,
        left,
        right,
    };
    idx
}

/// Generates one random decision tree under `spec`.
#[must_use]
pub fn random_tree(spec: &ForestSpec, rng: &mut OracleRng) -> DecisionTree {
    let mut nodes = Vec::new();
    if rng.chance(spec.single_leaf_prob) {
        nodes.push(NodeKind::Leaf {
            class: rng.below(spec.n_classes) as u32,
        });
    } else {
        // Force at least one split so not every tree degenerates.
        nodes.push(NodeKind::Leaf { class: 0 });
        let feature = rng.below(spec.n_features) as u32;
        let threshold = spec.threshold_pool[rng.below(spec.threshold_pool.len())];
        let left = grow_subtree(&mut nodes, spec.max_depth - 1, spec, rng);
        let right = grow_subtree(&mut nodes, spec.max_depth - 1, spec, rng);
        nodes[0] = NodeKind::Split {
            feature,
            threshold,
            left,
            right,
        };
    }
    DecisionTree::from_nodes(nodes, spec.n_features, spec.n_classes)
}

/// Generates a random forest under `spec`.
///
/// # Panics
///
/// Panics only if the generated trees disagree on shape, which would be a
/// bug in this generator.
#[must_use]
pub fn random_forest(spec: &ForestSpec, rng: &mut OracleRng) -> RandomForest {
    let trees = (0..spec.n_trees).map(|_| random_tree(spec, rng)).collect();
    RandomForest::from_trees(trees).expect("generator produces consistent trees")
}

/// Trains a boosted forest on a small random dataset so compiled boosted
/// ensembles (real-valued path weights) are covered too.
///
/// # Panics
///
/// Panics only if the generated dataset is rejected, which would be a bug
/// in this generator.
#[must_use]
pub fn random_boosted_forest(seed: u64) -> BoostedForest {
    let mut rng = OracleRng::new(seed ^ 0xB0A5_7ED0_F0E5_7000);
    let n_features = 2 + rng.below(3);
    let n_classes = 2 + rng.below(2);
    let n_samples = 40 + rng.below(40);
    let rows: Vec<Vec<f32>> = (0..n_samples)
        .map(|_| (0..n_features).map(|_| rng.uniform(-4.0, 4.0)).collect())
        .collect();
    // Planted labels: a noisy threshold rule keeps boosting non-degenerate.
    let labels: Vec<u32> = rows
        .iter()
        .map(|r| {
            let noisy = rng.chance(0.1);
            let base = u32::from(r[0] + r[1 % n_features] > 0.0);
            if noisy {
                (base + 1) % n_classes as u32
            } else {
                base.min(n_classes as u32 - 1)
            }
        })
        .collect();
    let data = bolt_forest::Dataset::from_rows(rows, labels, n_classes)
        .expect("generator produces a valid dataset");
    let rounds = 2 + rng.below(4);
    BoostedForest::train(
        &data,
        &bolt_forest::BoostConfig::new(rounds)
            .with_seed(seed)
            .with_max_height(3),
    )
}

/// All `(feature, threshold)` pairs appearing in the forest's splits.
#[must_use]
pub fn forest_thresholds(forest: &RandomForest) -> Vec<(u32, f32)> {
    tree_thresholds(forest.trees().iter())
}

/// All `(feature, threshold)` pairs appearing in the boosted ensemble.
#[must_use]
pub fn boosted_thresholds(forest: &BoostedForest) -> Vec<(u32, f32)> {
    tree_thresholds(forest.iter().map(|(t, _)| t))
}

fn tree_thresholds<'a>(trees: impl Iterator<Item = &'a DecisionTree>) -> Vec<(u32, f32)> {
    let mut out = Vec::new();
    for tree in trees {
        for node in tree.nodes() {
            if let NodeKind::Split {
                feature, threshold, ..
            } = *node
            {
                out.push((feature, threshold));
            }
        }
    }
    out
}

/// Smallest f32 strictly greater than `x` (finite, non-NaN `x`).
#[must_use]
pub fn next_above(x: f32) -> f32 {
    let bits = x.to_bits();
    let next = if bits == 0x8000_0000 {
        1 // -0.0 steps up to the smallest positive subnormal
    } else if bits >> 31 == 0 {
        bits + 1
    } else {
        bits - 1
    };
    f32::from_bits(next)
}

/// Largest f32 strictly less than `x` (finite, non-NaN `x`).
#[must_use]
pub fn next_below(x: f32) -> f32 {
    let bits = x.to_bits();
    let next = if bits == 0 {
        0x8000_0001 // +0.0 steps down to the smallest negative subnormal
    } else if bits >> 31 == 0 {
        bits - 1
    } else {
        bits + 1
    };
    f32::from_bits(next)
}

/// Generates `count` randomized adversarial inputs plus a fixed prelude of
/// deterministic extremes: the all-one and all-zero predicate vectors,
/// all-NaN, and both infinities.
///
/// Boundary inputs place features exactly on, one ULP above, and one ULP
/// below split thresholds — the values where `<=` binarization and raw
/// traversal are most likely to be mis-stitched.
#[must_use]
pub fn adversarial_inputs(
    n_features: usize,
    thresholds: &[(u32, f32)],
    rng: &mut OracleRng,
    count: usize,
) -> Vec<Vec<f32>> {
    let mut lo = vec![f32::INFINITY; n_features];
    let mut hi = vec![f32::NEG_INFINITY; n_features];
    for &(f, t) in thresholds {
        let f = f as usize;
        lo[f] = lo[f].min(t);
        hi[f] = hi[f].max(t);
    }
    let all_true: Vec<f32> = lo
        .iter()
        .map(|&l| if l.is_finite() { l - 1.0 } else { -1.0 })
        .collect();
    let all_false: Vec<f32> = hi
        .iter()
        .map(|&h| if h.is_finite() { h + 1.0 } else { 1.0 })
        .collect();

    let mut inputs = vec![
        all_true,
        all_false,
        vec![f32::NAN; n_features],
        vec![f32::INFINITY; n_features],
        vec![f32::NEG_INFINITY; n_features],
    ];

    for _ in 0..count {
        let mut sample: Vec<f32> = (0..n_features).map(|_| rng.uniform(-6.0, 6.0)).collect();
        match rng.below(5) {
            // Pin 1–3 features exactly on / one ULP around thresholds.
            0 | 1 if !thresholds.is_empty() => {
                for _ in 0..=rng.below(3) {
                    let (f, t) = thresholds[rng.below(thresholds.len())];
                    sample[f as usize] = match rng.below(3) {
                        0 => t,
                        1 => next_above(t),
                        _ => next_below(t),
                    };
                }
            }
            // Poison some features with NaN.
            2 => {
                for _ in 0..=rng.below(n_features) {
                    sample[rng.below(n_features)] = f32::NAN;
                }
            }
            // Push some features to infinity.
            3 => {
                for _ in 0..=rng.below(n_features) {
                    sample[rng.below(n_features)] = if rng.chance(0.5) {
                        f32::INFINITY
                    } else {
                        f32::NEG_INFINITY
                    };
                }
            }
            // Plain uniform noise.
            _ => {}
        }
        inputs.push(sample);
    }
    inputs
}

/// A self-contained served-equivalence scenario: one random forest, the
/// adversarial inputs to sweep over a serving front-end, and a finite
/// calibration set for engines that estimate hot paths from traffic
/// (forest packing). One seed reproduces the whole case.
#[derive(Clone, Debug)]
pub struct ServedCase {
    /// The reference forest every served engine must match bit-exactly.
    pub forest: RandomForest,
    /// Adversarial inputs (threshold boundaries, NaN, infinities) that
    /// must survive the wire encoding and classify identically.
    pub inputs: Vec<Vec<f32>>,
    /// Finite calibration rows labeled by the reference traversal.
    pub calibration: Dataset,
}

/// Draws a [`ServedCase`] from one seed: a sampled forest spec, the
/// forest, `count` randomized adversarial inputs (plus the deterministic
/// extreme prelude), and a 64-row calibration set.
#[must_use]
pub fn served_case(seed: u64, count: usize) -> ServedCase {
    let mut rng = OracleRng::new(seed);
    let spec = ForestSpec::sampled(&mut rng);
    let forest = random_forest(&spec, &mut rng);
    let thresholds = forest_thresholds(&forest);
    let inputs = adversarial_inputs(spec.n_features, &thresholds, &mut rng, count);
    // Finite rows labeled by the reference forest, so hot-path
    // estimation sees traffic the forest actually produces.
    let rows: Vec<Vec<f32>> = (0..64)
        .map(|_| {
            (0..spec.n_features)
                .map(|_| rng.uniform(-6.0, 6.0))
                .collect()
        })
        .collect();
    let labels: Vec<u32> = rows.iter().map(|r| forest.predict(r)).collect();
    let calibration =
        Dataset::from_rows(rows, labels, spec.n_classes).expect("finite calibration rows");
    ServedCase {
        forest,
        inputs,
        calibration,
    }
}

/// A single observed divergence between Bolt and its source forest.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// The input that diverged.
    pub sample: Vec<f32>,
    /// Bolt's classification.
    pub got: u32,
    /// The reference traversal's classification.
    pub expected: u32,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bolt classified {:?} as {}, reference says {}",
            self.sample, self.got, self.expected
        )
    }
}

/// Checks Bolt against the reference forest traversal on every sample.
/// Returns the number of samples checked.
///
/// # Errors
///
/// Returns the first [`Mismatch`] when any classification diverges.
pub fn check_forest(
    bolt: &BoltForest,
    forest: &RandomForest,
    samples: &[Vec<f32>],
) -> Result<usize, Mismatch> {
    let mut scratch = bolt.scratch();
    for sample in samples {
        let got = bolt.classify_with(sample, &mut scratch);
        let expected = forest.predict(sample);
        if got != expected {
            return Err(Mismatch {
                sample: sample.clone(),
                got,
                expected,
            });
        }
    }
    Ok(samples.len())
}

/// Checks a compiled boosted ensemble against [`BoostedForest::predict`].
/// Returns the number of samples checked.
///
/// # Errors
///
/// Returns the first [`Mismatch`] when any classification diverges.
pub fn check_boosted(
    bolt: &BoltForest,
    forest: &BoostedForest,
    samples: &[Vec<f32>],
) -> Result<usize, Mismatch> {
    let mut scratch = bolt.scratch();
    for sample in samples {
        let got = bolt.classify_with(sample, &mut scratch);
        let expected = forest.predict(sample);
        if got != expected {
            return Err(Mismatch {
                sample: sample.clone(),
                got,
                expected,
            });
        }
    }
    Ok(samples.len())
}

/// Pins the batched entry-major engine to the per-sample engine on the
/// given samples: vote vectors must be **bit-identical** (not merely
/// argmax-equal) for batch slices of sizes 1, 3, and the full set, both
/// unsharded and sharded. Returns the number of (sample, batch-shape)
/// checks performed.
///
/// # Errors
///
/// Returns a description of the first divergence.
pub fn check_batch(bolt: &BoltForest, samples: &[Vec<f32>]) -> Result<usize, String> {
    let refs: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
    let expected: Vec<Vec<f64>> = refs
        .iter()
        .map(|s| bolt.votes_for_bits(&bolt.encode(s)))
        .collect();
    let mut checked = 0usize;
    let mut scratch = bolt.batch_scratch();
    for batch_size in [1usize, 3, refs.len().max(1)] {
        for (start, chunk) in refs
            .chunks(batch_size)
            .enumerate()
            .map(|(i, c)| (i * batch_size, c))
        {
            bolt.batch_votes_with(chunk, &mut scratch);
            for (offset, sample) in chunk.iter().enumerate() {
                let got = scratch.votes(offset);
                let want = &expected[start + offset];
                if got != want.as_slice() {
                    return Err(format!(
                        "batch size {batch_size}: votes diverged on sample {:?}: batch {got:?} vs per-sample {want:?}",
                        sample
                    ));
                }
                checked += 1;
            }
        }
    }
    // Sharded: votes must still be bit-identical, across several shard
    // counts including more shards than samples.
    for shards in [1usize, 2, 4, refs.len() + 1] {
        let sharded = bolt.votes_batch_sharded(&refs, shards);
        for (i, (got, want)) in sharded.iter().zip(&expected).enumerate() {
            if got != want {
                return Err(format!(
                    "{shards} shards: votes diverged on sample {:?}: sharded {got:?} vs per-sample {want:?}",
                    samples[i]
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// Pins every SIMD scan kernel the host supports to the scalar reference
/// on the given samples: the sequence of matched entry indices must be
/// identical (same entries, same ascending order — vote accumulation
/// order depends on it), and the dispatched scan's vote vectors must be
/// **bit-identical** to the forced-scalar scan's. Returns the number of
/// (sample, kernel) checks performed.
///
/// # Errors
///
/// Returns a description of the first divergence.
pub fn check_kernels(bolt: &BoltForest, samples: &[Vec<f32>]) -> Result<usize, String> {
    use crate::simd::Kernel;
    let view = bolt.view();
    let dict = view.dict();
    let mut checked = 0usize;
    for sample in samples {
        let bits = bolt.encode(sample);
        let mut reference = Vec::new();
        dict.scan_with_kernel(&bits, Kernel::Scalar, |id| reference.push(id));
        for kernel in Kernel::all_supported() {
            let mut got = Vec::new();
            dict.scan_with_kernel(&bits, kernel, |id| got.push(id));
            if got != reference {
                return Err(format!(
                    "kernel {kernel}: matched entries {got:?} diverge from scalar \
                     {reference:?} on sample {sample:?}"
                ));
            }
            checked += 1;
        }
        // The dispatched scan (whatever `BOLT_KERNEL`/detection chose)
        // must produce bit-identical votes end to end.
        let via_dispatch: Vec<u64> = bolt
            .votes_for_bits(&bits)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let mut scalar_votes = vec![0.0f64; bolt.n_classes()];
        for &(class, weight) in view.constant_votes() {
            scalar_votes[class as usize] += weight;
        }
        dict.scan_with_kernel(&bits, Kernel::Scalar, |entry_id| {
            let address = dict.address_of(entry_id, &bits);
            for (class, weight) in view.lookup_entry_votes(entry_id, address).iter() {
                scalar_votes[class as usize] += weight;
            }
        });
        let scalar_bits: Vec<u64> = scalar_votes.iter().map(|v| v.to_bits()).collect();
        if via_dispatch != scalar_bits {
            return Err(format!(
                "dispatched votes diverge from forced-scalar votes on sample {sample:?}"
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

/// Pins every *batched* SIMD kernel the host supports to the forced-scalar
/// batched engine: for batch slices of sizes 1, 5, and the full set, the
/// per-sample vote vectors under each kernel must be **bit-identical** to
/// the scalar kernel's (which [`check_batch`] in turn pins to the
/// per-sample engine). Returns the number of (sample, batch-shape, kernel)
/// checks performed.
///
/// # Errors
///
/// Returns a description of the first divergence.
pub fn check_batch_kernels(bolt: &BoltForest, samples: &[Vec<f32>]) -> Result<usize, String> {
    use crate::simd::Kernel;
    let refs: Vec<&[f32]> = samples.iter().map(Vec::as_slice).collect();
    let mut scalar_scratch = bolt.batch_scratch();
    let mut kernel_scratch = bolt.batch_scratch();
    let mut checked = 0usize;
    for batch_size in [1usize, 5, refs.len().max(1)] {
        for chunk in refs.chunks(batch_size) {
            bolt.batch_votes_with_kernel(chunk, Kernel::Scalar, &mut scalar_scratch);
            for kernel in Kernel::all_supported() {
                bolt.batch_votes_with_kernel(chunk, kernel, &mut kernel_scratch);
                for (b, sample) in chunk.iter().enumerate() {
                    if kernel_scratch.votes(b) != scalar_scratch.votes(b) {
                        return Err(format!(
                            "batched kernel {kernel}, batch size {batch_size}: votes \
                             diverged on sample {sample:?}: {:?} vs scalar {:?}",
                            kernel_scratch.votes(b),
                            scalar_scratch.votes(b)
                        ));
                    }
                    checked += 1;
                }
            }
        }
    }
    Ok(checked)
}

/// The full compile-time configuration matrix the differential suite
/// sweeps: every `cluster_threshold` in 1..=8 crossed with bloom filtering
/// on/off and explanation payloads on/off (32 configurations).
#[must_use]
pub fn config_matrix() -> Vec<BoltConfig> {
    let mut configs = Vec::with_capacity(32);
    for threshold in 1..=8 {
        for bloom_bits in [0usize, 8] {
            for explanations in [false, true] {
                configs.push(
                    BoltConfig::default()
                        .with_cluster_threshold(threshold)
                        .with_bloom_bits_per_key(bloom_bits)
                        .with_explanations(explanations),
                );
            }
        }
    }
    configs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = OracleRng::new(3);
        let mut b = OracleRng::new(3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_above_below_are_adjacent() {
        for x in [0.0f32, -0.0, 1.5, -2.25, 1e-30, -1e30] {
            assert!(next_above(x) > x, "next_above({x})");
            assert!(next_below(x) < x, "next_below({x})");
            // Adjacent: nothing fits strictly between.
            assert_eq!(next_below(next_above(x)), x);
            assert_eq!(next_above(next_below(x)), x);
        }
    }

    #[test]
    fn generated_forests_are_valid_and_deterministic() {
        for seed in 0..20 {
            let mut rng = OracleRng::new(seed);
            let spec = ForestSpec::sampled(&mut rng);
            let forest = random_forest(&spec, &mut rng);
            assert_eq!(forest.n_trees(), spec.n_trees);
            assert_eq!(forest.n_features(), spec.n_features);
            assert_eq!(forest.n_classes(), spec.n_classes);

            let mut rng2 = OracleRng::new(seed);
            let spec2 = ForestSpec::sampled(&mut rng2);
            let forest2 = random_forest(&spec2, &mut rng2);
            for (a, b) in forest.trees().iter().zip(forest2.trees()) {
                assert_eq!(a.nodes(), b.nodes());
            }
        }
    }

    #[test]
    fn adversarial_prelude_hits_predicate_extremes() {
        let mut rng = OracleRng::new(11);
        let spec = ForestSpec::sampled(&mut rng);
        let forest = random_forest(&spec, &mut rng);
        let thresholds = forest_thresholds(&forest);
        let inputs = adversarial_inputs(spec.n_features, &thresholds, &mut rng, 10);
        assert_eq!(inputs.len(), 15);
        // Prelude sample 0 satisfies every predicate, sample 1 none.
        for &(f, t) in &thresholds {
            assert!(
                inputs[0][f as usize] <= t,
                "all-true input violates ({f}, {t})"
            );
            assert!(
                inputs[1][f as usize] > t,
                "all-false input satisfies ({f}, {t})"
            );
        }
    }

    #[test]
    fn config_matrix_covers_every_threshold_and_toggle() {
        let configs = config_matrix();
        assert_eq!(configs.len(), 32);
        for threshold in 1..=8usize {
            assert!(configs.iter().any(|c| c.cluster_threshold == threshold
                && c.bloom_bits_per_key == 0
                && !c.explanations));
            assert!(configs.iter().any(|c| c.cluster_threshold == threshold
                && c.bloom_bits_per_key > 0
                && c.explanations));
        }
    }
}
