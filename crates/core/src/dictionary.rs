//! The Bolt dictionary: one entry per path cluster.
//!
//! "These are not traditional dictionaries in the sense of associative maps
//! with O(1) lookup" (§4 fn. 2): during inference every entry is *scanned*,
//! but each test is a branch-free word-wide masked compare
//! (`(input & mask) == key`), so the scan costs bit-ops, not memory stalls
//! or branch mispredictions. Masks and keys are stored column-contiguously
//! so the scan walks memory sequentially.

use crate::cluster::Clustering;
use crate::simd::{self, Kernel};
use bolt_bitpack::Mask;
use bolt_forest::PredId;
use serde::{Deserialize, Serialize};

/// The scalar reference compare for one entry: folds
/// `(input & mask) ^ key` over the words both sides share, then folds the
/// key words beyond the input's width (a zero input word can only match
/// them if no key bit is set there — narrow inputs reject, they don't
/// panic). Returns the accumulated difference; zero means the entry
/// matches.
///
/// This is the single source of truth for scan semantics: [`DictView::scan`]
/// and [`DictView::matches`] both go through it, and every SIMD kernel in
/// [`crate::simd`] is pinned bit-for-bit against it.
#[inline]
fn entry_diff(words: &[u64], mask: &[u64], key: &[u64]) -> u64 {
    let n = words.len().min(mask.len());
    let mut diff = 0u64;
    for w in 0..n {
        diff |= (words[w] & mask[w]) ^ key[w];
    }
    for &key_word in &key[n..] {
        diff |= key_word;
    }
    diff
}

/// One dictionary entry: the membership key (common pairs) and address
/// layout (uncommon predicates) of one path cluster.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DictEntry {
    /// Entry ID (index in the dictionary; hashed into table keys).
    pub id: u32,
    /// Common `(predicate, value)` pairs, sorted by predicate.
    pub common: Vec<(PredId, bool)>,
    /// Uncommon predicates in address-bit order (bit `i` of the lookup
    /// address is the input's value of `uncommon[i]`).
    pub uncommon: Vec<PredId>,
}

impl DictEntry {
    /// Builds the lookup-table address for an input's predicate mask by
    /// gathering the bits of the uncommon predicates.
    #[must_use]
    pub fn address_of(&self, bits: &Mask) -> u64 {
        let mut address = 0u64;
        for (i, &pred) in self.uncommon.iter().enumerate() {
            address |= u64::from(bits.get(pred as usize)) << i;
        }
        address
    }
}

/// A borrowed, storage-agnostic view of the dictionary's scan arrays.
///
/// All of Bolt's inference kernels run over this view, so the same code
/// serves an owned [`Dictionary`] (whose arrays live in `Vec`s) and a
/// memory-mapped `BLT1` artifact (whose arrays are borrowed straight from
/// the mapped file, never copied). Callbacks receive entry *indices*; the
/// owned wrapper resolves them to [`DictEntry`] metadata, which a mapped
/// model does not carry.
///
/// The view trusts its invariants (slice lengths consistent with
/// `width`/entry count, offsets monotone, predicate IDs `< width`); the
/// cheap shape checks are asserted in [`DictView::new`] and the O(n)
/// invariants are enforced by the artifact loader before a view is ever
/// built over untrusted bytes.
#[derive(Clone, Copy, Debug)]
pub struct DictView<'a> {
    width: usize,
    stride: usize,
    n_entries: usize,
    mask_words: &'a [u64],
    key_words: &'a [u64],
    /// Entry-blocked mirror of `mask_words` (see [`crate::simd`]): empty
    /// when the producer carries no blocked layout, in which case every
    /// scan takes the scalar path.
    blk_mask: &'a [u64],
    /// Entry-blocked mirror of `key_words`.
    blk_key: &'a [u64],
    uncommon_flat: &'a [u32],
    uncommon_offsets: &'a [u32],
}

impl<'a> DictView<'a> {
    /// Builds a view over raw scan arrays for a universe of `width`
    /// predicates. The entry count is `uncommon_offsets.len() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths are mutually inconsistent
    /// (`mask_words`/`key_words` must be `n_entries x stride` long and
    /// `uncommon_offsets` must be non-empty).
    #[must_use]
    pub fn new(
        width: usize,
        mask_words: &'a [u64],
        key_words: &'a [u64],
        uncommon_flat: &'a [u32],
        uncommon_offsets: &'a [u32],
    ) -> Self {
        let stride = width.div_ceil(64).max(1);
        assert!(
            !uncommon_offsets.is_empty(),
            "uncommon_offsets needs a terminating sentinel"
        );
        let n_entries = uncommon_offsets.len() - 1;
        assert_eq!(mask_words.len(), n_entries * stride, "mask words shape");
        assert_eq!(key_words.len(), n_entries * stride, "key words shape");
        Self {
            width,
            stride,
            n_entries,
            mask_words,
            key_words,
            blk_mask: &[],
            blk_key: &[],
            uncommon_flat,
            uncommon_offsets,
        }
    }

    /// Attaches an entry-blocked mirror of the scan arrays (the
    /// [`crate::simd`] interleave), enabling the SIMD fast path for the
    /// `n_entries - n_entries % 4` entries it covers. Pass empty slices to
    /// keep the scalar-only view.
    ///
    /// The blocked arrays are *derived* data: they must be the exact
    /// [`simd::interleave_blocked`] image of the flat arrays (the artifact
    /// loader verifies this before trusting mapped bytes).
    ///
    /// # Panics
    ///
    /// Panics if the blocked arrays disagree with each other or with the
    /// dictionary's shape.
    #[must_use]
    pub fn with_blocked(mut self, blk_mask: &'a [u64], blk_key: &'a [u64]) -> Self {
        assert_eq!(blk_mask.len(), blk_key.len(), "blocked array shapes differ");
        if !blk_mask.is_empty() {
            assert_eq!(
                blk_mask.len(),
                simd::blocked_len(self.n_entries, self.stride),
                "blocked layout shape"
            );
        }
        self.blk_mask = blk_mask;
        self.blk_key = blk_key;
        self
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_entries
    }

    /// Whether the dictionary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Predicate-universe width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per entry in the packed scan arrays.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The packed common-predicate masks, `stride` words per entry.
    #[must_use]
    pub fn mask_words(&self) -> &'a [u64] {
        self.mask_words
    }

    /// The packed expected values under the masks.
    #[must_use]
    pub fn key_words(&self) -> &'a [u64] {
        self.key_words
    }

    /// Every entry's uncommon predicates, concatenated.
    #[must_use]
    pub fn uncommon_flat(&self) -> &'a [u32] {
        self.uncommon_flat
    }

    /// Entry `i`'s uncommon run is `uncommon_offsets[i]..uncommon_offsets[i+1]`.
    #[must_use]
    pub fn uncommon_offsets(&self) -> &'a [u32] {
        self.uncommon_offsets
    }

    /// The entry-blocked mask mirror (empty when the producer carries no
    /// blocked layout).
    #[must_use]
    pub fn blk_mask(&self) -> &'a [u64] {
        self.blk_mask
    }

    /// The entry-blocked key mirror.
    #[must_use]
    pub fn blk_key(&self) -> &'a [u64] {
        self.blk_key
    }

    /// Whether this view carries the entry-blocked layout (and so scans
    /// its full blocks through the selected SIMD kernel).
    #[must_use]
    pub fn has_blocked(&self) -> bool {
        !self.blk_mask.is_empty()
    }

    /// The branch-free membership test for entry `id`:
    /// `(input & mask) == key` over the entry's stride words. Inputs
    /// narrower than the dictionary width are handled exactly as
    /// [`Self::scan`] handles them — key bits beyond the input reject.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn matches(&self, id: u32, input: &Mask) -> bool {
        let words = input.as_words();
        let words = &words[..self.stride.min(words.len())];
        let base = id as usize * self.stride;
        entry_diff(
            words,
            &self.mask_words[base..base + self.stride],
            &self.key_words[base..base + self.stride],
        ) == 0
    }

    /// Scans all entries against an input mask, invoking `on_match` with the
    /// index of each entry whose common pairs all hold, in ascending entry
    /// order. Full blocks of the blocked layout (when present) go through
    /// the process-selected SIMD kernel ([`Kernel::selected`]); the tail —
    /// or the whole dictionary when no blocked layout is attached — takes
    /// the scalar reference path.
    pub fn scan<F: FnMut(u32)>(&self, input: &Mask, on_match: F) {
        self.scan_with_kernel(input, Kernel::selected(), on_match);
    }

    /// [`Self::scan`] with an explicit kernel — the hook the differential
    /// harness and benches use to pin every backend against the scalar
    /// reference regardless of `BOLT_KERNEL`. `Kernel::Scalar` ignores the
    /// blocked layout entirely and is the reference semantics.
    pub fn scan_with_kernel<F: FnMut(u32)>(&self, input: &Mask, kernel: Kernel, mut on_match: F) {
        if self.n_entries == 0 {
            return;
        }
        let words = input.as_words();
        let words = &words[..self.stride.min(words.len())];
        let mut tail_start = 0usize;
        if kernel != Kernel::Scalar && !self.blk_mask.is_empty() {
            tail_start = (self.n_entries / simd::BLOCK) * simd::BLOCK;
            simd::scan_blocked(
                kernel,
                self.blk_mask,
                self.blk_key,
                self.stride,
                words,
                &mut |idx| on_match(idx),
            );
        }
        for idx in tail_start..self.n_entries {
            let base = idx * self.stride;
            if entry_diff(
                words,
                &self.mask_words[base..base + self.stride],
                &self.key_words[base..base + self.stride],
            ) == 0
            {
                on_match(idx as u32);
            }
        }
    }

    /// Entry-major batched scan over lane-contiguous sample masks; see
    /// [`Dictionary::scan_lanes`] for the layout and skipping rules. Full
    /// blocks of the blocked layout (when present) go through the
    /// process-selected batched SIMD kernel ([`Kernel::selected`]); the
    /// tail — or the whole dictionary when no blocked layout is attached —
    /// takes the flat reference path.
    ///
    /// # Panics
    ///
    /// Panics if `lane_words` is not `stride x n_samples` long or `diffs`
    /// is shorter than [`simd::BLOCK`] `x n_samples`.
    pub fn scan_lanes<F: FnMut(u32, &[u32])>(
        &self,
        lane_words: &[u64],
        n_samples: usize,
        diffs: &mut [u64],
        matched: &mut Vec<u32>,
        on_entry: F,
    ) {
        self.scan_lanes_with_kernel(
            lane_words,
            n_samples,
            Kernel::selected(),
            diffs,
            matched,
            on_entry,
        );
    }

    /// [`Self::scan_lanes`] with an explicit kernel — the hook the
    /// differential harness and benches use to pin every batched backend
    /// against the flat reference regardless of `BOLT_KERNEL`.
    /// `Kernel::Scalar` ignores the blocked layout entirely and is the
    /// reference semantics.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::scan_lanes`].
    pub fn scan_lanes_with_kernel<F: FnMut(u32, &[u32])>(
        &self,
        lane_words: &[u64],
        n_samples: usize,
        kernel: Kernel,
        diffs: &mut [u64],
        matched: &mut Vec<u32>,
        mut on_entry: F,
    ) {
        if self.n_entries == 0 || n_samples == 0 {
            return;
        }
        assert_eq!(
            lane_words.len(),
            self.stride * n_samples,
            "lane words must be stride ({}) x n_samples ({})",
            self.stride,
            n_samples
        );
        assert!(
            diffs.len() >= simd::BLOCK * n_samples,
            "diffs arena must hold BLOCK x n_samples words"
        );
        let mut tail_start = 0usize;
        if kernel != Kernel::Scalar && !self.blk_mask.is_empty() {
            tail_start = (self.n_entries / simd::BLOCK) * simd::BLOCK;
            simd::scan_lanes_blocked(
                kernel,
                self.blk_mask,
                self.blk_key,
                self.stride,
                lane_words,
                n_samples,
                diffs,
                matched,
                &mut |idx, m| on_entry(idx, m),
            );
        }
        self.scan_lanes_flat(
            lane_words,
            n_samples,
            tail_start,
            &mut diffs[..n_samples],
            matched,
            &mut on_entry,
        );
    }

    /// The flat entry-major reference loop over entries
    /// `tail_start..n_entries`: dense per-word lane compares, auto-
    /// vectorized. This is the batched scan's semantic source of truth
    /// (each entry folds exactly [`entry_diff`] across the batch).
    fn scan_lanes_flat(
        &self,
        lane_words: &[u64],
        n_samples: usize,
        tail_start: usize,
        diffs: &mut [u64],
        matched: &mut Vec<u32>,
        on_entry: &mut dyn FnMut(u32, &[u32]),
    ) {
        let skip = tail_start * self.stride;
        for (idx, (mask, key)) in self.mask_words[skip..]
            .chunks_exact(self.stride)
            .zip(self.key_words[skip..].chunks_exact(self.stride))
            .enumerate()
        {
            let idx = idx + tail_start;
            // Dense vectorizable pass per nonzero word. Skipping is only
            // sound when both mask and key are zero: a stray key bit under
            // a zero mask (possible in a corrupted deserialized artifact)
            // must keep rejecting every sample, as the per-sample scan does.
            let mut first = true;
            for w in 0..self.stride {
                if mask[w] == 0 && key[w] == 0 {
                    continue;
                }
                let lane = &lane_words[w * n_samples..(w + 1) * n_samples];
                if first {
                    bolt_bitpack::lanes::masked_compare_into(lane, mask[w], key[w], diffs);
                    first = false;
                } else {
                    bolt_bitpack::lanes::fold_masked_compare(lane, mask[w], key[w], diffs);
                }
            }
            matched.clear();
            if first {
                // Entry with an all-zero mask matches every sample.
                matched.extend(0..n_samples as u32);
            } else {
                bolt_bitpack::lanes::zero_lanes_into(diffs, matched);
            }
            if !matched.is_empty() {
                on_entry(idx as u32, matched);
            }
        }
    }

    /// Hot-path address gather for entry `id` (see
    /// [`Dictionary::address_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn address_of(&self, id: u32, bits: &Mask) -> u64 {
        let (lo, hi) = (
            self.uncommon_offsets[id as usize] as usize,
            self.uncommon_offsets[id as usize + 1] as usize,
        );
        let words = bits.as_words();
        let mut address = 0u64;
        for (bit, &pred) in self.uncommon_flat[lo..hi].iter().enumerate() {
            let p = pred as usize;
            address |= (words[p / 64] >> (p % 64) & 1) << bit;
        }
        address
    }

    /// Address gather for sample `sample` of a lane-contiguous batch (see
    /// [`Dictionary::address_of_lane`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` or `sample` is out of range.
    #[must_use]
    pub fn address_of_lane(
        &self,
        id: u32,
        lane_words: &[u64],
        n_samples: usize,
        sample: usize,
    ) -> u64 {
        let (lo, hi) = (
            self.uncommon_offsets[id as usize] as usize,
            self.uncommon_offsets[id as usize + 1] as usize,
        );
        let mut address = 0u64;
        for (bit, &pred) in self.uncommon_flat[lo..hi].iter().enumerate() {
            let p = pred as usize;
            address |= (lane_words[(p / 64) * n_samples + sample] >> (p % 64) & 1) << bit;
        }
        address
    }

    /// Batched address gather for entry `id`: fills `out[j]` with
    /// [`Self::address_of_lane`] of `matched[j]` for every matched sample
    /// at once, through the kernel-dispatched lane gather
    /// ([`simd::gather_lane_addresses`] — hardware gather on AVX2-class
    /// kernels, the scalar bit loop elsewhere; bit-identical either way).
    ///
    /// # Panics
    ///
    /// Panics if `id` or any matched sample index is out of range.
    pub fn addresses_of_lane_into(
        &self,
        id: u32,
        kernel: Kernel,
        lane_words: &[u64],
        n_samples: usize,
        matched: &[u32],
        out: &mut Vec<u64>,
    ) {
        let (lo, hi) = (
            self.uncommon_offsets[id as usize] as usize,
            self.uncommon_offsets[id as usize + 1] as usize,
        );
        simd::gather_lane_addresses(
            kernel,
            &self.uncommon_flat[lo..hi],
            lane_words,
            n_samples,
            matched,
            out,
        );
    }

    /// Bytes consumed by the packed scan arrays.
    #[must_use]
    pub fn scan_bytes(&self) -> usize {
        (self.mask_words.len() + self.key_words.len()) * 8
    }
}

/// The compiled dictionary: per-entry metadata plus flat, stride-packed mask
/// and key words for the branch-free scan.
///
/// # Examples
///
/// ```
/// use bolt_core::{cluster::Clustering, paths::SortedPaths, Dictionary};
/// use bolt_forest::{Dataset, ForestConfig, PredicateUniverse, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 6) as f32]).collect();
/// let labels: Vec<u32> = (0..60).map(|i| u32::from(i % 6 > 2)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(4).with_seed(3));
/// let universe = PredicateUniverse::from_forest(&forest);
/// let sorted = SortedPaths::from_forest(&forest, &universe);
/// let clustering = Clustering::greedy(&sorted, 4)?;
/// let dict = Dictionary::from_clustering(&clustering, universe.len());
/// assert_eq!(dict.len(), clustering.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dictionary {
    entries: Vec<DictEntry>,
    /// Predicate-universe width in bits.
    width: usize,
    /// Words per entry in the flat mask/key arrays.
    stride: usize,
    /// `stride`-word mask of common predicates, per entry, contiguous.
    mask_words: Vec<u64>,
    /// `stride`-word expected values under the mask, per entry, contiguous.
    key_words: Vec<u64>,
    /// Entry-blocked mirror of `mask_words` for the SIMD scan (see
    /// [`crate::simd`]). Derived data, rebuilt rather than serialized so a
    /// hand-edited JSON artifact cannot desynchronize the two layouts; a
    /// deserialized dictionary scans scalar until [`Self::rebuild_blocked`]
    /// runs (which [`crate::BoltForest::rebuild`] does).
    #[serde(skip)]
    blk_mask: Vec<u64>,
    /// Entry-blocked mirror of `key_words`.
    #[serde(skip)]
    blk_key: Vec<u64>,
    /// Every entry's uncommon predicates, concatenated (hot-path mirror of
    /// the per-entry lists, avoiding heap hops during address gathering).
    uncommon_flat: Vec<u32>,
    /// Entry `i`'s uncommon run is `uncommon_offsets[i]..uncommon_offsets[i+1]`.
    uncommon_offsets: Vec<u32>,
}

/// Equality over the semantic fields only: the blocked mirrors are a
/// derived cache, so a deserialized (not yet rebuilt) dictionary still
/// equals the one it was serialized from.
impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
            && self.width == other.width
            && self.stride == other.stride
            && self.mask_words == other.mask_words
            && self.key_words == other.key_words
            && self.uncommon_flat == other.uncommon_flat
            && self.uncommon_offsets == other.uncommon_offsets
    }
}

impl Dictionary {
    /// Builds the dictionary for a clustering over a predicate universe of
    /// `width` predicates.
    #[must_use]
    pub fn from_clustering(clustering: &Clustering, width: usize) -> Self {
        let stride = width.div_ceil(64).max(1);
        let mut entries = Vec::with_capacity(clustering.len());
        let mut mask_words = Vec::with_capacity(clustering.len() * stride);
        let mut key_words = Vec::with_capacity(clustering.len() * stride);
        let mut uncommon_flat = Vec::new();
        let mut uncommon_offsets = Vec::with_capacity(clustering.len() + 1);
        for (id, cluster) in clustering.clusters().iter().enumerate() {
            uncommon_offsets.push(uncommon_flat.len() as u32);
            uncommon_flat.extend_from_slice(&cluster.uncommon);
            let mut mask = vec![0u64; stride];
            let mut key = vec![0u64; stride];
            for &(pred, value) in &cluster.common {
                let p = pred as usize;
                mask[p / 64] |= 1 << (p % 64);
                if value {
                    key[p / 64] |= 1 << (p % 64);
                }
            }
            mask_words.extend_from_slice(&mask);
            key_words.extend_from_slice(&key);
            entries.push(DictEntry {
                id: id as u32,
                common: cluster.common.clone(),
                uncommon: cluster.uncommon.clone(),
            });
        }
        uncommon_offsets.push(uncommon_flat.len() as u32);
        let mut dict = Self {
            entries,
            width,
            stride,
            mask_words,
            key_words,
            blk_mask: Vec::new(),
            blk_key: Vec::new(),
            uncommon_flat,
            uncommon_offsets,
        };
        dict.rebuild_blocked();
        dict
    }

    /// Rebuilds the entry-blocked SIMD mirror from the flat scan arrays.
    /// Serde skips the mirror (it is derived data), so deserialized
    /// dictionaries scan scalar until this runs — `BoltForest::rebuild`
    /// and `BoltRegressor::rebuild` call it alongside the predicate
    /// universe's index rebuild.
    pub fn rebuild_blocked(&mut self) {
        self.blk_mask = simd::interleave_blocked(&self.mask_words, self.stride);
        self.blk_key = simd::interleave_blocked(&self.key_words, self.stride);
    }

    /// A borrowed [`DictView`] over the packed scan arrays — the shape the
    /// inference kernels actually run over, shared with memory-mapped
    /// artifacts.
    #[must_use]
    pub fn view(&self) -> DictView<'_> {
        DictView {
            width: self.width,
            stride: self.stride,
            n_entries: self.entries.len(),
            mask_words: &self.mask_words,
            key_words: &self.key_words,
            blk_mask: &self.blk_mask,
            blk_key: &self.blk_key,
            uncommon_flat: &self.uncommon_flat,
            uncommon_offsets: &self.uncommon_offsets,
        }
    }

    /// Hot-path address gather for entry `id`: collects the input's bits of
    /// the entry's uncommon predicates from the flat arrays (equivalent to
    /// [`DictEntry::address_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn address_of(&self, id: u32, bits: &Mask) -> u64 {
        self.view().address_of(id, bits)
    }

    /// The entries in ID order.
    #[must_use]
    pub fn entries(&self) -> &[DictEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Predicate-universe width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Words per entry in the packed scan arrays.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The branch-free membership test for entry `id`:
    /// `(input & mask) == key` over the entry's stride words.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `input` has the wrong width.
    #[must_use]
    pub fn matches(&self, id: u32, input: &Mask) -> bool {
        self.view().matches(id, input)
    }

    /// Scans all entries against an input mask, invoking `on_match` for each
    /// entry whose common pairs all hold. This is Bolt's inference front
    /// half: no branches in the compare, sequential memory access.
    pub fn scan<F: FnMut(&DictEntry)>(&self, input: &Mask, mut on_match: F) {
        self.view()
            .scan(input, |idx| on_match(&self.entries[idx as usize]));
    }

    /// Entry-major batched scan: tests `n_samples` encoded inputs against
    /// every entry, invoking `on_entry` with each entry and the indices of
    /// the samples that matched it.
    ///
    /// `lane_words` holds the batch's predicate masks lane-contiguously:
    /// word `w` of sample `b` lives at `lane_words[w * n_samples + b]`, so
    /// each entry's stride words are loaded **once** and compared against
    /// all samples with dense word loops (the inverse of [`Self::scan`]'s
    /// sample-major loop); full blocks of the SIMD mirror go through the
    /// explicit batched kernels ([`crate::simd::scan_lanes_blocked`]).
    /// `diffs` (≥ [`simd::BLOCK`] `× n_samples` long — the blocked kernels
    /// accumulate four per-entry rows at once) and `matched` are
    /// caller-owned scratch so repeated scans allocate nothing.
    ///
    /// Words with no mask *and* no key bits are skipped outright: such a
    /// word can never reject a sample. Cluster masks are sparse — a
    /// cluster's common pairs touch a handful of the stride's words — so
    /// the entry-major cost is `nnz × B` fused compare ops instead of the
    /// sample-major scan's `stride × B` loads, on top of the amortized
    /// mask/key traffic. A key bit *outside* its mask ([`from_clustering`]
    /// never emits one, but a corrupted deserialized artifact can) is still
    /// folded into the compare, so the entry rejects every sample exactly
    /// as [`Self::scan`] and [`Self::matches`] do — a shared failure mode
    /// rather than a silent divergence.
    ///
    /// [`from_clustering`]: Self::from_clustering
    ///
    /// # Panics
    ///
    /// Panics if `lane_words` is not `stride × n_samples` long or `diffs`
    /// is shorter than [`simd::BLOCK`] `× n_samples`.
    pub fn scan_lanes<F: FnMut(&DictEntry, &[u32])>(
        &self,
        lane_words: &[u64],
        n_samples: usize,
        diffs: &mut [u64],
        matched: &mut Vec<u32>,
        mut on_entry: F,
    ) {
        self.view()
            .scan_lanes(lane_words, n_samples, diffs, matched, |idx, matched| {
                on_entry(&self.entries[idx as usize], matched);
            });
    }

    /// Address gather for sample `sample` of a lane-contiguous batch (the
    /// batched counterpart of [`Self::address_of`]): bit `p` of sample `b`
    /// is read from `lane_words[(p / 64) * n_samples + b]`.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `sample` is out of range.
    #[must_use]
    pub fn address_of_lane(
        &self,
        id: u32,
        lane_words: &[u64],
        n_samples: usize,
        sample: usize,
    ) -> u64 {
        self.view()
            .address_of_lane(id, lane_words, n_samples, sample)
    }

    /// Bytes consumed by the packed scan arrays.
    #[must_use]
    pub fn scan_bytes(&self) -> usize {
        (self.mask_words.len() + self.key_words.len()) * 8
    }

    /// Largest number of common pairs across entries (drives the mask width
    /// discussion of Fig. 8).
    #[must_use]
    pub fn max_common_pairs(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.common.len())
            .max()
            .unwrap_or(0)
    }

    /// Largest total feature count (common + uncommon) across entries — the
    /// paper's "largest feature set across all dictionary entries".
    #[must_use]
    pub fn max_feature_set(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.common.len() + e.uncommon.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::SortedPaths;
    use bolt_forest::BinaryPath;

    fn path(pairs: &[(PredId, bool)], class: u32, tree: u32) -> BinaryPath {
        BinaryPath {
            pairs: pairs.to_vec(),
            class,
            tree,
            weight: 1.0,
        }
    }

    fn small_dictionary() -> Dictionary {
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(0, true), (1, true)], 0, 0),
                path(&[(0, true), (1, false)], 1, 0),
                path(&[(0, false), (2, true)], 1, 0),
                path(&[(0, false), (2, false)], 0, 0),
            ],
            1,
        );
        let clustering = Clustering::greedy(&sorted, 1).expect("clusters");
        Dictionary::from_clustering(&clustering, 3)
    }

    #[test]
    fn matches_agrees_with_common_pairs() {
        let dict = small_dictionary();
        // Try all 8 inputs over 3 predicates.
        for input_bits in 0u8..8 {
            let mut input = Mask::zeros(3);
            for b in 0..3 {
                input.set(b, input_bits >> b & 1 == 1);
            }
            for entry in dict.entries() {
                let expected = entry
                    .common
                    .iter()
                    .all(|&(p, v)| input.get(p as usize) == v);
                assert_eq!(dict.matches(entry.id, &input), expected);
            }
        }
    }

    #[test]
    fn scan_visits_exactly_matching_entries() {
        let dict = small_dictionary();
        let mut input = Mask::zeros(3);
        input.set(0, true);
        input.set(1, true);
        let mut via_scan = Vec::new();
        dict.scan(&input, |e| via_scan.push(e.id));
        let direct: Vec<u32> = dict
            .entries()
            .iter()
            .filter(|e| dict.matches(e.id, &input))
            .map(|e| e.id)
            .collect();
        assert_eq!(via_scan, direct);
        assert!(!via_scan.is_empty());
    }

    #[test]
    fn address_gathers_uncommon_bits_in_order() {
        let entry = DictEntry {
            id: 0,
            common: vec![],
            uncommon: vec![2, 0],
        };
        let mut input = Mask::zeros(3);
        input.set(2, true); // bit 0 of the address
        assert_eq!(entry.address_of(&input), 0b01);
        input.set(0, true); // bit 1 of the address
        assert_eq!(entry.address_of(&input), 0b11);
    }

    #[test]
    fn wide_universe_uses_multiple_words() {
        // Predicates beyond bit 63 exercise the multi-word path.
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(70, true), (100, false)], 0, 0),
                path(&[(70, true), (100, true)], 1, 0),
            ],
            1,
        );
        let clustering = Clustering::greedy(&sorted, 2).expect("clusters");
        let dict = Dictionary::from_clustering(&clustering, 128);
        assert_eq!(dict.stride(), 2);
        let mut input = Mask::zeros(128);
        input.set(70, true);
        assert!(dict.matches(0, &input));
        input.set(70, false);
        assert!(!dict.matches(0, &input));
    }

    #[test]
    fn matches_handles_inputs_narrower_than_the_dictionary() {
        // Regression: `matches` used to assert on inputs narrower than the
        // dictionary width, while `scan` handled them (key bits beyond the
        // input reject). The two must agree on every entry.
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(70, true), (100, false)], 0, 0),
                path(&[(70, true), (100, true)], 1, 0),
                path(&[(2, true)], 0, 0),
            ],
            1,
        );
        let clustering = Clustering::greedy(&sorted, 2).expect("clusters");
        let dict = Dictionary::from_clustering(&clustering, 128);
        assert_eq!(dict.stride(), 2);
        let mut narrow = Mask::zeros(3); // one word, dictionary needs two
        narrow.set(2, true);
        let mut via_scan = Vec::new();
        dict.scan(&narrow, |e| via_scan.push(e.id));
        for entry in dict.entries() {
            assert_eq!(
                dict.matches(entry.id, &narrow),
                via_scan.contains(&entry.id),
                "entry {}",
                entry.id
            );
            // Entries keyed on predicates beyond the narrow input reject.
            if entry.common.iter().any(|&(p, v)| p >= 64 && v) {
                assert!(!dict.matches(entry.id, &narrow));
            }
        }
        assert!(
            via_scan.iter().any(|&id| {
                dict.entries()[id as usize]
                    .common
                    .iter()
                    .all(|&(p, _)| p < 64)
            }),
            "the low-word entry should still match"
        );
    }

    #[test]
    fn blocked_mirror_matches_flat_on_every_kernel() {
        // 4+ entries so at least one full block exists; compare the
        // dispatched scan against the forced-scalar reference.
        // Threshold 0 keeps every distinct path its own entry, so the
        // dictionary has 6 entries: one full block of 4 plus a tail of 2.
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(0, true), (70, true)], 0, 0),
                path(&[(0, true), (70, false)], 1, 0),
                path(&[(0, false), (100, true)], 1, 0),
                path(&[(0, false), (100, false)], 0, 0),
                path(&[(2, true)], 0, 0),
                path(&[(2, false), (70, true)], 1, 0),
            ],
            1,
        );
        let clustering = Clustering::greedy(&sorted, 0).expect("clusters");
        let dict = Dictionary::from_clustering(&clustering, 128);
        assert!(dict.len() >= 5, "want a full block plus a tail");
        let view = dict.view();
        assert!(view.has_blocked());
        for bits in 0u8..8 {
            let mut input = Mask::zeros(128);
            input.set(0, bits & 1 == 1);
            input.set(70, bits >> 1 & 1 == 1);
            input.set(100, bits >> 2 & 1 == 1);
            let mut reference = Vec::new();
            view.scan_with_kernel(&input, Kernel::Scalar, |id| reference.push(id));
            for kernel in Kernel::all_supported() {
                let mut got = Vec::new();
                view.scan_with_kernel(&input, kernel, |id| got.push(id));
                assert_eq!(got, reference, "kernel {kernel} input {bits:03b}");
            }
        }
    }

    #[test]
    fn flat_address_matches_entry_address() {
        let dict = small_dictionary();
        for input_bits in 0u8..8 {
            let mut input = Mask::zeros(3);
            for b in 0..3 {
                input.set(b, input_bits >> b & 1 == 1);
            }
            for entry in dict.entries() {
                assert_eq!(dict.address_of(entry.id, &input), entry.address_of(&input));
            }
        }
    }

    /// Packs sample masks lane-contiguously (word `w` of sample `b` at
    /// `out[w * n + b]`), as the batched engine does.
    fn to_lanes(inputs: &[Mask], stride: usize) -> Vec<u64> {
        let n = inputs.len();
        let mut lanes = vec![0u64; stride * n];
        for (b, input) in inputs.iter().enumerate() {
            for (w, &word) in input.as_words().iter().enumerate().take(stride) {
                lanes[w * n + b] = word;
            }
        }
        lanes
    }

    #[test]
    fn lane_scan_agrees_with_per_sample_scan() {
        let dict = small_dictionary();
        let inputs: Vec<Mask> = (0u8..8)
            .map(|input_bits| {
                let mut input = Mask::zeros(3);
                for b in 0..3 {
                    input.set(b, input_bits >> b & 1 == 1);
                }
                input
            })
            .collect();
        let lanes = to_lanes(&inputs, dict.stride());
        let mut per_entry: Vec<(u32, Vec<u32>)> = Vec::new();
        let (mut diffs, mut matched) = (vec![0u64; simd::BLOCK * inputs.len()], Vec::new());
        dict.scan_lanes(&lanes, inputs.len(), &mut diffs, &mut matched, |e, m| {
            per_entry.push((e.id, m.to_vec()));
        });
        // Reference: per-sample scan, regrouped entry-major.
        let mut expected: Vec<(u32, Vec<u32>)> = Vec::new();
        for entry in dict.entries() {
            let samples: Vec<u32> = inputs
                .iter()
                .enumerate()
                .filter(|(_, input)| dict.matches(entry.id, input))
                .map(|(b, _)| b as u32)
                .collect();
            if !samples.is_empty() {
                expected.push((entry.id, samples));
            }
        }
        assert_eq!(per_entry, expected);
    }

    #[test]
    fn lane_scan_handles_multiword_stride() {
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(70, true), (100, false)], 0, 0),
                path(&[(70, true), (100, true)], 1, 0),
            ],
            1,
        );
        let clustering = Clustering::greedy(&sorted, 2).expect("clusters");
        let dict = Dictionary::from_clustering(&clustering, 128);
        let mut yes = Mask::zeros(128);
        yes.set(70, true);
        let no = Mask::zeros(128);
        let inputs = [yes, no];
        let lanes = to_lanes(&inputs, dict.stride());
        let (mut diffs, mut matched) = (vec![0u64; simd::BLOCK * 2], Vec::new());
        let mut seen = Vec::new();
        dict.scan_lanes(&lanes, 2, &mut diffs, &mut matched, |e, m| {
            seen.push((e.id, m.to_vec()));
        });
        assert_eq!(seen, vec![(0, vec![0])], "only sample 0 sets predicate 70");
    }

    #[test]
    fn corrupted_key_outside_mask_fails_identically_in_both_scans() {
        // from_clustering guarantees key ⊆ mask, but a deserialized
        // artifact carries no such guarantee. A stray key bit in a
        // zero-mask word makes the per-sample compare reject everything;
        // the batched scan must reject identically, not skip the word and
        // silently diverge.
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(70, true), (100, false)], 0, 0),
                path(&[(70, true), (100, true)], 1, 0),
            ],
            1,
        );
        let clustering = Clustering::greedy(&sorted, 2).expect("clusters");
        let mut dict = Dictionary::from_clustering(&clustering, 128);
        assert_eq!(dict.stride(), 2);
        assert_eq!(dict.mask_words[0], 0, "entry 0 word 0 starts unmasked");
        dict.key_words[0] = 1; // corrupt: key bit with no mask bit
        dict.rebuild_blocked(); // keep the SIMD mirror in sync with the corruption
        let mut inputs: Vec<Mask> = Vec::new();
        for bits in 0u8..4 {
            let mut input = Mask::zeros(128);
            input.set(0, bits & 1 == 1); // under the corrupted key bit
            input.set(70, bits >> 1 & 1 == 1);
            inputs.push(input);
        }
        for input in &inputs {
            assert!(!dict.matches(0, input), "per-sample scan rejects");
        }
        let lanes = to_lanes(&inputs, dict.stride());
        let (mut diffs, mut matched) = (vec![0u64; simd::BLOCK * inputs.len()], Vec::new());
        let mut lane_hits: Vec<(u32, Vec<u32>)> = Vec::new();
        dict.scan_lanes(&lanes, inputs.len(), &mut diffs, &mut matched, |e, m| {
            lane_hits.push((e.id, m.to_vec()));
        });
        assert!(
            !lane_hits.iter().any(|(id, _)| *id == 0),
            "batched scan must reject the corrupted entry for every sample"
        );
        // And the two scans agree entry-by-entry on the whole dictionary.
        for entry in dict.entries() {
            let per_sample: Vec<u32> = inputs
                .iter()
                .enumerate()
                .filter(|(_, input)| dict.matches(entry.id, input))
                .map(|(b, _)| b as u32)
                .collect();
            let batched = lane_hits
                .iter()
                .find(|(id, _)| *id == entry.id)
                .map(|(_, m)| m.clone())
                .unwrap_or_default();
            assert_eq!(batched, per_sample, "entry {}", entry.id);
        }
    }

    #[test]
    fn lane_address_matches_flat_address() {
        let dict = small_dictionary();
        let inputs: Vec<Mask> = (0u8..8)
            .map(|input_bits| {
                let mut input = Mask::zeros(3);
                for b in 0..3 {
                    input.set(b, input_bits >> b & 1 == 1);
                }
                input
            })
            .collect();
        let lanes = to_lanes(&inputs, dict.stride());
        for entry in dict.entries() {
            for (b, input) in inputs.iter().enumerate() {
                assert_eq!(
                    dict.address_of_lane(entry.id, &lanes, inputs.len(), b),
                    dict.address_of(entry.id, input),
                    "entry {} sample {b}",
                    entry.id
                );
            }
        }
    }

    /// Seven disjoint two-pair paths over 130 predicates: a full SIMD
    /// block plus a three-entry flat tail, at stride 3.
    fn wide_dictionary() -> Dictionary {
        let paths: Vec<BinaryPath> = (0..7u32)
            .map(|i| {
                let a = (i * 19) % 130;
                let b = (i * 37 + 5) % 130;
                path(&[(a.min(b), i & 1 == 0), (a.max(b), i & 2 == 0)], i % 3, i)
            })
            .collect();
        let sorted = SortedPaths::from_paths(paths, 3);
        let clustering = Clustering::greedy(&sorted, 2).expect("clusters");
        Dictionary::from_clustering(&clustering, 130)
    }

    fn wide_inputs() -> Vec<Mask> {
        (0..9usize)
            .map(|s| {
                let mut m = Mask::zeros(130);
                for p in 0..130 {
                    if (p * 7 + s * 13) % 5 == 0 {
                        m.set(p, true);
                    }
                }
                m
            })
            .collect()
    }

    #[test]
    fn lane_scan_is_kernel_invariant() {
        let dict = wide_dictionary();
        assert!(
            dict.len() >= simd::BLOCK,
            "need at least one full block to exercise the batched kernels"
        );
        let inputs = wide_inputs();
        let lanes = to_lanes(&inputs, dict.stride());
        let n = inputs.len();
        let collect = |kernel: Kernel| {
            let (mut diffs, mut matched) = (vec![0u64; simd::BLOCK * n], Vec::new());
            let mut hits: Vec<(u32, Vec<u32>)> = Vec::new();
            dict.view().scan_lanes_with_kernel(
                &lanes,
                n,
                kernel,
                &mut diffs,
                &mut matched,
                |id, m| hits.push((id, m.to_vec())),
            );
            hits
        };
        let reference = collect(Kernel::Scalar);
        assert!(!reference.is_empty(), "inputs must hit at least one entry");
        for kernel in Kernel::ALL {
            if kernel.is_available() {
                assert_eq!(collect(kernel), reference, "{kernel:?} diverged");
            }
        }
    }

    #[test]
    fn batched_address_gather_matches_flat_addresses() {
        let dict = wide_dictionary();
        let inputs = wide_inputs();
        let lanes = to_lanes(&inputs, dict.stride());
        let n = inputs.len();
        let matched: Vec<u32> = (0..n as u32).collect();
        let mut out = Vec::new();
        for entry in dict.entries() {
            let expected: Vec<u64> = (0..n)
                .map(|b| dict.address_of_lane(entry.id, &lanes, n, b))
                .collect();
            for kernel in Kernel::ALL {
                if !kernel.is_available() {
                    continue;
                }
                dict.view()
                    .addresses_of_lane_into(entry.id, kernel, &lanes, n, &matched, &mut out);
                assert_eq!(out, expected, "entry {} kernel {kernel:?}", entry.id);
            }
        }
    }

    #[test]
    fn size_metrics() {
        let dict = small_dictionary();
        assert!(dict.scan_bytes() >= dict.len() * 16);
        assert!(dict.max_common_pairs() >= 1);
        assert!(dict.max_feature_set() >= dict.max_common_pairs());
    }
}
