//! Path enumeration and forest-wide lexicographic merging (Fig. 3, steps
//! 1–2 of the paper).
//!
//! Bolt's first move is to stop thinking of a forest as trees: it enumerates
//! every root→leaf path of every tree as a sorted list of
//! `(predicate, value)` pairs, then merges all paths into one list sorted
//! lexicographically, so that paths sharing prefixes — *within and across
//! trees* — become adjacent and can be clustered together.

use bolt_forest::{BinaryPath, BoostedForest, PredicateUniverse, RandomForest};

/// All paths of a forest, sorted lexicographically by their
/// `(predicate, value)` pair lists.
///
/// # Examples
///
/// ```
/// use bolt_core::paths::SortedPaths;
/// use bolt_forest::{Dataset, ForestConfig, PredicateUniverse, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
/// let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(3).with_seed(2));
/// let universe = PredicateUniverse::from_forest(&forest);
/// let sorted = SortedPaths::from_forest(&forest, &universe);
/// assert_eq!(sorted.len(), forest.total_paths());
/// # Ok::<(), bolt_forest::ForestError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SortedPaths {
    paths: Vec<BinaryPath>,
    n_trees: usize,
}

impl SortedPaths {
    /// Enumerates and sorts all paths of a random forest.
    #[must_use]
    pub fn from_forest(forest: &RandomForest, universe: &PredicateUniverse) -> Self {
        Self::from_paths(
            bolt_forest::enumerate_paths(forest, universe),
            forest.n_trees(),
        )
    }

    /// Enumerates and sorts the weighted paths of a boosted forest.
    #[must_use]
    pub fn from_boosted(forest: &BoostedForest, universe: &PredicateUniverse) -> Self {
        Self::from_paths(
            bolt_forest::enumerate_weighted_paths(forest, universe),
            forest.n_trees(),
        )
    }

    /// Sorts an explicit path list (the merge step of Fig. 3).
    #[must_use]
    pub fn from_paths(mut paths: Vec<BinaryPath>, n_trees: usize) -> Self {
        paths.sort_by(|a, b| a.pairs.cmp(&b.pairs).then(a.tree.cmp(&b.tree)));
        Self { paths, n_trees }
    }

    /// The sorted paths.
    #[must_use]
    pub fn paths(&self) -> &[BinaryPath] {
        &self.paths
    }

    /// Number of paths.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether there are no paths.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of trees the paths came from.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Number of paths whose pair list equals that of an earlier path — the
    /// fully redundant paths the paper highlights (identical tests, possibly
    /// different trees). These share lookup-table cells after compression.
    #[must_use]
    pub fn redundant_paths(&self) -> usize {
        self.paths
            .windows(2)
            .filter(|w| w[0].pairs == w[1].pairs)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{Dataset, ForestConfig, PredId};

    fn sorted_fixture() -> SortedPaths {
        let rows: Vec<Vec<f32>> = (0..80)
            .map(|i| vec![(i % 8) as f32, (i % 3) as f32])
            .collect();
        let labels: Vec<u32> = (0..80).map(|i| u32::from(i % 8 > 3)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(6).with_max_height(3).with_seed(13),
        );
        let universe = PredicateUniverse::from_forest(&forest);
        SortedPaths::from_forest(&forest, &universe)
    }

    #[test]
    fn lexicographic_order_holds() {
        let sorted = sorted_fixture();
        for w in sorted.paths().windows(2) {
            assert!(
                w[0].pairs <= w[1].pairs,
                "{:?} > {:?}",
                w[0].pairs,
                w[1].pairs
            );
        }
    }

    #[test]
    fn all_paths_survive_sorting() {
        let sorted = sorted_fixture();
        assert!(sorted.len() >= 6, "at least one path per tree");
        assert_eq!(sorted.n_trees(), 6);
        // Multiset preserved: same count per tree as in the forest.
        let mut per_tree = [0usize; 6];
        for p in sorted.paths() {
            per_tree[p.tree as usize] += 1;
        }
        assert!(per_tree.iter().all(|&c| c >= 1));
    }

    #[test]
    fn redundancy_is_detected_for_identical_trees() {
        // Two hand-built identical paths from different trees.
        let mk = |tree: u32| BinaryPath {
            pairs: vec![(0 as PredId, true), (1, false)],
            class: 1,
            tree,
            weight: 1.0,
        };
        let sorted = SortedPaths::from_paths(vec![mk(1), mk(0)], 2);
        assert_eq!(sorted.redundant_paths(), 1);
        // Stable secondary order by tree id.
        assert_eq!(sorted.paths()[0].tree, 0);
    }

    #[test]
    fn empty_input_is_empty() {
        let sorted = SortedPaths::from_paths(vec![], 0);
        assert!(sorted.is_empty());
        assert_eq!(sorted.redundant_paths(), 0);
    }
}
