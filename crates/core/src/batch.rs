//! Entry-major batched inference with thread-parallel batch sharding.
//!
//! The per-sample engine re-walks the entire dictionary's mask/key columns
//! for every input, even though those columns are sample-independent (§4
//! fn. 2: the dictionary is *scanned*, not probed). When many samples
//! arrive together, the scan can be inverted: iterate **entry-major**, load
//! each entry's stride-packed mask/key words once, and test all `B` encoded
//! sample masks against them with dense lane loops
//! ([`bolt_bitpack::lanes`]) that the compiler auto-vectorizes. Matching
//! samples then gather their table addresses through the dictionary's
//! contiguous `uncommon_flat` mirror and accumulate votes into one flat
//! `B × n_classes` arena — zero per-sample allocation.
//!
//! The accumulation order per sample (constant votes first, then entries in
//! dictionary order) is exactly the per-sample path's order, so vote
//! vectors are **bit-identical** to [`BoltForest::classify_with`] — the
//! differential harness pins this.
//!
//! On top of the kernel, [`BoltForest::classify_batch_sharded`] shards a
//! batch across OS threads (crossbeam scoped threads), each shard running
//! the entry-major kernel with its own [`BatchScratch`]; outputs land in
//! disjoint slices so aggregation is a single pass with no locking.

use crate::engine::{argmax, BoltForest, ForestView};
use crate::simd::{self, Kernel};
use crate::table::Votes;
use bolt_bitpack::Mask;
use bolt_forest::PredicateUniverse;

/// Reusable buffers for allocation-free batched inference, mirroring
/// [`BoltScratch`](crate::BoltScratch) for the single-sample hot path.
/// Create one per serving thread with [`BoltForest::batch_scratch`]; the
/// buffers grow to the largest batch seen and are reused thereafter.
#[derive(Clone, Debug)]
pub struct BatchScratch {
    /// Per-sample staging buffer for predicate encoding.
    encode: Mask,
    /// Lane-contiguous batch masks: word `w` of sample `b` at
    /// `lanes[w * n_samples + b]`.
    lanes: Vec<u64>,
    /// Per-sample diff accumulators for the entry-major compare
    /// ([`simd::BLOCK`] `× n_samples`: the blocked kernels accumulate four
    /// per-entry rows at once).
    diffs: Vec<u64>,
    /// Indices of samples matching the current entry.
    matched: Vec<u32>,
    /// Gathered table addresses for the current entry's matched samples.
    addresses: Vec<u64>,
    /// Table keys hashed from `addresses` in one pass.
    keys: Vec<u64>,
    /// Flat `n_samples × n_classes` vote arena.
    votes: Vec<f64>,
    /// Samples laid out by the most recent run.
    n_samples: usize,
    n_classes: usize,
}

impl BatchScratch {
    /// Creates a scratch for a model with `width` predicates and
    /// `n_classes` classes (what [`BoltForest::batch_scratch`] passes;
    /// public so mapped artifacts can build one for the same kernel).
    #[must_use]
    pub fn for_shape(width: usize, n_classes: usize) -> Self {
        Self {
            encode: Mask::zeros(width),
            lanes: Vec::new(),
            diffs: Vec::new(),
            matched: Vec::new(),
            addresses: Vec::new(),
            keys: Vec::new(),
            votes: Vec::new(),
            n_samples: 0,
            n_classes,
        }
    }

    fn reset(&mut self, n_samples: usize, stride: usize) {
        self.n_samples = n_samples;
        self.lanes.clear();
        self.lanes.resize(stride * n_samples, 0);
        self.diffs.clear();
        self.diffs.resize(simd::BLOCK * n_samples, 0);
        self.votes.clear();
        self.votes.resize(n_samples * self.n_classes, 0.0);
    }

    /// Per-class vote weights of sample `b` from the most recent batch run
    /// — bit-identical to [`BoltForest::votes_for_bits`] on the same
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside the most recent batch.
    #[must_use]
    pub fn votes(&self, b: usize) -> &[f64] {
        assert!(
            b < self.n_samples,
            "sample {b} outside the last batch of {}",
            self.n_samples
        );
        &self.votes[b * self.n_classes..(b + 1) * self.n_classes]
    }

    /// Argmax class of sample `b` from the most recent batch run (ties go
    /// to the lower class, matching the per-sample engine).
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside the most recent batch.
    #[must_use]
    pub fn class(&self, b: usize) -> u32 {
        argmax(self.votes(b))
    }

    /// Number of samples laid out by the most recent run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_samples
    }

    /// Whether the most recent run was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_samples == 0
    }
}

impl ForestView<'_> {
    /// Runs the entry-major kernel over `samples` (encoded through
    /// `universe`), leaving each sample's vote vector in the scratch arena
    /// ([`BatchScratch::votes`]). This is the one batched kernel body,
    /// shared by owned forests and memory-mapped artifacts.
    ///
    /// # Panics
    ///
    /// Panics if any sample is shorter than the universe's feature count or
    /// the scratch came from a differently-shaped model.
    pub fn batch_votes_into(
        &self,
        universe: &PredicateUniverse,
        samples: &[&[f32]],
        scratch: &mut BatchScratch,
    ) {
        self.batch_votes_into_with_kernel(universe, samples, Kernel::selected(), scratch);
    }

    /// [`Self::batch_votes_into`] with an explicit kernel — the hook the
    /// differential harness and benches use to pin every batched backend
    /// against the scalar reference regardless of `BOLT_KERNEL`.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::batch_votes_into`].
    pub fn batch_votes_into_with_kernel(
        &self,
        universe: &PredicateUniverse,
        samples: &[&[f32]],
        kernel: Kernel,
        scratch: &mut BatchScratch,
    ) {
        let n = samples.len();
        assert_eq!(
            scratch.n_classes,
            self.n_classes(),
            "scratch from another forest"
        );
        let dict = self.dict();
        scratch.reset(n, dict.stride());
        if n == 0 {
            return;
        }
        let BatchScratch {
            ref mut encode,
            ref mut lanes,
            ref mut diffs,
            ref mut matched,
            ref mut addresses,
            ref mut keys,
            ref mut votes,
            n_classes,
            ..
        } = *scratch;
        // Encode each sample once, scattering its words lane-contiguously
        // so the entry-major compare reads dense memory.
        for (b, sample) in samples.iter().enumerate() {
            universe.evaluate_into(sample, encode);
            for (w, &word) in encode.as_words().iter().enumerate().take(dict.stride()) {
                lanes[w * n + b] = word;
            }
        }
        // Constant votes are sample-independent: build the first sample's
        // row once, then replicate it with dense row copies (bit-identical
        // to re-adding — every row starts from the same 0.0 base).
        if !self.constant_votes().is_empty() && n_classes > 0 {
            let (proto, rest) = votes.split_at_mut(n_classes);
            for &(class, weight) in self.constant_votes() {
                proto[class as usize] += weight;
            }
            for row in rest.chunks_exact_mut(n_classes) {
                row.copy_from_slice(proto);
            }
        }
        // Entry-major: each entry's mask/key words are loaded once and
        // compared against all B samples; only matching samples gather an
        // address and touch the bloom filter / table. The matched samples'
        // addresses are gathered in one lane-parallel pass, then hashed
        // into table keys in another, so the bloom probe and table probe
        // both spend precomputed keys. Samples matching one entry usually
        // share its table address (always, when the entry has no uncommon
        // predicates), so the lookup is memoized on the address — a second
        // amortization the sample-major path cannot express.
        dict.scan_lanes_with_kernel(lanes, n, kernel, diffs, matched, |entry_id, matched| {
            dict.addresses_of_lane_into(entry_id, kernel, lanes, n, matched, addresses);
            simd::fill_table_keys(kernel, entry_id, addresses, keys);
            let mut last: Option<(u64, Votes<'_>)> = None;
            for (j, &b) in matched.iter().enumerate() {
                let b = b as usize;
                let address = addresses[j];
                let cell = match last {
                    Some((a, cell)) if a == address => cell,
                    _ => {
                        let cell = self.lookup_entry_votes_keyed(entry_id, address, keys[j]);
                        last = Some((address, cell));
                        cell
                    }
                };
                let votes = &mut votes[b * n_classes..(b + 1) * n_classes];
                for (class, weight) in cell.iter() {
                    votes[class as usize] += weight;
                }
            }
        });
    }
}

impl BoltForest {
    /// Creates a reusable scratch buffer for batched inference via
    /// [`Self::classify_batch_with`].
    #[must_use]
    pub fn batch_scratch(&self) -> BatchScratch {
        BatchScratch::for_shape(self.universe().len(), self.n_classes())
    }

    /// Runs the entry-major kernel over `samples`, leaving each sample's
    /// vote vector in the scratch arena ([`BatchScratch::votes`]).
    ///
    /// # Panics
    ///
    /// Panics if any sample is shorter than the universe's feature count or
    /// the scratch came from a differently-shaped forest.
    pub fn batch_votes_with(&self, samples: &[&[f32]], scratch: &mut BatchScratch) {
        self.view()
            .batch_votes_into(self.universe(), samples, scratch);
    }

    /// [`Self::batch_votes_with`] pinned to an explicit kernel (see
    /// [`ForestView::batch_votes_into_with_kernel`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::batch_votes_with`].
    pub fn batch_votes_with_kernel(
        &self,
        samples: &[&[f32]],
        kernel: Kernel,
        scratch: &mut BatchScratch,
    ) {
        self.view()
            .batch_votes_into_with_kernel(self.universe(), samples, kernel, scratch);
    }

    /// Allocation-free batched classification through a caller-owned
    /// scratch: classes are written into `out` (cleared first), index-for-
    /// index with `samples`. Identical results to calling
    /// [`Self::classify_with`] per sample.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::batch_votes_with`].
    pub fn classify_batch_with(
        &self,
        samples: &[&[f32]],
        scratch: &mut BatchScratch,
        out: &mut Vec<u32>,
    ) {
        self.batch_votes_with(samples, scratch);
        out.clear();
        out.extend((0..samples.len()).map(|b| argmax(scratch.votes(b))));
    }

    /// Convenience wrapper: batched classification with a fresh scratch.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::batch_votes_with`].
    #[must_use]
    pub fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        let mut scratch = self.batch_scratch();
        let mut out = Vec::with_capacity(samples.len());
        self.classify_batch_with(samples, &mut scratch, &mut out);
        out
    }

    /// Per-sample vote vectors for a batch (test/evaluation convenience
    /// over [`Self::batch_votes_with`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::batch_votes_with`].
    #[must_use]
    pub fn votes_batch(&self, samples: &[&[f32]]) -> Vec<Vec<f64>> {
        let mut scratch = self.batch_scratch();
        self.batch_votes_with(samples, &mut scratch);
        (0..samples.len())
            .map(|b| scratch.votes(b).to_vec())
            .collect()
    }

    /// Thread-parallel batched classification: the batch is split into
    /// `shards` contiguous chunks, each run through the entry-major kernel
    /// on its own scoped thread with a private [`BatchScratch`]; results
    /// land in disjoint output slices (one aggregation pass, no locking).
    /// Classes are identical to [`Self::classify_batch`] regardless of
    /// shard count.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::batch_votes_with`].
    #[must_use]
    pub fn classify_batch_sharded(&self, samples: &[&[f32]], shards: usize) -> Vec<u32> {
        let shards = shards.clamp(1, samples.len().max(1));
        if shards <= 1 {
            return self.classify_batch(samples);
        }
        let chunk = samples.len().div_ceil(shards);
        let mut out = vec![0u32; samples.len()];
        crossbeam::scope(|scope| {
            for (shard_samples, shard_out) in samples.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move |_| {
                    let mut scratch = self.batch_scratch();
                    let mut classes = Vec::with_capacity(shard_samples.len());
                    self.classify_batch_with(shard_samples, &mut scratch, &mut classes);
                    shard_out.copy_from_slice(&classes);
                });
            }
        })
        .expect("crossbeam scope");
        out
    }

    /// Sharded counterpart of [`Self::votes_batch`]: per-sample vote
    /// vectors computed shard-parallel. Used by the differential harness to
    /// pin the sharded path's votes bit-identically to the per-sample
    /// engine.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::batch_votes_with`].
    #[must_use]
    pub fn votes_batch_sharded(&self, samples: &[&[f32]], shards: usize) -> Vec<Vec<f64>> {
        let shards = shards.clamp(1, samples.len().max(1));
        if shards <= 1 {
            return self.votes_batch(samples);
        }
        let chunk = samples.len().div_ceil(shards);
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); samples.len()];
        crossbeam::scope(|scope| {
            for (shard_samples, shard_out) in samples.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move |_| {
                    let votes = self.votes_batch(shard_samples);
                    for (slot, votes) in shard_out.iter_mut().zip(votes) {
                        *slot = votes;
                    }
                });
            }
        })
        .expect("crossbeam scope");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoltConfig;
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn fixture() -> (Dataset, RandomForest, BoltForest) {
        let rows: Vec<Vec<f32>> = (0..140)
            .map(|i| vec![(i % 8) as f32, (i % 5) as f32, (i % 3) as f32])
            .collect();
        let labels: Vec<u32> = rows
            .iter()
            .map(|r| u32::from(r[0] + r[1] > 6.0) + u32::from(r[0] > 5.0))
            .collect();
        let data = Dataset::from_rows(rows, labels, 3).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(10).with_max_height(4).with_seed(17),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        (data, forest, bolt)
    }

    #[test]
    fn batch_classes_match_per_sample_engine() {
        let (data, forest, bolt) = fixture();
        let samples: Vec<&[f32]> = (0..data.len()).map(|i| data.sample(i)).collect();
        let batched = bolt.classify_batch(&samples);
        assert_eq!(batched.len(), samples.len());
        for (i, &class) in batched.iter().enumerate() {
            assert_eq!(class, forest.predict(samples[i]), "sample {i}");
        }
    }

    #[test]
    fn batch_votes_are_bit_identical_to_per_sample_votes() {
        let (data, _, bolt) = fixture();
        let samples: Vec<&[f32]> = (0..60).map(|i| data.sample(i)).collect();
        let mut scratch = bolt.batch_scratch();
        bolt.batch_votes_with(&samples, &mut scratch);
        for (b, sample) in samples.iter().enumerate() {
            let expected = bolt.votes_for_bits(&bolt.encode(sample));
            assert_eq!(scratch.votes(b), expected.as_slice(), "sample {b}");
        }
    }

    #[test]
    fn batch_votes_are_kernel_invariant() {
        let (data, _, bolt) = fixture();
        // Odd batch size: exercises every kernel's sample tail.
        let samples: Vec<&[f32]> = (0..37).map(|i| data.sample(i)).collect();
        let mut scratch = bolt.batch_scratch();
        bolt.batch_votes_with_kernel(&samples, Kernel::Scalar, &mut scratch);
        let reference: Vec<Vec<f64>> = (0..samples.len())
            .map(|b| scratch.votes(b).to_vec())
            .collect();
        for kernel in Kernel::ALL {
            if !kernel.is_available() {
                continue;
            }
            bolt.batch_votes_with_kernel(&samples, kernel, &mut scratch);
            for (b, expected) in reference.iter().enumerate() {
                assert_eq!(
                    scratch.votes(b),
                    expected.as_slice(),
                    "{kernel:?} sample {b}"
                );
            }
        }
    }

    #[test]
    fn sharding_is_invisible_in_the_results() {
        let (data, _, bolt) = fixture();
        let samples: Vec<&[f32]> = (0..data.len()).map(|i| data.sample(i)).collect();
        let reference = bolt.classify_batch(&samples);
        for shards in [1, 2, 3, 7, samples.len(), samples.len() + 5] {
            assert_eq!(
                bolt.classify_batch_sharded(&samples, shards),
                reference,
                "{shards} shards"
            );
        }
        assert_eq!(
            bolt.votes_batch_sharded(&samples, 4),
            bolt.votes_batch(&samples)
        );
    }

    #[test]
    fn scratch_is_reusable_across_batch_sizes() {
        let (data, forest, bolt) = fixture();
        let mut scratch = bolt.batch_scratch();
        let mut out = Vec::new();
        for len in [1usize, 5, 3, 64, 2] {
            let samples: Vec<&[f32]> = (0..len).map(|i| data.sample(i)).collect();
            bolt.classify_batch_with(&samples, &mut scratch, &mut out);
            assert_eq!(out.len(), len);
            for (i, &class) in out.iter().enumerate() {
                assert_eq!(class, forest.predict(samples[i]), "len {len} sample {i}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, _, bolt) = fixture();
        assert!(bolt.classify_batch(&[]).is_empty());
        assert!(bolt.classify_batch_sharded(&[], 4).is_empty());
        let mut scratch = bolt.batch_scratch();
        bolt.batch_votes_with(&[], &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn constant_vote_forests_batch_correctly() {
        use bolt_forest::{DecisionTree, NodeKind};
        let trees = vec![
            DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 0 }], 1, 2),
            DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 1 }], 1, 2),
            DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 1 }], 1, 2),
        ];
        let forest = RandomForest::from_trees(trees).expect("forest");
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let samples: Vec<&[f32]> = vec![&[0.0], &[5.0]];
        assert_eq!(bolt.classify_batch(&samples), vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "scratch from another forest")]
    fn foreign_scratch_panics() {
        let (data, _, bolt) = fixture();
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![(i % 4) as f32]).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i % 4 > 1)).collect();
        let other_data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let other_forest = RandomForest::train(&other_data, &ForestConfig::new(3).with_seed(5));
        let other = BoltForest::compile(&other_forest, &BoltConfig::default()).expect("compiles");
        let mut scratch = other.batch_scratch();
        let samples: Vec<&[f32]> = vec![data.sample(0)];
        bolt.batch_votes_with(&samples, &mut scratch);
    }
}
