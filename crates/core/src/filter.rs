//! Bloom filter over recombined-table keys (Phase 3, §4.3–4.4).
//!
//! Dictionaries make most entries irrelevant for a given input; Bolt "uses
//! bloom filters ... to query set membership" so that irrelevant lookups are
//! discarded *without a memory access*. The filter is queried with the same
//! `(entry ID, address)` key that the recombined table hashes; because bloom
//! filters have no false negatives, every true path lookup survives, and the
//! occasional false positive costs exactly one (verified, then discarded)
//! table access — the penalty the paper's §4.4 analysis bounds.

use serde::{Deserialize, Serialize};

/// Mixes a 64-bit value (splitmix64 finalizer).
#[inline]
#[must_use]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines a dictionary entry ID and a lookup address into the 64-bit key
/// shared by the bloom filter and the recombined table (Fig. 6: "the entry
/// ID and the values of all features are used to hash").
#[inline]
#[must_use]
pub fn table_key(entry_id: u32, address: u64) -> u64 {
    mix64(address ^ (u64::from(entry_id) << 48) ^ u64::from(entry_id))
}

/// A classic Bloom filter (Bloom, 1970) over `u64` keys.
///
/// # Examples
///
/// ```
/// use bolt_core::BloomFilter;
///
/// let filter = BloomFilter::from_keys([1u64, 2, 3].iter().copied(), 10);
/// assert!(filter.contains(2)); // members always hit
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    words: Vec<u64>,
    bit_mask: u64,
    n_hashes: u32,
    n_keys: usize,
}

impl BloomFilter {
    /// Builds a filter sized for the given keys at roughly
    /// `bits_per_key` bits per key. The number of hash functions follows
    /// `ln 2 * bits_per_key` but is clamped to 1–4: on Bolt's inference hot
    /// path each probe is a load, and past 4 probes the marginal
    /// false-positive reduction no longer pays for the extra accesses (a
    /// false positive costs just one verified table access, §4.4).
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_key == 0`.
    #[must_use]
    pub fn from_keys(keys: impl IntoIterator<Item = u64>, bits_per_key: usize) -> Self {
        assert!(bits_per_key > 0, "bits_per_key must be positive");
        let keys: Vec<u64> = keys.into_iter().collect();
        let n_bits = (keys.len().max(1) * bits_per_key)
            .next_power_of_two()
            .max(64);
        let n_hashes = ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 4);
        let mut filter = Self {
            words: vec![0u64; n_bits / 64],
            bit_mask: (n_bits - 1) as u64,
            n_hashes,
            n_keys: keys.len(),
        };
        for key in keys {
            filter.insert(key);
        }
        filter
    }

    fn insert(&mut self, key: u64) {
        let (h1, h2) = (mix64(key), mix64(key.rotate_left(32) ^ 0x9E37_79B9));
        for i in 0..self.n_hashes {
            let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) & self.bit_mask) as usize;
            self.words[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// Tests membership. Never returns `false` for an inserted key.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.view().contains(key)
    }

    /// A borrowed [`BloomView`] over the bit array — the shape the
    /// inference kernels probe, shared with memory-mapped artifacts.
    #[must_use]
    pub fn view(&self) -> BloomView<'_> {
        BloomView {
            words: &self.words,
            bit_mask: self.bit_mask,
            n_hashes: self.n_hashes,
        }
    }

    /// Number of keys inserted at construction.
    #[must_use]
    pub fn n_keys(&self) -> usize {
        self.n_keys
    }

    /// Size of the bit array in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Measured false-positive rate against a sample of non-member keys.
    #[must_use]
    pub fn false_positive_rate(&self, non_members: impl IntoIterator<Item = u64>) -> f64 {
        let mut total = 0usize;
        let mut hits = 0usize;
        for key in non_members {
            total += 1;
            if self.contains(key) {
                hits += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// A borrowed, storage-agnostic view of a bloom filter's bit array: the
/// probing code shared by owned filters and memory-mapped `BLT1` artifacts.
#[derive(Clone, Copy, Debug)]
pub struct BloomView<'a> {
    words: &'a [u64],
    bit_mask: u64,
    n_hashes: u32,
}

impl<'a> BloomView<'a> {
    /// Builds a view over a raw bit array.
    ///
    /// # Panics
    ///
    /// Panics if the word count does not cover `bit_mask + 1` bits or
    /// `n_hashes` is zero.
    #[must_use]
    pub fn new(words: &'a [u64], bit_mask: u64, n_hashes: u32) -> Self {
        assert!(n_hashes >= 1, "a bloom filter needs at least one hash");
        assert_eq!(
            words.len() as u64 * 64,
            bit_mask + 1,
            "bloom words must cover exactly bit_mask + 1 bits"
        );
        Self {
            words,
            bit_mask,
            n_hashes,
        }
    }

    /// Tests membership; same double-hashing probe as
    /// [`BloomFilter::contains`].
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = (mix64(key), mix64(key.rotate_left(32) ^ 0x9E37_79B9));
        let mut hit = true;
        for i in 0..self.n_hashes {
            let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) & self.bit_mask) as usize;
            hit &= self.words[bit / 64] >> (bit % 64) & 1 == 1;
        }
        hit
    }

    /// The raw bit-array words.
    #[must_use]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Bit-index mask (`n_bits - 1`; the bit count is a power of two).
    #[must_use]
    pub fn bit_mask(&self) -> u64 {
        self.bit_mask
    }

    /// Number of hash probes per query.
    #[must_use]
    pub fn n_hashes(&self) -> u32 {
        self.n_hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<u64> = (0..500).map(mix64).collect();
        let filter = BloomFilter::from_keys(keys.iter().copied(), 10);
        for &k in &keys {
            assert!(filter.contains(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_10_bits_per_key() {
        let members: Vec<u64> = (0..2000u64).map(mix64).collect();
        let filter = BloomFilter::from_keys(members.iter().copied(), 10);
        let rate = filter.false_positive_rate((10_000..30_000u64).map(mix64));
        assert!(rate < 0.05, "false positive rate {rate}");
    }

    #[test]
    fn more_bits_fewer_false_positives() {
        let members: Vec<u64> = (0..2000u64).map(mix64).collect();
        let loose = BloomFilter::from_keys(members.iter().copied(), 4);
        let tight = BloomFilter::from_keys(members.iter().copied(), 16);
        let nm: Vec<u64> = (10_000..20_000u64).map(mix64).collect();
        assert!(
            tight.false_positive_rate(nm.iter().copied())
                <= loose.false_positive_rate(nm.iter().copied())
        );
    }

    #[test]
    fn empty_filter_rejects_everything_possible() {
        let filter = BloomFilter::from_keys(std::iter::empty(), 8);
        assert_eq!(filter.n_keys(), 0);
        let rate = filter.false_positive_rate((0..1000u64).map(mix64));
        assert_eq!(rate, 0.0, "no bits set, nothing can match");
    }

    #[test]
    fn table_key_separates_entry_ids() {
        // Same address under different entries must produce different keys.
        assert_ne!(table_key(0, 42), table_key(1, 42));
        assert_ne!(table_key(3, 0), table_key(3, 1));
    }

    proptest! {
        #[test]
        fn prop_members_always_hit(keys in proptest::collection::vec(any::<u64>(), 1..300),
                                   bits in 1usize..20) {
            let filter = BloomFilter::from_keys(keys.iter().copied(), bits);
            for &k in &keys {
                prop_assert!(filter.contains(k));
            }
        }
    }
}
