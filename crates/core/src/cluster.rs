//! Greedy path clustering (Fig. 3, step 3 of the paper).
//!
//! Clusters are formed by walking the forest-wide sorted path list and
//! incrementally adding paths "until a tunable threshold for the number of
//! uncommon feature-value pairs is reached" (§4.1). Each cluster then yields:
//!
//! * **common pairs** — `(predicate, value)` pairs present with the same
//!   value in *every* member path; these become the dictionary entry's
//!   branch-free membership key,
//! * **uncommon predicates** — every other predicate appearing in any member
//!   path; these become the bits of the cluster's lookup-table address.

use crate::paths::SortedPaths;
use crate::BoltError;
use bolt_forest::{BinaryPath, PredId};
use std::collections::BTreeSet;

/// One path cluster with its derived common/uncommon split.
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    /// Member paths (contiguous slice of the sorted path list).
    pub paths: Vec<BinaryPath>,
    /// Pairs shared (same predicate, same value) by every member path,
    /// sorted by predicate ID.
    pub common: Vec<(PredId, bool)>,
    /// Predicates appearing in some member path but not common, sorted; at
    /// most [`Clustering::MAX_ADDRESS_BITS`] of them.
    pub uncommon: Vec<PredId>,
}

impl Cluster {
    fn from_paths(paths: Vec<BinaryPath>) -> Self {
        debug_assert!(!paths.is_empty());
        // Common pairs: intersection of all pair sets.
        let mut common: Vec<(PredId, bool)> = paths[0].pairs.clone();
        for path in &paths[1..] {
            common.retain(|pair| path.pairs.contains(pair));
        }
        // Uncommon predicates: union of all predicates minus common ones.
        let common_preds: BTreeSet<PredId> = common.iter().map(|&(p, _)| p).collect();
        let uncommon: Vec<PredId> = paths
            .iter()
            .flat_map(|p| p.pairs.iter().map(|&(pred, _)| pred))
            .filter(|p| !common_preds.contains(p))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        Self {
            paths,
            common,
            uncommon,
        }
    }

    /// Number of lookup-table address bits this cluster needs.
    #[must_use]
    pub fn address_bits(&self) -> usize {
        self.uncommon.len()
    }

    /// Enumerates every `(address, path_index)` expansion of this cluster:
    /// each member path fixes the address bits of the uncommon predicates it
    /// tests and expands over the rest (the "don't care" expansion of
    /// Fig. 2). Address bit `i` corresponds to `self.uncommon[i]`.
    #[must_use]
    pub fn expansions(&self) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        for (path_idx, path) in self.paths.iter().enumerate() {
            // Fixed bits from the path's own tests of uncommon predicates.
            let mut fixed = 0u64;
            let mut free_bits: Vec<usize> = Vec::new();
            for (bit, pred) in self.uncommon.iter().enumerate() {
                match path.pairs.iter().find(|&&(p, _)| p == *pred) {
                    Some(&(_, value)) => {
                        if value {
                            fixed |= 1 << bit;
                        }
                    }
                    None => free_bits.push(bit),
                }
            }
            for combo in 0u64..(1u64 << free_bits.len()) {
                let mut address = fixed;
                for (k, &bit) in free_bits.iter().enumerate() {
                    if combo >> k & 1 == 1 {
                        address |= 1 << bit;
                    }
                }
                out.push((address, path_idx));
            }
        }
        out
    }

    /// Number of *distinct occupied* lookup-table addresses this cluster
    /// produces (the paper's per-cluster "lookup table entries" count: the
    /// Fig. 3 example yields 4 + 4 + 2 = 10 across its three clusters).
    #[must_use]
    pub fn expanded_entries(&self) -> usize {
        let mut addresses: Vec<u64> = self.expansions().into_iter().map(|(a, _)| a).collect();
        addresses.sort_unstable();
        addresses.dedup();
        addresses.len()
    }
}

/// The result of Phase 1: the ordered list of clusters.
///
/// # Examples
///
/// ```
/// use bolt_core::{cluster::Clustering, paths::SortedPaths};
/// use bolt_forest::{Dataset, ForestConfig, PredicateUniverse, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 6) as f32]).collect();
/// let labels: Vec<u32> = (0..60).map(|i| u32::from(i % 6 > 2)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(4).with_seed(3));
/// let universe = PredicateUniverse::from_forest(&forest);
/// let sorted = SortedPaths::from_forest(&forest, &universe);
/// let clustering = Clustering::greedy(&sorted, 4)?;
/// assert_eq!(clustering.total_paths(), sorted.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Clustering {
    clusters: Vec<Cluster>,
    threshold: usize,
}

impl Clustering {
    /// Maximum supported lookup-table address width per cluster. Bounds both
    /// the `u64` address encoding and the worst-case "don't care" expansion.
    pub const MAX_ADDRESS_BITS: usize = 24;

    /// Greedily clusters the sorted paths with the given uncommon-pair
    /// `threshold` (the tunable hyper-parameter of §4.1).
    ///
    /// A cluster is seeded by one path (its pairs are free); subsequent
    /// paths join while the cumulative count of *novel* pairs (pairs not yet
    /// seen in the cluster) stays within `threshold`, and while the
    /// cluster's prospective address stays within
    /// [`Self::MAX_ADDRESS_BITS`].
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::EmptyForest`] when `sorted` is empty, and
    /// [`BoltError::AddressTooWide`] if a *single path* alone exceeds the
    /// addressable width (such a forest cannot be compiled at any
    /// threshold — its trees are too deep for table mapping, the regime the
    /// paper concedes to Forest Packing).
    pub fn greedy(sorted: &SortedPaths, threshold: usize) -> Result<Self, BoltError> {
        if sorted.is_empty() {
            return Err(BoltError::EmptyForest);
        }
        let mut clusters = Vec::new();
        let mut current: Vec<BinaryPath> = Vec::new();
        let mut seen: BTreeSet<(PredId, bool)> = BTreeSet::new();
        let mut seed_pairs = 0usize;
        let mut novel_used = 0usize;

        for path in sorted.paths() {
            if path.pairs.len() > Self::MAX_ADDRESS_BITS {
                return Err(BoltError::AddressTooWide {
                    bits: path.pairs.len(),
                    max: Self::MAX_ADDRESS_BITS,
                });
            }
            if current.is_empty() {
                seen = path.pairs.iter().copied().collect();
                seed_pairs = seen.len();
                novel_used = 0;
                current.push(path.clone());
                continue;
            }
            let novel = path
                .pairs
                .iter()
                .filter(|pair| !seen.contains(pair))
                .count();
            // Prospective distinct predicates bound the address width. The
            // common set can only shrink as paths join, so distinct pairs is
            // a safe over-estimate of common+uncommon.
            let prospective_pairs = seed_pairs + novel_used + novel;
            if novel_used + novel <= threshold && prospective_pairs <= Self::MAX_ADDRESS_BITS {
                novel_used += novel;
                seen.extend(path.pairs.iter().copied());
                current.push(path.clone());
            } else {
                clusters.push(Cluster::from_paths(std::mem::take(&mut current)));
                seen = path.pairs.iter().copied().collect();
                seed_pairs = seen.len();
                novel_used = 0;
                current.push(path.clone());
            }
        }
        if !current.is_empty() {
            clusters.push(Cluster::from_paths(current));
        }
        Ok(Self {
            clusters,
            threshold,
        })
    }

    /// Wraps pre-built clusters (used for degenerate forests with no
    /// clusterable paths, and by ablation benchmarks that bypass the greedy
    /// pass).
    #[must_use]
    pub fn from_clusters(clusters: Vec<Cluster>, threshold: usize) -> Self {
        Self {
            clusters,
            threshold,
        }
    }

    /// The clusters, in dictionary-entry order.
    #[must_use]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters (= future dictionary entries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The threshold this clustering was built with.
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Total paths across all clusters.
    #[must_use]
    pub fn total_paths(&self) -> usize {
        self.clusters.iter().map(|c| c.paths.len()).sum()
    }

    /// Total expanded lookup-table entries across all clusters — the storage
    /// demand Phase 2 weighs against dictionary size.
    #[must_use]
    pub fn total_expanded_entries(&self) -> usize {
        self.clusters.iter().map(Cluster::expanded_entries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(pairs: &[(PredId, bool)], class: u32, tree: u32) -> BinaryPath {
        // Real BinaryPaths from binarization are sorted by predicate ID.
        let mut pairs = pairs.to_vec();
        pairs.sort_unstable();
        BinaryPath {
            pairs,
            class,
            tree,
            weight: 1.0,
        }
    }

    /// The paper's Fig. 3 forest: two trees over predicates a=0, b=1, c=2,
    /// h=3, with the eight paths listed in the figure.
    fn figure3_paths() -> SortedPaths {
        let (a, b, c, h) = (0, 1, 2, 3);
        SortedPaths::from_paths(
            vec![
                // tree 1: a -> (b | c)
                path(&[(a, true), (b, true)], 0, 0), // (a,0)(b,0) -> yes
                path(&[(a, true), (b, false)], 1, 0), // (a,0)(b,1) -> no
                path(&[(a, false), (c, true)], 1, 0), // (a,1)(c,0) -> no
                path(&[(a, false), (c, false)], 0, 0), // (a,1)(c,1) -> yes
                // tree 2: h -> (a | c)
                path(&[(h, true), (a, true)], 1, 1), // (h,0)(a,0) -> no
                path(&[(h, true), (a, false)], 0, 1), // (h,0)(a,1) -> yes
                path(&[(h, false), (c, true)], 1, 1), // (h,1)(c,0) -> no
                path(&[(h, false), (c, false)], 0, 1), // (h,1)(c,1) -> yes
            ],
            2,
        )
    }

    // NOTE on encoding: the figure writes pairs as (feature, edge-value)
    // where 0 is the yes/true edge; we encode the boolean directly, so
    // (a,0) in the figure is (a, true) here.

    #[test]
    fn figure3_clustering_shape() {
        let sorted = figure3_paths();
        let clustering = Clustering::greedy(&sorted, 2).expect("clusters");
        assert_eq!(clustering.total_paths(), 8);
        // The paper's example groups 8 paths into 3 clusters at threshold 2.
        assert_eq!(clustering.len(), 3, "{:#?}", clustering.clusters());
        // Under lexicographic order the first cluster is the figure's yellow
        // one: common pair (a, false) — the figure's (a,1) — with c and h
        // uncommon.
        assert_eq!(clustering.clusters()[0].common, vec![(0, false)]);
        assert_eq!(clustering.clusters()[0].uncommon, vec![2, 3]);
        // The second is the green cluster: common (a, true) = figure's
        // (a,0), uncommon b and h.
        assert_eq!(clustering.clusters()[1].common, vec![(0, true)]);
        assert_eq!(clustering.clusters()[1].uncommon, vec![1, 3]);
        // The third is the blue cluster: common (h, false) = figure's (h,1).
        assert_eq!(clustering.clusters()[2].common, vec![(3, false)]);
        assert_eq!(clustering.clusters()[2].uncommon, vec![2]);
    }

    #[test]
    fn figure3_table_sizes_match_paper() {
        // The paper: "now we only have ten lookup table entries and three
        // dictionary entries" vs the naïve 16.
        let clustering = Clustering::greedy(&figure3_paths(), 2).expect("clusters");
        assert_eq!(clustering.total_expanded_entries(), 10);
        assert_eq!(clustering.len(), 3);
    }

    #[test]
    fn threshold_zero_only_merges_identical_pair_sets() {
        let sorted = figure3_paths();
        let clustering = Clustering::greedy(&sorted, 0).expect("clusters");
        for cluster in clustering.clusters() {
            let first = &cluster.paths[0].pairs;
            assert!(cluster.paths.iter().all(|p| &p.pairs == first));
        }
    }

    #[test]
    fn huge_threshold_is_capped_by_address_width() {
        let sorted = figure3_paths();
        let clustering = Clustering::greedy(&sorted, 10_000).expect("clusters");
        for cluster in clustering.clusters() {
            assert!(cluster.address_bits() <= Clustering::MAX_ADDRESS_BITS);
        }
        assert_eq!(clustering.total_paths(), 8);
    }

    #[test]
    fn common_pairs_hold_in_every_member() {
        let clustering = Clustering::greedy(&figure3_paths(), 2).expect("clusters");
        for cluster in clustering.clusters() {
            for pair in &cluster.common {
                assert!(cluster.paths.iter().all(|p| p.pairs.contains(pair)));
            }
            // And uncommon predicates never appear in common.
            for pred in &cluster.uncommon {
                assert!(cluster.common.iter().all(|&(p, _)| p != *pred));
            }
        }
    }

    #[test]
    fn expanded_entries_counts_dont_cares() {
        // Single cluster: two paths over preds {0,1}, one path missing pred 1.
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(0, true)], 0, 0),
                path(&[(0, false), (1, true)], 1, 0),
            ],
            1,
        );
        let clustering = Clustering::greedy(&sorted, 8).expect("clusters");
        assert_eq!(clustering.len(), 1);
        let c = &clustering.clusters()[0];
        // No common pairs; uncommon = {0, 1}. Path 1 expands 2x, path 2 1x.
        assert!(c.common.is_empty());
        assert_eq!(c.expanded_entries(), 3);
    }

    #[test]
    fn empty_paths_error() {
        let sorted = SortedPaths::from_paths(vec![], 0);
        assert_eq!(
            Clustering::greedy(&sorted, 2).expect_err("empty"),
            BoltError::EmptyForest
        );
    }

    #[test]
    fn too_deep_single_path_errors() {
        let pairs: Vec<(PredId, bool)> = (0..30).map(|i| (i, true)).collect();
        let sorted = SortedPaths::from_paths(vec![path(&pairs, 0, 0)], 1);
        assert!(matches!(
            Clustering::greedy(&sorted, 2),
            Err(BoltError::AddressTooWide { bits: 30, .. })
        ));
    }
}
