//! Bolt: fast inference for random forests (Middleware '22 reproduction).
//!
//! Bolt transforms a fully trained random forest from an ensemble of decision
//! trees into an ensemble of *lookup tables*. The pipeline (Fig. 1 of the
//! paper) has three phases:
//!
//! 1. **Clustering & compression** (§4.1, [`cluster`], [`paths`]) — every
//!    root→leaf path of every tree is enumerated in predicate space, sorted
//!    lexicographically, merged forest-wide, and greedily clustered until a
//!    tunable threshold of uncommon feature-value pairs is reached. Each
//!    cluster becomes a dictionary entry whose *common* pairs form a
//!    branch-free membership key and whose *uncommon* predicates form the
//!    lookup-table address bits.
//! 2. **Parameter selection** (§4.2, [`tuning`]) — the clustering threshold
//!    and the dictionary/table partition counts are swept, trading dictionary
//!    scan time against table storage, and the best setting is selected for
//!    the given hardware.
//! 3. **Filtering** (§4.3–4.4, [`filter`], [`table`]) — per-entry bit-mask
//!    tests plus a bloom filter over the recombined table's keys discard
//!    irrelevant entries without memory accesses; surviving lookups are
//!    verified against the stored dictionary entry ID so false positives are
//!    rejected after at most one table access.
//!
//! The compiled artifact is a [`BoltForest`]: one [`Dictionary`], one
//! recombined [`RecombinedTable`], and the forest's
//! [`PredicateUniverse`](bolt_forest::PredicateUniverse). Inference is a
//! linear scan of the dictionary using word-wide masked compares followed by
//! at most one verified table access per matching entry — no pointer chasing
//! and no per-node branching. When many samples arrive together, the
//! batched engine ([`BoltForest::classify_batch_with`]) inverts the
//! scan loop entry-major, amortizing each entry's mask/key loads across the
//! whole batch, and [`BoltForest::classify_batch_sharded`] splits a batch
//! across threads with per-shard scratch.
//!
//! # Quick start
//!
//! ```
//! use bolt_core::{BoltConfig, BoltForest};
//! use bolt_forest::{Dataset, ForestConfig, RandomForest};
//!
//! // Train a small forest (stand-in for scikit-learn in the paper).
//! let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 6) as f32, (i % 5) as f32]).collect();
//! let labels: Vec<u32> = (0..60).map(|i| u32::from(i % 6 > 2)).collect();
//! let data = Dataset::from_rows(rows, labels, 2)?;
//! let forest = RandomForest::train(&data, &ForestConfig::new(5).with_max_height(3).with_seed(1));
//!
//! // Compile it to lookup tables and classify with one structure.
//! let bolt = BoltForest::compile(&forest, &BoltConfig::default())?;
//! for (sample, _) in data.iter() {
//!     assert_eq!(bolt.classify(sample), forest.predict(sample)); // safety (§4 fn. 1)
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid` so the one module that wraps `std::arch`
// SIMD intrinsics ([`simd`]) can opt in with a scoped `allow`; everything
// else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod cluster;
pub mod deep;
mod dictionary;
mod engine;
mod error;
pub mod explain;
pub mod filter;
pub mod layout;
pub mod oracle;
pub mod parallel;
pub mod paths;
pub mod regress;
#[allow(unsafe_code)]
pub mod simd;
pub mod table;
pub mod tuning;

pub use batch::BatchScratch;
pub use cluster::{Cluster, Clustering};
pub use deep::DeepBolt;
pub use dictionary::{DictEntry, DictView, Dictionary};
pub use engine::{BoltConfig, BoltForest, BoltScratch, ForestView, InferenceStats};
pub use error::BoltError;
pub use explain::Explanation;
pub use filter::{BloomFilter, BloomView};
pub use layout::{LayoutReport, SectionBytes};
pub use parallel::{PartitionPlan, PartitionedBolt};
pub use regress::{Aggregation, BoltRegressor};
pub use simd::Kernel;
pub use table::{RecombinedTable, TableCell, TableView, Votes, EMPTY_SLOT_ENTRY};
pub use tuning::{CostModel, ParameterSearch, Trial, TuningReport};
