//! The recombined lookup table (§4.1 end, §4.3, Figs. 5–6).
//!
//! After clustering, Bolt "hashes every entry in each of the lookup tables
//! ... into one big recombined lookup table", keyed by the feature-value
//! address *and the dictionary entry ID*. Recombination avoids per-cluster
//! pointers (and their branch misses) and makes false positives detectable:
//! every stored cell records the entry ID that owns it, and a lookup only
//! counts when the IDs match.
//!
//! This implementation stores the full `(entry ID, address)` key in each
//! cell, so false positives are rejected *exactly* (the paper's layout keeps
//! only `ID mod 256` and accepts a vanishing error probability; our
//! compressed layout accounting in [`crate::layout`] still budgets 1 byte
//! per stored ID exactly as §5 describes). Slots are resolved with linear
//! probing at ≤50% load, so a hit costs one cache-line-local probe in the
//! common case.

use crate::cluster::Clustering;
use crate::filter::{mix64, table_key};
use serde::{Deserialize, Serialize};

/// One vote stored in a table cell: the leaf class and the owning tree's
/// weight (1.0 for plain random forests).
pub type Vote = (u32, f64);

/// One occupied cell of the recombined table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableCell {
    /// Owning dictionary entry ID (full width; `id % 256` is what the
    /// paper's compressed layout stores).
    pub entry_id: u32,
    /// Feature-value address within the owning entry.
    pub address: u64,
    /// Votes of every path expanded into this cell (possibly from several
    /// trees — the `[yes, no]` cells of Fig. 3).
    pub votes: Vec<Vote>,
    /// For explanation workloads: per-contributing-path tested feature
    /// lists (predicate IDs). Empty unless explanations were requested.
    pub path_features: Vec<Vec<u32>>,
}

/// The single, conflict-free, open-addressed lookup table for the whole
/// forest.
///
/// # Examples
///
/// ```
/// use bolt_core::{cluster::Clustering, paths::SortedPaths, RecombinedTable};
/// use bolt_forest::{Dataset, ForestConfig, PredicateUniverse, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 6) as f32]).collect();
/// let labels: Vec<u32> = (0..60).map(|i| u32::from(i % 6 > 2)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(4).with_seed(3));
/// let universe = PredicateUniverse::from_forest(&forest);
/// let sorted = SortedPaths::from_forest(&forest, &universe);
/// let clustering = Clustering::greedy(&sorted, 4)?;
/// let table = RecombinedTable::build(&clustering, false);
/// assert!(table.n_cells() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecombinedTable {
    slots: Vec<Option<TableCell>>,
    /// `slots.len() - 1`; capacity is a power of two.
    index_mask: u64,
    n_cells: usize,
    /// Worst-case probes needed by any stored key (1 = perfect).
    max_probes: usize,
    /// Hot-path mirror of `slots`: per-slot `(entry_id, address)` key
    /// (empty slots use `EMPTY_KEY`), dense in one cache-friendly vector.
    slot_keys: Vec<(u32, u64)>,
    /// Per-slot `(offset, len)` into `votes_flat`.
    slot_votes: Vec<(u32, u32)>,
    /// Every cell's votes, concatenated in slot order.
    votes_flat: Vec<Vote>,
}

/// Sentinel key marking an empty slot in the hot-path arrays (no real entry
/// uses `u32::MAX`: entry IDs are dictionary indices).
const EMPTY_KEY: (u32, u64) = (u32::MAX, u64::MAX);

impl RecombinedTable {
    /// Builds the recombined table from a clustering. When
    /// `with_explanations` is set, each cell also records the tested
    /// features of its contributing paths (for salience tracking, §2.1).
    ///
    /// The capacity is the smallest power of two holding all occupied cells
    /// at ≤50% load — at least the paper's `2^ceil(log2 p)` bound.
    #[must_use]
    pub fn build(clustering: &Clustering, with_explanations: bool) -> Self {
        // Gather cells keyed by (entry, address).
        let mut cells: Vec<TableCell> = Vec::new();
        let mut index: std::collections::HashMap<(u32, u64), usize> =
            std::collections::HashMap::new();
        for (entry_id, cluster) in clustering.clusters().iter().enumerate() {
            let entry_id = entry_id as u32;
            for (address, path_idx) in cluster.expansions() {
                let path = &cluster.paths[path_idx];
                let slot = *index.entry((entry_id, address)).or_insert_with(|| {
                    cells.push(TableCell {
                        entry_id,
                        address,
                        votes: Vec::new(),
                        path_features: Vec::new(),
                    });
                    cells.len() - 1
                });
                cells[slot].votes.push((path.class, path.weight));
                if with_explanations {
                    cells[slot]
                        .path_features
                        .push(path.pairs.iter().map(|&(p, _)| p).collect());
                }
            }
        }

        let capacity = (cells.len() * 2).next_power_of_two().max(2);
        let mut slots: Vec<Option<TableCell>> = vec![None; capacity];
        let index_mask = (capacity - 1) as u64;
        let mut max_probes = 0usize;
        for cell in cells.iter().cloned() {
            let mut idx = table_key(cell.entry_id, cell.address) & index_mask;
            let mut probes = 1usize;
            while slots[idx as usize].is_some() {
                idx = (idx + 1) & index_mask;
                probes += 1;
            }
            slots[idx as usize] = Some(cell);
            max_probes = max_probes.max(probes);
        }
        // Dense hot-path mirror.
        let mut slot_keys = vec![EMPTY_KEY; capacity];
        let mut slot_votes = vec![(0u32, 0u32); capacity];
        let mut votes_flat = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            if let Some(cell) = slot {
                slot_keys[i] = (cell.entry_id, cell.address);
                slot_votes[i] = (votes_flat.len() as u32, cell.votes.len() as u32);
                votes_flat.extend_from_slice(&cell.votes);
            }
        }
        Self {
            slots,
            index_mask,
            n_cells: cells.len(),
            max_probes,
            slot_keys,
            slot_votes,
            votes_flat,
        }
    }

    /// Hot-path lookup: the votes stored for `(entry_id, address)`, or an
    /// empty slice for misses/false positives. Touches only the dense
    /// key/vote arrays (no per-cell heap indirection).
    #[must_use]
    pub fn lookup_votes(&self, entry_id: u32, address: u64) -> &[Vote] {
        let mut idx = table_key(entry_id, address) & self.index_mask;
        loop {
            let key = self.slot_keys[idx as usize];
            if key == (entry_id, address) {
                let (off, len) = self.slot_votes[idx as usize];
                return &self.votes_flat[off as usize..(off + len) as usize];
            }
            if key == EMPTY_KEY {
                return &[];
            }
            idx = (idx + 1) & self.index_mask;
        }
    }

    /// Looks up the cell for `(entry_id, address)`, verifying the stored key
    /// so false positives (Fig. 5) are rejected. Returns `None` when the
    /// input matched an entry's common features but no stored path.
    #[must_use]
    pub fn lookup(&self, entry_id: u32, address: u64) -> Option<&TableCell> {
        let mut idx = table_key(entry_id, address) & self.index_mask;
        loop {
            match &self.slots[idx as usize] {
                None => return None,
                Some(cell) if cell.entry_id == entry_id && cell.address == address => {
                    return Some(cell)
                }
                Some(_) => idx = (idx + 1) & self.index_mask,
            }
        }
    }

    /// The table slot index where a `(entry_id, address)` key resolves (or
    /// would resolve). Used by partitioned inference to decide which core
    /// owns the lookup.
    #[must_use]
    pub fn slot_of(&self, entry_id: u32, address: u64) -> usize {
        let mut idx = table_key(entry_id, address) & self.index_mask;
        loop {
            match &self.slots[idx as usize] {
                None => return idx as usize,
                Some(cell) if cell.entry_id == entry_id && cell.address == address => {
                    return idx as usize
                }
                Some(_) => idx = (idx + 1) & self.index_mask,
            }
        }
    }

    /// Total slot capacity (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied cells.
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Worst-case probe count over stored keys (1 means conflict-free).
    #[must_use]
    pub fn max_probes(&self) -> usize {
        self.max_probes
    }

    /// Iterates over the occupied cells.
    pub fn cells(&self) -> impl Iterator<Item = &TableCell> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// All `(entry ID, address)` keys, for bloom-filter construction.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.cells().map(|c| table_key(c.entry_id, c.address))
    }

    /// A pseudorandom non-member key probe, used by tests and benches to
    /// measure bloom false-positive behaviour.
    #[must_use]
    pub fn scramble(i: u64) -> u64 {
        mix64(i ^ 0x5EED_F00D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::SortedPaths;
    use bolt_forest::{BinaryPath, PredId};

    fn path(pairs: &[(PredId, bool)], class: u32, tree: u32) -> BinaryPath {
        // Real BinaryPaths from binarization are sorted by predicate ID.
        let mut pairs = pairs.to_vec();
        pairs.sort_unstable();
        BinaryPath {
            pairs,
            class,
            tree,
            weight: 1.0,
        }
    }

    fn figure3_clustering() -> Clustering {
        let (a, b, c, h) = (0, 1, 2, 3);
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(a, true), (b, true)], 0, 0),
                path(&[(a, true), (b, false)], 1, 0),
                path(&[(a, false), (c, true)], 1, 0),
                path(&[(a, false), (c, false)], 0, 0),
                path(&[(h, true), (a, true)], 1, 1),
                path(&[(h, true), (a, false)], 0, 1),
                path(&[(h, false), (c, true)], 1, 1),
                path(&[(h, false), (c, false)], 0, 1),
            ],
            2,
        );
        Clustering::greedy(&sorted, 2).expect("clusters")
    }

    #[test]
    fn figure3_table_has_ten_cells() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        assert_eq!(table.n_cells(), 10);
        assert!(table.capacity() >= 20);
        assert!(table.capacity().is_power_of_two());
    }

    #[test]
    fn every_expansion_is_retrievable() {
        let clustering = figure3_clustering();
        let table = RecombinedTable::build(&clustering, false);
        for (entry_id, cluster) in clustering.clusters().iter().enumerate() {
            for (address, path_idx) in cluster.expansions() {
                let cell = table
                    .lookup(entry_id as u32, address)
                    .expect("stored cell found");
                let path = &cluster.paths[path_idx];
                assert!(
                    cell.votes.contains(&(path.class, path.weight)),
                    "cell {cell:?} missing vote for {path:?}"
                );
            }
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        // Entry 99 stores nothing.
        assert!(table.lookup(99, 0).is_none());
        // Count stored addresses of entry 0; some address must be absent in
        // other entries.
        let total_probes = (0..1u32)
            .flat_map(|e| (0..16u64).map(move |a| (e, a)))
            .filter(|&(e, a)| table.lookup(e, a).is_some())
            .count();
        assert!(total_probes <= 16);
    }

    #[test]
    fn shared_cells_hold_multiple_votes() {
        // Fig. 3's green table cell (b=0, h=0) holds [yes, no]: two votes.
        let table = RecombinedTable::build(&figure3_clustering(), false);
        let multi = table.cells().filter(|c| c.votes.len() > 1).count();
        assert!(multi >= 2, "expected shared cells, got {multi}");
        // Total votes across cells equals total path expansions.
        let votes: usize = table.cells().map(|c| c.votes.len()).sum();
        let expansions: usize = figure3_clustering()
            .clusters()
            .iter()
            .map(|c| c.expansions().len())
            .sum();
        assert_eq!(votes, expansions);
    }

    #[test]
    fn explanations_record_path_features() {
        let table = RecombinedTable::build(&figure3_clustering(), true);
        for cell in table.cells() {
            assert_eq!(cell.path_features.len(), cell.votes.len());
            for features in &cell.path_features {
                assert!(!features.is_empty());
            }
        }
        // And without the flag nothing is stored.
        let bare = RecombinedTable::build(&figure3_clustering(), false);
        assert!(bare.cells().all(|c| c.path_features.is_empty()));
    }

    #[test]
    fn probing_terminates_and_verifies_keys() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        assert!(table.max_probes() >= 1);
        // A missing address under a *stored* entry id must return None, not
        // a colliding cell (false-positive rejection).
        let cellless = (0..64u64).filter(|&a| table.lookup(0, a).is_none()).count();
        assert!(cellless > 0, "entry 0 cannot cover all 64 addresses");
    }

    #[test]
    fn lookup_votes_agrees_with_lookup() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        for entry in 0..4u32 {
            for address in 0..8u64 {
                let via_cell = table
                    .lookup(entry, address)
                    .map(|c| c.votes.clone())
                    .unwrap_or_default();
                assert_eq!(table.lookup_votes(entry, address), via_cell.as_slice());
            }
        }
    }

    #[test]
    fn keys_are_unique() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        let keys: Vec<u64> = table.keys().collect();
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(keys.len(), distinct.len());
    }
}
