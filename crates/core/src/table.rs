//! The recombined lookup table (§4.1 end, §4.3, Figs. 5–6).
//!
//! After clustering, Bolt "hashes every entry in each of the lookup tables
//! ... into one big recombined lookup table", keyed by the feature-value
//! address *and the dictionary entry ID*. Recombination avoids per-cluster
//! pointers (and their branch misses) and makes false positives detectable:
//! every stored cell records the entry ID that owns it, and a lookup only
//! counts when the IDs match.
//!
//! This implementation stores the full `(entry ID, address)` key in each
//! cell, so false positives are rejected *exactly* (the paper's layout keeps
//! only `ID mod 256` and accepts a vanishing error probability; our
//! compressed layout accounting in [`crate::layout`] still budgets 1 byte
//! per stored ID exactly as §5 describes). Slots are resolved with linear
//! probing at ≤50% load, so a hit costs one cache-line-local probe in the
//! common case.

use crate::cluster::Clustering;
use crate::filter::{mix64, table_key};
use serde::{Deserialize, Serialize};

/// One vote stored in a table cell: the leaf class and the owning tree's
/// weight (1.0 for plain random forests).
pub type Vote = (u32, f64);

/// One occupied cell of the recombined table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableCell {
    /// Owning dictionary entry ID (full width; `id % 256` is what the
    /// paper's compressed layout stores).
    pub entry_id: u32,
    /// Feature-value address within the owning entry.
    pub address: u64,
    /// Votes of every path expanded into this cell (possibly from several
    /// trees — the `[yes, no]` cells of Fig. 3).
    pub votes: Vec<Vote>,
    /// For explanation workloads: per-contributing-path tested feature
    /// lists (predicate IDs). Empty unless explanations were requested.
    pub path_features: Vec<Vec<u32>>,
}

/// The single, conflict-free, open-addressed lookup table for the whole
/// forest.
///
/// # Examples
///
/// ```
/// use bolt_core::{cluster::Clustering, paths::SortedPaths, RecombinedTable};
/// use bolt_forest::{Dataset, ForestConfig, PredicateUniverse, RandomForest};
///
/// let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 6) as f32]).collect();
/// let labels: Vec<u32> = (0..60).map(|i| u32::from(i % 6 > 2)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(4).with_seed(3));
/// let universe = PredicateUniverse::from_forest(&forest);
/// let sorted = SortedPaths::from_forest(&forest, &universe);
/// let clustering = Clustering::greedy(&sorted, 4)?;
/// let table = RecombinedTable::build(&clustering, false);
/// assert!(table.n_cells() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecombinedTable {
    slots: Vec<Option<TableCell>>,
    /// `slots.len() - 1`; capacity is a power of two.
    index_mask: u64,
    n_cells: usize,
    /// Worst-case probes needed by any stored key (1 = perfect).
    max_probes: usize,
    /// Hot-path mirror of `slots`, split into primitive parallel arrays so
    /// a memory-mapped artifact can expose the identical layout borrowed
    /// from the file: per-slot owning entry ID ([`EMPTY_SLOT_ENTRY`] marks
    /// an empty slot).
    slot_entries: Vec<u32>,
    /// Per-slot feature-value address (0 for empty slots).
    slot_addrs: Vec<u64>,
    /// Monotone prefix offsets, `capacity + 1` long: slot `i`'s votes are
    /// `vote_classes[off[i]..off[i+1]]` / `vote_weights[..]`.
    vote_offsets: Vec<u32>,
    /// Every cell's vote classes, concatenated in slot order.
    vote_classes: Vec<u32>,
    /// Every cell's vote weights, parallel to `vote_classes`.
    vote_weights: Vec<f64>,
}

/// Sentinel entry ID marking an empty slot in the hot-path arrays (no real
/// entry uses `u32::MAX`: entry IDs are dictionary indices).
pub const EMPTY_SLOT_ENTRY: u32 = u32::MAX;

/// The votes stored in one table cell, as a pair of borrowed parallel
/// columns (classes and weights). This is what the hot-path lookup returns:
/// for an owned [`RecombinedTable`] the slices borrow its vectors, for a
/// mapped `BLT1` artifact they borrow the file bytes directly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Votes<'a> {
    classes: &'a [u32],
    weights: &'a [f64],
}

impl<'a> Votes<'a> {
    /// Builds a votes view over parallel class/weight columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns differ in length.
    #[must_use]
    pub fn new(classes: &'a [u32], weights: &'a [f64]) -> Self {
        assert_eq!(classes.len(), weights.len(), "vote columns must align");
        Self { classes, weights }
    }

    /// The empty vote set (misses and bloom rejects).
    #[must_use]
    pub fn empty() -> Votes<'static> {
        Votes {
            classes: &[],
            weights: &[],
        }
    }

    /// Number of votes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the cell holds no votes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The vote classes column.
    #[must_use]
    pub fn classes(&self) -> &'a [u32] {
        self.classes
    }

    /// The vote weights column.
    #[must_use]
    pub fn weights(&self) -> &'a [f64] {
        self.weights
    }

    /// Iterates `(class, weight)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.classes.iter().zip(self.weights).map(|(&c, &w)| (c, w))
    }

    /// Collects the votes into the owned pair form used by [`TableCell`].
    #[must_use]
    pub fn to_vec(&self) -> Vec<Vote> {
        self.iter().collect()
    }
}

/// A borrowed, storage-agnostic view of the table's hot-path arrays — the
/// shape every inference kernel probes, whether the arrays are owned
/// vectors or borrowed from a memory-mapped `BLT1` file.
///
/// Probe termination relies on the open-addressed invariant that at least
/// one slot is empty; [`RecombinedTable::build`] guarantees it (≤50% load)
/// and the artifact loader validates it before building a view over
/// untrusted bytes.
#[derive(Clone, Copy, Debug)]
pub struct TableView<'a> {
    index_mask: u64,
    slot_entries: &'a [u32],
    slot_addrs: &'a [u64],
    vote_offsets: &'a [u32],
    vote_classes: &'a [u32],
    vote_weights: &'a [f64],
}

impl<'a> TableView<'a> {
    /// Builds a view over raw hot-path arrays.
    ///
    /// # Panics
    ///
    /// Panics if the slice shapes are mutually inconsistent: the capacity
    /// (`slot_entries.len()`) must be a power of two equal to
    /// `index_mask + 1`, with `slot_addrs` parallel and `vote_offsets`
    /// one longer.
    #[must_use]
    pub fn new(
        index_mask: u64,
        slot_entries: &'a [u32],
        slot_addrs: &'a [u64],
        vote_offsets: &'a [u32],
        vote_classes: &'a [u32],
        vote_weights: &'a [f64],
    ) -> Self {
        let capacity = slot_entries.len();
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert_eq!(capacity as u64, index_mask + 1, "index mask shape");
        assert_eq!(slot_addrs.len(), capacity, "slot address shape");
        assert_eq!(vote_offsets.len(), capacity + 1, "vote offsets shape");
        assert_eq!(vote_classes.len(), vote_weights.len(), "vote columns");
        Self {
            index_mask,
            slot_entries,
            slot_addrs,
            vote_offsets,
            vote_classes,
            vote_weights,
        }
    }

    /// Total slot capacity (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slot_entries.len()
    }

    /// Per-slot owning entry IDs ([`EMPTY_SLOT_ENTRY`] marks empties).
    #[must_use]
    pub fn slot_entries(&self) -> &'a [u32] {
        self.slot_entries
    }

    /// Per-slot feature-value addresses.
    #[must_use]
    pub fn slot_addrs(&self) -> &'a [u64] {
        self.slot_addrs
    }

    /// Monotone vote prefix offsets (`capacity + 1` long).
    #[must_use]
    pub fn vote_offsets(&self) -> &'a [u32] {
        self.vote_offsets
    }

    /// All vote classes, concatenated in slot order.
    #[must_use]
    pub fn vote_classes(&self) -> &'a [u32] {
        self.vote_classes
    }

    /// All vote weights, parallel to [`Self::vote_classes`].
    #[must_use]
    pub fn vote_weights(&self) -> &'a [f64] {
        self.vote_weights
    }

    /// Hints the CPU to pull the home slot's line for `(entry_id,
    /// address)` toward L1 before [`Self::lookup`] probes it — issued as
    /// soon as the address is gathered, so the fetch overlaps the bloom
    /// check. Pure latency hiding: no side effects, no result changes.
    #[inline]
    pub fn prefetch(&self, entry_id: u32, address: u64) {
        let idx = (table_key(entry_id, address) & self.index_mask) as usize;
        crate::simd::prefetch(self.slot_entries, idx);
        crate::simd::prefetch(self.slot_addrs, idx);
    }

    /// Hot-path lookup: the votes stored for `(entry_id, address)`, empty
    /// for misses/false positives. Linear probing with exact key
    /// verification, touching only the dense primitive arrays.
    #[must_use]
    pub fn lookup(&self, entry_id: u32, address: u64) -> Votes<'a> {
        self.lookup_keyed(entry_id, address, table_key(entry_id, address))
    }

    /// [`Self::lookup`] with the table key already computed — the batched
    /// path hashes whole address vectors at once
    /// ([`crate::simd::fill_table_keys`]) and probes the bloom filter and
    /// this table off the same keys. `key` **must** equal
    /// `table_key(entry_id, address)`; results are identical to
    /// [`Self::lookup`] by construction.
    #[must_use]
    pub fn lookup_keyed(&self, entry_id: u32, address: u64, key: u64) -> Votes<'a> {
        debug_assert_eq!(key, table_key(entry_id, address));
        let mut idx = key & self.index_mask;
        loop {
            let i = idx as usize;
            let entry = self.slot_entries[i];
            if entry == entry_id && self.slot_addrs[i] == address {
                let (lo, hi) = (
                    self.vote_offsets[i] as usize,
                    self.vote_offsets[i + 1] as usize,
                );
                return Votes {
                    classes: &self.vote_classes[lo..hi],
                    weights: &self.vote_weights[lo..hi],
                };
            }
            if entry == EMPTY_SLOT_ENTRY {
                return Votes::empty();
            }
            idx = (idx + 1) & self.index_mask;
        }
    }
}

impl RecombinedTable {
    /// Builds the recombined table from a clustering. When
    /// `with_explanations` is set, each cell also records the tested
    /// features of its contributing paths (for salience tracking, §2.1).
    ///
    /// The capacity is the smallest power of two holding all occupied cells
    /// at ≤50% load — at least the paper's `2^ceil(log2 p)` bound.
    #[must_use]
    pub fn build(clustering: &Clustering, with_explanations: bool) -> Self {
        // Gather cells keyed by (entry, address).
        let mut cells: Vec<TableCell> = Vec::new();
        let mut index: std::collections::HashMap<(u32, u64), usize> =
            std::collections::HashMap::new();
        for (entry_id, cluster) in clustering.clusters().iter().enumerate() {
            let entry_id = entry_id as u32;
            for (address, path_idx) in cluster.expansions() {
                let path = &cluster.paths[path_idx];
                let slot = *index.entry((entry_id, address)).or_insert_with(|| {
                    cells.push(TableCell {
                        entry_id,
                        address,
                        votes: Vec::new(),
                        path_features: Vec::new(),
                    });
                    cells.len() - 1
                });
                cells[slot].votes.push((path.class, path.weight));
                if with_explanations {
                    cells[slot]
                        .path_features
                        .push(path.pairs.iter().map(|&(p, _)| p).collect());
                }
            }
        }

        let capacity = (cells.len() * 2).next_power_of_two().max(2);
        let mut slots: Vec<Option<TableCell>> = vec![None; capacity];
        let index_mask = (capacity - 1) as u64;
        let mut max_probes = 0usize;
        for cell in cells.iter().cloned() {
            let mut idx = table_key(cell.entry_id, cell.address) & index_mask;
            let mut probes = 1usize;
            while slots[idx as usize].is_some() {
                idx = (idx + 1) & index_mask;
                probes += 1;
            }
            slots[idx as usize] = Some(cell);
            max_probes = max_probes.max(probes);
        }
        // Dense hot-path mirror, split into primitive parallel arrays (the
        // exact section layout a BLT1 artifact stores and maps back).
        let mut slot_entries = vec![EMPTY_SLOT_ENTRY; capacity];
        let mut slot_addrs = vec![0u64; capacity];
        let mut vote_offsets = Vec::with_capacity(capacity + 1);
        let mut vote_classes = Vec::new();
        let mut vote_weights = Vec::new();
        vote_offsets.push(0u32);
        for (i, slot) in slots.iter().enumerate() {
            if let Some(cell) = slot {
                slot_entries[i] = cell.entry_id;
                slot_addrs[i] = cell.address;
                for &(class, weight) in &cell.votes {
                    vote_classes.push(class);
                    vote_weights.push(weight);
                }
            }
            vote_offsets.push(vote_classes.len() as u32);
        }
        Self {
            slots,
            index_mask,
            n_cells: cells.len(),
            max_probes,
            slot_entries,
            slot_addrs,
            vote_offsets,
            vote_classes,
            vote_weights,
        }
    }

    /// A borrowed [`TableView`] over the hot-path arrays — the shape the
    /// inference kernels probe, shared with memory-mapped artifacts.
    #[must_use]
    pub fn view(&self) -> TableView<'_> {
        TableView {
            index_mask: self.index_mask,
            slot_entries: &self.slot_entries,
            slot_addrs: &self.slot_addrs,
            vote_offsets: &self.vote_offsets,
            vote_classes: &self.vote_classes,
            vote_weights: &self.vote_weights,
        }
    }

    /// Hot-path lookup: the votes stored for `(entry_id, address)`, or an
    /// empty view for misses/false positives. Touches only the dense
    /// primitive arrays (no per-cell heap indirection).
    #[must_use]
    pub fn lookup_votes(&self, entry_id: u32, address: u64) -> Votes<'_> {
        self.view().lookup(entry_id, address)
    }

    /// Looks up the cell for `(entry_id, address)`, verifying the stored key
    /// so false positives (Fig. 5) are rejected. Returns `None` when the
    /// input matched an entry's common features but no stored path.
    #[must_use]
    pub fn lookup(&self, entry_id: u32, address: u64) -> Option<&TableCell> {
        let mut idx = table_key(entry_id, address) & self.index_mask;
        loop {
            match &self.slots[idx as usize] {
                None => return None,
                Some(cell) if cell.entry_id == entry_id && cell.address == address => {
                    return Some(cell)
                }
                Some(_) => idx = (idx + 1) & self.index_mask,
            }
        }
    }

    /// The table slot index where a `(entry_id, address)` key resolves (or
    /// would resolve). Used by partitioned inference to decide which core
    /// owns the lookup.
    #[must_use]
    pub fn slot_of(&self, entry_id: u32, address: u64) -> usize {
        let mut idx = table_key(entry_id, address) & self.index_mask;
        loop {
            match &self.slots[idx as usize] {
                None => return idx as usize,
                Some(cell) if cell.entry_id == entry_id && cell.address == address => {
                    return idx as usize
                }
                Some(_) => idx = (idx + 1) & self.index_mask,
            }
        }
    }

    /// Total slot capacity (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied cells.
    #[must_use]
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Worst-case probe count over stored keys (1 means conflict-free).
    #[must_use]
    pub fn max_probes(&self) -> usize {
        self.max_probes
    }

    /// Iterates over the occupied cells.
    pub fn cells(&self) -> impl Iterator<Item = &TableCell> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// All `(entry ID, address)` keys, for bloom-filter construction.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.cells().map(|c| table_key(c.entry_id, c.address))
    }

    /// A pseudorandom non-member key probe, used by tests and benches to
    /// measure bloom false-positive behaviour.
    #[must_use]
    pub fn scramble(i: u64) -> u64 {
        mix64(i ^ 0x5EED_F00D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::SortedPaths;
    use bolt_forest::{BinaryPath, PredId};

    fn path(pairs: &[(PredId, bool)], class: u32, tree: u32) -> BinaryPath {
        // Real BinaryPaths from binarization are sorted by predicate ID.
        let mut pairs = pairs.to_vec();
        pairs.sort_unstable();
        BinaryPath {
            pairs,
            class,
            tree,
            weight: 1.0,
        }
    }

    fn figure3_clustering() -> Clustering {
        let (a, b, c, h) = (0, 1, 2, 3);
        let sorted = SortedPaths::from_paths(
            vec![
                path(&[(a, true), (b, true)], 0, 0),
                path(&[(a, true), (b, false)], 1, 0),
                path(&[(a, false), (c, true)], 1, 0),
                path(&[(a, false), (c, false)], 0, 0),
                path(&[(h, true), (a, true)], 1, 1),
                path(&[(h, true), (a, false)], 0, 1),
                path(&[(h, false), (c, true)], 1, 1),
                path(&[(h, false), (c, false)], 0, 1),
            ],
            2,
        );
        Clustering::greedy(&sorted, 2).expect("clusters")
    }

    #[test]
    fn figure3_table_has_ten_cells() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        assert_eq!(table.n_cells(), 10);
        assert!(table.capacity() >= 20);
        assert!(table.capacity().is_power_of_two());
    }

    #[test]
    fn every_expansion_is_retrievable() {
        let clustering = figure3_clustering();
        let table = RecombinedTable::build(&clustering, false);
        for (entry_id, cluster) in clustering.clusters().iter().enumerate() {
            for (address, path_idx) in cluster.expansions() {
                let cell = table
                    .lookup(entry_id as u32, address)
                    .expect("stored cell found");
                let path = &cluster.paths[path_idx];
                assert!(
                    cell.votes.contains(&(path.class, path.weight)),
                    "cell {cell:?} missing vote for {path:?}"
                );
            }
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        // Entry 99 stores nothing.
        assert!(table.lookup(99, 0).is_none());
        // Count stored addresses of entry 0; some address must be absent in
        // other entries.
        let total_probes = (0..1u32)
            .flat_map(|e| (0..16u64).map(move |a| (e, a)))
            .filter(|&(e, a)| table.lookup(e, a).is_some())
            .count();
        assert!(total_probes <= 16);
    }

    #[test]
    fn shared_cells_hold_multiple_votes() {
        // Fig. 3's green table cell (b=0, h=0) holds [yes, no]: two votes.
        let table = RecombinedTable::build(&figure3_clustering(), false);
        let multi = table.cells().filter(|c| c.votes.len() > 1).count();
        assert!(multi >= 2, "expected shared cells, got {multi}");
        // Total votes across cells equals total path expansions.
        let votes: usize = table.cells().map(|c| c.votes.len()).sum();
        let expansions: usize = figure3_clustering()
            .clusters()
            .iter()
            .map(|c| c.expansions().len())
            .sum();
        assert_eq!(votes, expansions);
    }

    #[test]
    fn explanations_record_path_features() {
        let table = RecombinedTable::build(&figure3_clustering(), true);
        for cell in table.cells() {
            assert_eq!(cell.path_features.len(), cell.votes.len());
            for features in &cell.path_features {
                assert!(!features.is_empty());
            }
        }
        // And without the flag nothing is stored.
        let bare = RecombinedTable::build(&figure3_clustering(), false);
        assert!(bare.cells().all(|c| c.path_features.is_empty()));
    }

    #[test]
    fn probing_terminates_and_verifies_keys() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        assert!(table.max_probes() >= 1);
        // A missing address under a *stored* entry id must return None, not
        // a colliding cell (false-positive rejection).
        let cellless = (0..64u64).filter(|&a| table.lookup(0, a).is_none()).count();
        assert!(cellless > 0, "entry 0 cannot cover all 64 addresses");
    }

    #[test]
    fn lookup_votes_agrees_with_lookup() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        for entry in 0..4u32 {
            for address in 0..8u64 {
                let via_cell = table
                    .lookup(entry, address)
                    .map(|c| c.votes.clone())
                    .unwrap_or_default();
                assert_eq!(table.lookup_votes(entry, address).to_vec(), via_cell);
            }
        }
    }

    #[test]
    fn view_lookup_matches_owned_lookup() {
        let table = RecombinedTable::build(&figure3_clustering(), true);
        let view = table.view();
        assert_eq!(view.capacity(), table.capacity());
        for entry in 0..5u32 {
            for address in 0..8u64 {
                assert_eq!(
                    view.lookup(entry, address).to_vec(),
                    table.lookup_votes(entry, address).to_vec()
                );
            }
        }
        // The prefix offsets account for every stored vote exactly once.
        assert_eq!(
            *view.vote_offsets().last().expect("sentinel") as usize,
            view.vote_classes().len()
        );
    }

    #[test]
    fn keys_are_unique() {
        let table = RecombinedTable::build(&figure3_clustering(), false);
        let keys: Vec<u64> = table.keys().collect();
        let distinct: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(keys.len(), distinct.len());
    }
}
