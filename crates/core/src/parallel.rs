//! Partitioned parallel inference (§4.2, §4.5, Fig. 4).
//!
//! Bolt parallelizes a *single sample* by splitting its data structures: the
//! dictionary into `d` partitions and the lookup table into `t` partitions,
//! running on `d × t` cores. A core scans only its dictionary partition and
//! accepts only lookups that resolve into its table partition; for any
//! `(entry, address)` pair exactly one core owns both, so every vote is
//! counted exactly once and aggregation is a plain sum (§4.5's formal
//! argument).

use crate::engine::BoltForest;
use crate::filter::table_key;
use crate::tuning::CostModel;
use crate::BoltError;
use bolt_bitpack::Mask;
use std::sync::Arc;

/// A `d × t` split of the Bolt structures across cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PartitionPlan {
    /// Number of dictionary partitions (`d`).
    pub dict_parts: usize,
    /// Number of lookup-table partitions (`t`).
    pub table_parts: usize,
}

impl PartitionPlan {
    /// A plan using `d` dictionary and `t` table partitions.
    #[must_use]
    pub fn new(dict_parts: usize, table_parts: usize) -> Self {
        Self {
            dict_parts,
            table_parts,
        }
    }

    /// Total cores required (`d × t`).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.dict_parts * self.table_parts
    }

    /// All plans whose core product is exactly `cores`.
    #[must_use]
    pub fn plans_for_cores(cores: usize) -> Vec<Self> {
        (1..=cores)
            .filter(|d| cores.is_multiple_of(*d))
            .map(|d| Self::new(d, cores / d))
            .collect()
    }
}

impl Default for PartitionPlan {
    fn default() -> Self {
        Self::new(1, 1)
    }
}

/// Per-core work accounting for one inference, used by the latency model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreWork {
    /// Dictionary entries this core scanned.
    pub entries_scanned: usize,
    /// Entries that matched the input's common features.
    pub entries_matched: usize,
    /// Table lookups this core owned and performed.
    pub lookups_performed: usize,
    /// Matched lookups discarded because another core owns the slot.
    pub lookups_skipped: usize,
}

/// A Bolt forest split across cores according to a [`PartitionPlan`].
///
/// # Examples
///
/// ```
/// use bolt_core::{BoltConfig, BoltForest, PartitionPlan, PartitionedBolt};
/// use bolt_forest::{Dataset, ForestConfig, RandomForest};
/// use std::sync::Arc;
///
/// let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 6) as f32]).collect();
/// let labels: Vec<u32> = (0..60).map(|i| u32::from(i % 6 > 2)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let forest = RandomForest::train(&data, &ForestConfig::new(4).with_seed(2));
/// let bolt = Arc::new(BoltForest::compile(&forest, &BoltConfig::default())?);
/// let partitioned = PartitionedBolt::new(bolt, PartitionPlan::new(2, 2))?;
/// assert_eq!(partitioned.classify(&[3.0]), forest.predict(&[3.0]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct PartitionedBolt {
    bolt: Arc<BoltForest>,
    plan: PartitionPlan,
}

impl PartitionedBolt {
    /// Wraps a compiled forest with a partition plan.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::InvalidPartition`] if either partition count is
    /// zero or exceeds what the structures can usefully hold.
    pub fn new(bolt: Arc<BoltForest>, plan: PartitionPlan) -> Result<Self, BoltError> {
        if plan.dict_parts == 0 || plan.table_parts == 0 {
            return Err(BoltError::InvalidPartition {
                detail: "partition counts must be positive".into(),
            });
        }
        if plan.table_parts > bolt.table().capacity() {
            return Err(BoltError::InvalidPartition {
                detail: format!(
                    "{} table partitions exceed table capacity {}",
                    plan.table_parts,
                    bolt.table().capacity()
                ),
            });
        }
        Ok(Self { bolt, plan })
    }

    /// The partition plan.
    #[must_use]
    pub fn plan(&self) -> PartitionPlan {
        self.plan
    }

    /// The underlying compiled forest.
    #[must_use]
    pub fn bolt(&self) -> &BoltForest {
        &self.bolt
    }

    /// Which table partition owns a resolved slot index.
    fn table_part_of(&self, slot: usize) -> usize {
        let span = self.bolt.table().capacity().div_ceil(self.plan.table_parts);
        (slot / span).min(self.plan.table_parts - 1)
    }

    /// Runs one core's share of the inference, returning its per-class votes
    /// and work counters. Cores are numbered `dict_part * t + table_part`.
    #[must_use]
    pub fn core_votes(&self, core: usize, bits: &Mask) -> (Vec<f64>, CoreWork) {
        let (dict_part, table_part) = (core / self.plan.table_parts, core % self.plan.table_parts);
        let mut votes = vec![0.0f64; self.bolt.n_classes()];
        let mut work = CoreWork::default();
        // Constant votes are counted once, by core 0.
        if core == 0 {
            for &(class, weight) in self.bolt.constant_votes() {
                votes[class as usize] += weight;
            }
        }
        let dict = self.bolt.dictionary();
        let table = self.bolt.table();
        for entry in dict.entries() {
            // Dictionary partitioning: round-robin by entry id.
            if entry.id as usize % self.plan.dict_parts != dict_part {
                continue;
            }
            work.entries_scanned += 1;
            if !dict.matches(entry.id, bits) {
                continue;
            }
            work.entries_matched += 1;
            let address = entry.address_of(bits);
            if let Some(bloom) = self.bolt.bloom() {
                if !bloom.contains(table_key(entry.id, address)) {
                    continue;
                }
            }
            // Table partitioning: only the owning core performs the lookup
            // ("if a dictionary entry on a core leads to a portion of the
            //  lookup table not in said core, the entry is ignored", §4.5).
            let slot = table.slot_of(entry.id, address);
            if self.table_part_of(slot) != table_part {
                work.lookups_skipped += 1;
                continue;
            }
            work.lookups_performed += 1;
            if let Some(cell) = table.lookup(entry.id, address) {
                for &(class, weight) in &cell.votes {
                    votes[class as usize] += weight;
                }
            }
        }
        (votes, work)
    }

    /// Aggregated votes across all cores (sequential execution of each
    /// core's share; used by tests and by the latency model).
    #[must_use]
    pub fn votes(&self, bits: &Mask) -> Vec<f64> {
        let mut votes = vec![0.0f64; self.bolt.n_classes()];
        for core in 0..self.plan.cores() {
            let (core_votes, _) = self.core_votes(core, bits);
            for (v, c) in votes.iter_mut().zip(core_votes) {
                *v += c;
            }
        }
        votes
    }

    /// Classifies a sample by running every core's share on real threads and
    /// aggregating (Fig. 7's workflow). On a single-CPU host this is still
    /// correct, just not faster.
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the universe's feature count.
    #[must_use]
    pub fn classify(&self, sample: &[f32]) -> u32 {
        let bits = self.bolt.encode(sample);
        let cores = self.plan.cores();
        let votes = if cores == 1 {
            self.core_votes(0, &bits).0
        } else {
            let mut all = vec![Vec::new(); cores];
            crossbeam::scope(|scope| {
                let handles: Vec<_> = (0..cores)
                    .map(|core| {
                        let bits = &bits;
                        scope.spawn(move |_| self.core_votes(core, bits).0)
                    })
                    .collect();
                for (core, handle) in handles.into_iter().enumerate() {
                    all[core] = handle.join().expect("core thread panicked");
                }
            })
            .expect("crossbeam scope");
            let mut votes = vec![0.0f64; self.bolt.n_classes()];
            for core_votes in all {
                for (v, c) in votes.iter_mut().zip(core_votes) {
                    *v += c;
                }
            }
            votes
        };
        let mut best = 0usize;
        for (i, &v) in votes.iter().enumerate().skip(1) {
            if v > votes[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Per-core work for one input, core-major order.
    #[must_use]
    pub fn work_profile(&self, bits: &Mask) -> Vec<CoreWork> {
        (0..self.plan.cores())
            .map(|core| self.core_votes(core, bits).1)
            .collect()
    }

    /// Classifies a batch of samples with sample-level parallelism: the
    /// batch is split across `plan.cores()` worker threads, each running
    /// the ordinary single-core engine (§3: Bolt "can still do the previous
    /// two parallelization methods" — across samples and across trees —
    /// besides splitting a single sample).
    ///
    /// # Panics
    ///
    /// Panics if any sample is shorter than the universe's feature count.
    #[must_use]
    pub fn classify_batch(&self, samples: &[&[f32]]) -> Vec<u32> {
        let workers = self.plan.cores().max(1).min(samples.len().max(1));
        if workers <= 1 {
            let mut scratch = self.bolt.scratch();
            return samples
                .iter()
                .map(|s| self.bolt.classify_with(s, &mut scratch))
                .collect();
        }
        let chunk = samples.len().div_ceil(workers);
        let mut out = vec![0u32; samples.len()];
        crossbeam::scope(|scope| {
            for (chunk_samples, chunk_out) in samples.chunks(chunk).zip(out.chunks_mut(chunk)) {
                let bolt = &self.bolt;
                scope.spawn(move |_| {
                    let mut scratch = bolt.scratch();
                    for (s, o) in chunk_samples.iter().zip(chunk_out.iter_mut()) {
                        *o = bolt.classify_with(s, &mut scratch);
                    }
                });
            }
        })
        .expect("crossbeam scope");
        out
    }

    /// Models the single-sample latency of this plan on the given hardware:
    /// the slowest core's scan+lookup time plus the aggregation overhead
    /// that grows with core count (§4.2: "the overhead of aggregating
    /// results must be considered").
    #[must_use]
    pub fn estimate_latency_ns(&self, bits: &Mask, model: &CostModel) -> f64 {
        let table_bytes_per_part =
            (self.bolt.table().capacity() * 16).div_ceil(self.plan.table_parts);
        let per_core: Vec<f64> = self
            .work_profile(bits)
            .iter()
            .map(|work| {
                model.scan_cost_ns(work.entries_scanned, self.bolt.dictionary().stride())
                    + work.lookups_performed as f64 * model.lookup_cost_ns(table_bytes_per_part)
            })
            .collect();
        let slowest = per_core.iter().copied().fold(0.0f64, f64::max);
        slowest + model.aggregation_cost_ns(self.plan.cores())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoltConfig;
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn fixture() -> (Dataset, RandomForest, Arc<BoltForest>) {
        let rows: Vec<Vec<f32>> = (0..120)
            .map(|i| vec![(i % 8) as f32, (i % 5) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 3.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(9).with_max_height(4).with_seed(31),
        );
        let bolt =
            Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
        (data, forest, bolt)
    }

    #[test]
    fn every_plan_is_equivalent_to_unpartitioned() {
        let (data, forest, bolt) = fixture();
        for cores in [1, 2, 4, 8] {
            for plan in PartitionPlan::plans_for_cores(cores) {
                // Tiny fixtures can have fewer table slots than partitions.
                let Ok(partitioned) = PartitionedBolt::new(Arc::clone(&bolt), plan) else {
                    continue;
                };
                for (sample, _) in data.iter().take(30) {
                    assert_eq!(
                        partitioned.classify(sample),
                        forest.predict(sample),
                        "plan {plan:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn votes_are_partition_invariant() {
        let (data, _, bolt) = fixture();
        let baseline =
            PartitionedBolt::new(Arc::clone(&bolt), PartitionPlan::new(1, 1)).expect("valid plan");
        let split =
            PartitionedBolt::new(Arc::clone(&bolt), PartitionPlan::new(3, 2)).expect("valid plan");
        for (sample, _) in data.iter().take(25) {
            let bits = bolt.encode(sample);
            assert_eq!(baseline.votes(&bits), split.votes(&bits));
        }
    }

    #[test]
    fn each_lookup_owned_by_exactly_one_core() {
        let (data, _, bolt) = fixture();
        let plan = PartitionPlan::new(2, 3);
        let partitioned = PartitionedBolt::new(Arc::clone(&bolt), plan).expect("valid plan");
        for (sample, _) in data.iter().take(20) {
            let bits = bolt.encode(sample);
            let work = partitioned.work_profile(&bits);
            let performed: usize = work.iter().map(|w| w.lookups_performed).sum();
            let (_, stats) = bolt.votes_with_stats(&bits);
            assert_eq!(performed, stats.table_hits + stats.table_misses);
        }
    }

    #[test]
    fn dict_partitions_split_the_scan() {
        let (data, _, bolt) = fixture();
        let plan = PartitionPlan::new(4, 1);
        let partitioned = PartitionedBolt::new(Arc::clone(&bolt), plan).expect("valid plan");
        let bits = bolt.encode(data.sample(0));
        let work = partitioned.work_profile(&bits);
        let scanned: usize = work.iter().map(|w| w.entries_scanned).sum();
        assert_eq!(scanned, bolt.dictionary().len());
        let max_scan = work.iter().map(|w| w.entries_scanned).max().unwrap_or(0);
        assert!(max_scan <= bolt.dictionary().len().div_ceil(4));
    }

    #[test]
    fn plans_for_cores_enumerates_divisors() {
        let plans = PartitionPlan::plans_for_cores(12);
        assert_eq!(plans.len(), 6); // 1x12, 2x6, 3x4, 4x3, 6x2, 12x1
        assert!(plans.iter().all(|p| p.cores() == 12));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let (_, _, bolt) = fixture();
        assert!(PartitionedBolt::new(Arc::clone(&bolt), PartitionPlan::new(0, 1)).is_err());
        let too_many_tables = bolt.table().capacity() + 1;
        assert!(
            PartitionedBolt::new(Arc::clone(&bolt), PartitionPlan::new(1, too_many_tables))
                .is_err()
        );
    }

    #[test]
    fn batch_parallelism_matches_sequential() {
        let (data, forest, bolt) = fixture();
        let partitioned =
            PartitionedBolt::new(Arc::clone(&bolt), PartitionPlan::new(2, 2)).expect("valid plan");
        let samples: Vec<&[f32]> = (0..data.len()).map(|i| data.sample(i)).collect();
        let batched = partitioned.classify_batch(&samples);
        for (i, &class) in batched.iter().enumerate() {
            assert_eq!(class, forest.predict(samples[i]));
        }
        // Degenerate cases.
        assert!(partitioned.classify_batch(&[]).is_empty());
        assert_eq!(
            partitioned.classify_batch(&samples[..1]),
            vec![forest.predict(samples[0])]
        );
    }

    #[test]
    fn constant_votes_counted_exactly_once_across_cores() {
        use bolt_forest::{DecisionTree, NodeKind};
        // One single-leaf tree (constant vote) + one real split tree.
        let stump = DecisionTree::from_nodes(vec![NodeKind::Leaf { class: 1 }], 1, 2);
        let split = DecisionTree::from_nodes(
            vec![
                NodeKind::Split {
                    feature: 0,
                    threshold: 2.0,
                    left: 1,
                    right: 2,
                },
                NodeKind::Leaf { class: 0 },
                NodeKind::Leaf { class: 1 },
            ],
            1,
            2,
        );
        let forest = RandomForest::from_trees(vec![stump, split]).expect("forest");
        let bolt =
            Arc::new(BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"));
        let partitioned =
            PartitionedBolt::new(Arc::clone(&bolt), PartitionPlan::new(2, 2)).expect("valid plan");
        let bits = bolt.encode(&[0.0]);
        let votes = partitioned.votes(&bits);
        // Exactly 2 votes total: one constant, one looked up.
        assert_eq!(votes.iter().sum::<f64>(), 2.0);
        assert_eq!(partitioned.classify(&[0.0]), forest.predict(&[0.0]));
    }

    #[test]
    fn latency_model_penalizes_excessive_cores() {
        let (data, _, bolt) = fixture();
        let model = CostModel::default();
        let bits = bolt.encode(data.sample(0));
        let small = PartitionedBolt::new(Arc::clone(&bolt), PartitionPlan::new(1, 1))
            .expect("valid")
            .estimate_latency_ns(&bits, &model);
        let huge = PartitionedBolt::new(Arc::clone(&bolt), PartitionPlan::new(16, 1))
            .expect("valid")
            .estimate_latency_ns(&bits, &model);
        // With a tiny dictionary, 16-way splitting pays aggregation overhead
        // for nothing (the paper's Fig. 13A knee).
        assert!(huge > small * 0.5, "model should include aggregation cost");
    }
}
