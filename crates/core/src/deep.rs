//! Deep forests compiled layer-by-layer (§4.6, §5, Fig. 15).
//!
//! "We implemented multi-layer deep forests in Bolt. We compress each layer
//! in isolation, creating a lookup table and a dictionary. Since the output
//! of latter layers depends on previous layers, the dictionaries can be
//! loaded sequentially. Features passed from previous layers are appended to
//! input data."

use crate::engine::{BoltConfig, BoltForest};
use crate::BoltError;
use bolt_forest::DeepForest;

/// A deep forest where every layer has been compiled to Bolt structures.
///
/// # Examples
///
/// ```
/// use bolt_core::{BoltConfig, DeepBolt};
/// use bolt_forest::{Dataset, DeepForest, DeepForestConfig, ForestConfig};
///
/// let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 6) as f32]).collect();
/// let labels: Vec<u32> = (0..60).map(|i| u32::from(i % 6 > 2)).collect();
/// let data = Dataset::from_rows(rows, labels, 2)?;
/// let cfg = DeepForestConfig::two_layers(ForestConfig::new(3).with_max_height(3));
/// let deep = DeepForest::train(&data, &cfg)?;
/// let compiled = DeepBolt::compile(&deep, &BoltConfig::default())?;
/// assert_eq!(compiled.classify(&[3.0]), deep.predict(&[3.0]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct DeepBolt {
    layers: Vec<BoltForest>,
    n_features: usize,
    n_classes: usize,
}

impl DeepBolt {
    /// Compiles every layer of a trained deep forest in isolation.
    ///
    /// # Errors
    ///
    /// Propagates any [`BoltError`] from compiling a layer.
    pub fn compile(deep: &DeepForest, config: &BoltConfig) -> Result<Self, BoltError> {
        let layers = deep
            .layers()
            .iter()
            .map(|layer| BoltForest::compile(layer, config))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            layers,
            n_features: deep.n_features(),
            n_classes: deep.n_classes(),
        })
    }

    /// The compiled layers, first layer first.
    #[must_use]
    pub fn layers(&self) -> &[BoltForest] {
        &self.layers
    }

    /// Number of layers.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of raw input features (before augmentation).
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Runs all layers, appending each layer's class-probability vector to
    /// the input of the next, and returns the final class.
    ///
    /// Bit-exact with [`DeepForest::predict`] because each compiled layer's
    /// vote fractions equal the original layer's (the safety property
    /// applied layer by layer).
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the raw feature count.
    #[must_use]
    pub fn classify(&self, sample: &[f32]) -> u32 {
        let mut augmented = sample[..self.n_features].to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            if i + 1 == self.layers.len() {
                return layer.classify(&augmented);
            }
            let proba = layer.predict_proba(&augmented);
            augmented.extend_from_slice(&proba);
        }
        unreachable!("compile guarantees at least one layer")
    }

    /// Fraction of `data` classified correctly.
    #[must_use]
    pub fn accuracy(&self, data: &bolt_forest::Dataset) -> f64 {
        let correct = data
            .iter()
            .filter(|(sample, label)| self.classify(sample) == *label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{Dataset, DeepForestConfig, ForestConfig};

    fn fixture() -> (Dataset, DeepForest) {
        let rows: Vec<Vec<f32>> = (0..160)
            .map(|i| vec![(i % 8) as f32, ((i / 8) % 5) as f32, ((i * 3) % 4) as f32])
            .collect();
        let labels: Vec<u32> = rows
            .iter()
            .map(|r| u32::from((r[0] as u32 + r[1] as u32).is_multiple_of(2)))
            .collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let cfg =
            DeepForestConfig::two_layers(ForestConfig::new(5).with_max_height(4).with_seed(23));
        let deep = DeepForest::train(&data, &cfg).expect("trains");
        (data, deep)
    }

    #[test]
    fn layerwise_equivalence() {
        let (data, deep) = fixture();
        let compiled = DeepBolt::compile(&deep, &BoltConfig::default()).expect("compiles");
        assert_eq!(compiled.n_layers(), 2);
        for (sample, _) in data.iter() {
            assert_eq!(compiled.classify(sample), deep.predict(sample));
        }
    }

    #[test]
    fn equivalence_on_unseen_inputs() {
        let (_, deep) = fixture();
        let compiled = DeepBolt::compile(&deep, &BoltConfig::default()).expect("compiles");
        for i in 0..100 {
            let sample = vec![i as f32 * 0.71 - 5.0, i as f32 * 0.29, -(i as f32) * 0.4];
            assert_eq!(
                compiled.classify(&sample),
                deep.predict(&sample),
                "sample {i}"
            );
        }
    }

    #[test]
    fn accuracy_matches_original() {
        let (data, deep) = fixture();
        let compiled = DeepBolt::compile(&deep, &BoltConfig::default()).expect("compiles");
        assert_eq!(compiled.accuracy(&data), deep.accuracy(&data));
    }

    #[test]
    fn three_layer_stack_stays_equivalent() {
        let (data, _) = fixture();
        let base = ForestConfig::new(3).with_max_height(3).with_seed(41);
        let mut second = base.clone();
        second.seed = 42;
        let mut third = base.clone();
        third.seed = 43;
        let cfg = DeepForestConfig {
            layers: vec![base, second, third],
        };
        let deep = DeepForest::train(&data, &cfg).expect("trains");
        let compiled = DeepBolt::compile(&deep, &BoltConfig::default()).expect("compiles");
        assert_eq!(compiled.n_layers(), 3);
        for (sample, _) in data.iter().take(60) {
            assert_eq!(compiled.classify(sample), deep.predict(sample));
        }
    }

    #[test]
    fn second_layer_universe_covers_appended_features() {
        let (_, deep) = fixture();
        let compiled = DeepBolt::compile(&deep, &BoltConfig::default()).expect("compiles");
        // Layer 2 consumes raw + n_classes features.
        assert_eq!(
            compiled.layers()[1].universe().n_features(),
            compiled.n_features() + compiled.n_classes()
        );
    }
}
