//! Regression forests compiled to lookup tables.
//!
//! Bolt's machinery is output-agnostic: a regression path is just a path
//! whose "vote weight" is its leaf value (see
//! [`bolt_forest::enumerate_regression_paths`]). The compiled regressor
//! scans the same dictionary, performs the same verified lookups, and
//! aggregates with the Fig. 7 service's `mean(results)` instead of a vote.

use crate::cluster::Clustering;
use crate::dictionary::Dictionary;
use crate::engine::{BoltConfig, ForestView};
use crate::filter::BloomFilter;
use crate::paths::SortedPaths;
use crate::table::RecombinedTable;
use crate::BoltError;
use bolt_bitpack::Mask;
use bolt_forest::{GradientBoostedRegressor, PredicateUniverse, RegressionForest};
use serde::{Deserialize, Serialize};

/// How matched leaf values combine into a prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Bagged forests: the mean of per-tree leaf values (Fig. 7's
    /// `mean(results)`).
    Mean,
    /// Boosted ensembles: `base + Σ (weighted leaf values)` — the paper's
    /// "adding the corresponding tree weight to each path" (§5).
    Sum,
}

/// A regression forest compiled into Bolt structures.
///
/// # Examples
///
/// ```
/// use bolt_core::{BoltConfig, BoltRegressor};
/// use bolt_forest::{RegressionConfig, RegressionDataset, RegressionForest};
///
/// let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i % 6) as f32]).collect();
/// let targets: Vec<f32> = rows.iter().map(|r| r[0] * 2.0).collect();
/// let data = RegressionDataset::from_rows(rows, targets)?;
/// let forest = RegressionForest::train(&data, &RegressionConfig::new(4).with_seed(1));
/// let bolt = BoltRegressor::compile(&forest, &BoltConfig::default())?;
/// let (y_bolt, y_forest) = (bolt.predict(&[3.0]), forest.predict(&[3.0]));
/// assert!((y_bolt - y_forest).abs() < 1e-4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoltRegressor {
    universe: PredicateUniverse,
    dictionary: Dictionary,
    table: RecombinedTable,
    bloom: Option<BloomFilter>,
    /// Leaf values of single-leaf trees, always added to the sum.
    constant_sum: f64,
    /// Constant offset added before aggregation (a GBM's base score).
    base: f64,
    aggregation: Aggregation,
    n_trees: usize,
}

impl BoltRegressor {
    /// Compiles a trained regression forest.
    ///
    /// # Errors
    ///
    /// Returns [`BoltError::EmptyForest`] or [`BoltError::AddressTooWide`]
    /// under the same contract as
    /// [`BoltForest::compile`](crate::BoltForest::compile).
    pub fn compile(forest: &RegressionForest, config: &BoltConfig) -> Result<Self, BoltError> {
        let universe = forest.universe();
        let paths = bolt_forest::enumerate_regression_paths(forest, &universe);
        Self::from_paths(
            universe,
            paths,
            0.0,
            Aggregation::Mean,
            forest.n_trees(),
            config,
        )
    }

    /// Compiles a gradient-boosted regressor: paths carry
    /// `learning_rate x leaf value` and aggregation is base + sum.
    ///
    /// # Errors
    ///
    /// Same contract as [`BoltRegressor::compile`].
    pub fn compile_boosted(
        model: &GradientBoostedRegressor,
        config: &BoltConfig,
    ) -> Result<Self, BoltError> {
        let universe = model.universe();
        let paths = model.enumerate_paths(&universe);
        Self::from_paths(
            universe,
            paths,
            model.base(),
            Aggregation::Sum,
            model.n_trees(),
            config,
        )
    }

    fn from_paths(
        universe: PredicateUniverse,
        paths: Vec<bolt_forest::BinaryPath>,
        base: f64,
        aggregation: Aggregation,
        n_trees: usize,
        config: &BoltConfig,
    ) -> Result<Self, BoltError> {
        if paths.is_empty() {
            return Err(BoltError::EmptyForest);
        }
        let (constant, real): (Vec<_>, Vec<_>) =
            paths.into_iter().partition(|p| p.pairs.is_empty());
        let constant_sum = constant.iter().map(|p| p.weight).sum();
        let (dictionary, table) = if real.is_empty() {
            let empty = Clustering::from_clusters(Vec::new(), config.cluster_threshold);
            (
                Dictionary::from_clustering(&empty, universe.len()),
                RecombinedTable::build(&empty, false),
            )
        } else {
            let sorted = SortedPaths::from_paths(real, n_trees);
            let clustering = Clustering::greedy(&sorted, config.cluster_threshold)?;
            (
                Dictionary::from_clustering(&clustering, universe.len()),
                RecombinedTable::build(&clustering, false),
            )
        };
        let bloom = (config.bloom_bits_per_key > 0)
            .then(|| BloomFilter::from_keys(table.keys(), config.bloom_bits_per_key));
        Ok(Self {
            universe,
            dictionary,
            table,
            bloom,
            constant_sum,
            base,
            aggregation,
            n_trees,
        })
    }

    /// Encodes a raw sample into its predicate mask.
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the universe's feature count.
    #[must_use]
    pub fn encode(&self, sample: &[f32]) -> Mask {
        self.universe.evaluate(sample)
    }

    /// A borrowed [`ForestView`] over the inference structures (regressors
    /// carry no per-class votes, so only the weight-sum scan applies).
    #[must_use]
    pub fn view(&self) -> ForestView<'_> {
        ForestView::new(
            self.dictionary.view(),
            self.table.view(),
            self.bloom.as_ref().map(BloomFilter::view),
            &[],
            0,
        )
    }

    /// Predicts from an encoded input: the mean of matched leaf values
    /// (`mean(results)`, Fig. 7).
    #[must_use]
    pub fn predict_bits(&self, bits: &Mask) -> f32 {
        let sum = self.view().accumulate_weights(bits, self.constant_sum);
        match self.aggregation {
            Aggregation::Mean => (sum / self.n_trees as f64) as f32,
            Aggregation::Sum => (self.base + sum) as f32,
        }
    }

    /// Predicts one raw sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is shorter than the universe's feature count.
    #[must_use]
    pub fn predict(&self, sample: &[f32]) -> f32 {
        self.predict_bits(&self.encode(sample))
    }

    /// Mean squared error over a regression dataset.
    #[must_use]
    pub fn mse(&self, data: &bolt_forest::RegressionDataset) -> f64 {
        data.iter()
            .map(|(sample, target)| {
                let d = f64::from(self.predict(sample)) - f64::from(target);
                d * d
            })
            .sum::<f64>()
            / data.len() as f64
    }

    /// Number of dictionary entries.
    #[must_use]
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The recombined table.
    #[must_use]
    pub fn table(&self) -> &RecombinedTable {
        &self.table
    }

    /// The predicate universe used for input encoding.
    #[must_use]
    pub fn universe(&self) -> &PredicateUniverse {
        &self.universe
    }

    /// The bloom filter, if enabled.
    #[must_use]
    pub fn bloom(&self) -> Option<&BloomFilter> {
        self.bloom.as_ref()
    }

    /// Leaf-value sum of single-leaf trees (always added to the scan sum).
    #[must_use]
    pub fn constant_sum(&self) -> f64 {
        self.constant_sum
    }

    /// Constant offset added before aggregation (a GBM's base score).
    #[must_use]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// How matched leaf values combine into a prediction.
    #[must_use]
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Number of source trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Restores derived structures after deserialization: the predicate
    /// universe's lookup index and the dictionary's entry-blocked SIMD
    /// mirror.
    pub fn rebuild(&mut self) {
        self.universe.rebuild_index();
        self.dictionary.rebuild_blocked();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_forest::{RegressionConfig, RegressionDataset};

    fn dataset(seed: u64) -> RegressionDataset {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 80) as f32 / 8.0
        };
        let rows: Vec<Vec<f32>> = (0..250).map(|_| vec![next(), next(), next()]).collect();
        let targets: Vec<f32> = rows
            .iter()
            .map(|r| r[0] * 3.0 - r[1] + r[2] * 0.5)
            .collect();
        RegressionDataset::from_rows(rows, targets).expect("valid")
    }

    #[test]
    fn equivalent_to_forest_within_float_tolerance() {
        let data = dataset(1);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(8).with_max_height(5).with_seed(4),
        );
        let bolt = BoltRegressor::compile(&forest, &BoltConfig::default()).expect("compiles");
        for (sample, _) in data.iter() {
            let (a, b) = (bolt.predict(sample), forest.predict(sample));
            assert!(
                (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                "bolt {a} vs forest {b}"
            );
        }
    }

    #[test]
    fn equivalent_on_unseen_inputs() {
        let data = dataset(2);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(5).with_max_height(4).with_seed(6),
        );
        let bolt = BoltRegressor::compile(&forest, &BoltConfig::default()).expect("compiles");
        for i in 0..100 {
            let sample = vec![i as f32 * 0.17 - 4.0, i as f32 * 0.61, -(i as f32) * 0.4];
            let (a, b) = (bolt.predict(&sample), forest.predict(&sample));
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn thresholds_do_not_change_predictions() {
        let data = dataset(3);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(6).with_max_height(4).with_seed(2),
        );
        let low = BoltRegressor::compile(&forest, &BoltConfig::default().with_cluster_threshold(0))
            .expect("compiles");
        let high =
            BoltRegressor::compile(&forest, &BoltConfig::default().with_cluster_threshold(12))
                .expect("compiles");
        for (sample, _) in data.iter().take(50) {
            assert!((low.predict(sample) - high.predict(sample)).abs() < 1e-4);
        }
    }

    #[test]
    fn mse_matches_forest_mse() {
        let data = dataset(4);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(6).with_max_height(5).with_seed(8),
        );
        let bolt = BoltRegressor::compile(&forest, &BoltConfig::default()).expect("compiles");
        let (a, b) = (bolt.mse(&data), forest.mse(&data));
        assert!(
            (a - b).abs() < 1e-3 * (1.0 + b),
            "bolt mse {a} vs forest {b}"
        );
    }

    #[test]
    fn serializes_and_rebuilds() {
        let data = dataset(5);
        let forest = RegressionForest::train(
            &data,
            &RegressionConfig::new(4).with_max_height(4).with_seed(3),
        );
        let bolt = BoltRegressor::compile(&forest, &BoltConfig::default()).expect("compiles");
        let json = serde_json::to_string(&bolt).expect("serializes");
        let mut restored: BoltRegressor = serde_json::from_str(&json).expect("deserializes");
        restored.rebuild();
        for (sample, _) in data.iter().take(20) {
            assert_eq!(restored.predict(sample), bolt.predict(sample));
        }
    }
}

#[cfg(test)]
mod gbt_tests {
    use super::*;
    use bolt_forest::GbtConfig;

    fn dataset(seed: u64) -> bolt_forest::RegressionDataset {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 90) as f32 / 9.0
        };
        let rows: Vec<Vec<f32>> = (0..300).map(|_| vec![next(), next()]).collect();
        let targets: Vec<f32> = rows
            .iter()
            .map(|r| r[0] * 4.0 - r[1] * r[1] * 0.2)
            .collect();
        bolt_forest::RegressionDataset::from_rows(rows, targets).expect("valid")
    }

    #[test]
    fn boosted_compile_is_equivalent() {
        let data = dataset(1);
        let model = GradientBoostedRegressor::train(&data, &GbtConfig::new(15).with_seed(3));
        let bolt =
            BoltRegressor::compile_boosted(&model, &BoltConfig::default()).expect("compiles");
        for (sample, _) in data.iter().take(80) {
            let (a, b) = (bolt.predict(sample), model.predict(sample));
            assert!(
                (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                "bolt {a} vs gbt {b}"
            );
        }
    }

    #[test]
    fn boosted_compile_handles_unseen_inputs() {
        let data = dataset(2);
        let model = GradientBoostedRegressor::train(&data, &GbtConfig::new(8).with_seed(5));
        let bolt =
            BoltRegressor::compile_boosted(&model, &BoltConfig::default()).expect("compiles");
        for i in 0..60 {
            let sample = vec![i as f32 * 0.21 - 3.0, i as f32 * 0.47];
            let (a, b) = (bolt.predict(&sample), model.predict(&sample));
            assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn boosted_mse_matches_model() {
        let data = dataset(4);
        let model = GradientBoostedRegressor::train(&data, &GbtConfig::new(10).with_seed(7));
        let bolt =
            BoltRegressor::compile_boosted(&model, &BoltConfig::default()).expect("compiles");
        let (a, b) = (bolt.mse(&data), model.mse(&data));
        assert!((a - b).abs() < 1e-2 * (1.0 + b), "bolt {a} vs gbt {b}");
    }
}
