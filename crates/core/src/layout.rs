//! Compressed memory layouts and their storage accounting (§5, Fig. 8).
//!
//! The paper's implementation section describes four layout optimizations
//! and Fig. 8 compares bytes-per-entry against verbose ("decompressed")
//! layouts:
//!
//! * **Masks** — bitmaps sized by the largest feature set across dictionary
//!   entries, instead of 1-byte boolean arrays.
//! * **Features** — feature values stored with just enough bits for the
//!   largest value used in any binary split, instead of full integers.
//! * **Results** — knee-point (99th-percentile) encoding instead of fixed
//!   integers, "compressing table entries by 3X".
//! * **Dictionary entry ID** — 1 byte (`id mod 256`) instead of a full
//!   integer, relying on the adjacency argument of §5.
//!
//! [`LayoutReport`] computes both columns of Fig. 8 for a compiled forest;
//! [`PackedBolt`] actually *runs inference from packed structures*, proving
//! the compressed layout is executable rather than bookkeeping.

use crate::engine::BoltForest;
use crate::filter::table_key;
use crate::simd::{self, Kernel};
use bolt_bitpack::{bits_for, BitVec, KneeCodec, Mask, PackedIntVec};

/// Compressed vs decompressed byte counts for one layout section.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SectionBytes {
    /// Bytes per entry under Bolt's packed layout.
    pub compressed: usize,
    /// Bytes per entry under the verbose layout Fig. 8 compares against.
    pub decompressed: usize,
}

impl SectionBytes {
    /// Compression ratio (decompressed / compressed); ∞-safe.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.compressed == 0 {
            0.0
        } else {
            self.decompressed as f64 / self.compressed as f64
        }
    }
}

/// Per-section storage accounting for a compiled forest (Fig. 8's bars).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayoutReport {
    /// Dictionary-entry masks (bitmap vs boolean array), bytes per entry.
    pub masks: SectionBytes,
    /// Dictionary-entry feature-value pairs, bytes per entry.
    pub features: SectionBytes,
    /// Lookup-table results, bytes per table entry.
    pub results: SectionBytes,
    /// Stored dictionary entry ID, bytes per table entry.
    pub entry_id: SectionBytes,
}

impl LayoutReport {
    /// Computes the report for a compiled forest. `max_split_value` is the
    /// largest feature value used in any binary split (discovered from the
    /// trained forest, as §5 describes).
    #[must_use]
    pub fn for_forest(bolt: &BoltForest) -> Self {
        let universe = bolt.universe();
        let max_split_value = (0..universe.len())
            .map(|p| universe.predicate(p as u32).threshold.abs().ceil() as u64)
            .max()
            .unwrap_or(1)
            .max(1);
        let max_feature_set = bolt.dictionary().max_feature_set().max(1);

        // Masks: one membership mask + one value mask over the entry's
        // feature set. Verbose layout: 1 byte per boolean; packed: 1 bit.
        let masks = SectionBytes {
            compressed: 2 * max_feature_set.div_ceil(8),
            decompressed: 2 * max_feature_set,
        };

        // Features: (feature id, value) pairs. Verbose: two 4-byte ints per
        // pair; packed: just enough bits for the feature index and for the
        // largest split value.
        let feature_bits = bits_for(universe.n_features().max(1) as u64) as usize;
        let value_bits = bits_for(max_split_value) as usize;
        let features = SectionBytes {
            compressed: (max_feature_set * (feature_bits + value_bits)).div_ceil(8),
            decompressed: max_feature_set * 8,
        };

        // Results: knee-point coded votes vs 4-byte integers, averaged per
        // occupied table cell.
        let all_votes: Vec<u64> = bolt
            .table()
            .cells()
            .flat_map(|c| c.votes.iter().map(|&(class, _)| u64::from(class)))
            .collect();
        let n_cells = bolt.table().n_cells().max(1);
        let codec = KneeCodec::fit(&all_votes, 0.99);
        let results = SectionBytes {
            compressed: codec.packed_bytes().div_ceil(n_cells).max(1),
            decompressed: (all_votes.len() * 4).div_ceil(n_cells).max(4),
        };

        let entry_id = SectionBytes {
            compressed: 1, // id mod 256, as in §5
            decompressed: 4,
        };

        Self {
            masks,
            features,
            results,
            entry_id,
        }
    }

    /// Total compressed bytes per dictionary entry.
    #[must_use]
    pub fn dictionary_compressed(&self) -> usize {
        self.masks.compressed + self.features.compressed
    }

    /// Total decompressed bytes per dictionary entry.
    #[must_use]
    pub fn dictionary_decompressed(&self) -> usize {
        self.masks.decompressed + self.features.decompressed
    }

    /// Total compressed bytes per lookup-table entry.
    #[must_use]
    pub fn table_compressed(&self) -> usize {
        self.results.compressed + self.entry_id.compressed
    }

    /// Total decompressed bytes per lookup-table entry.
    #[must_use]
    pub fn table_decompressed(&self) -> usize {
        self.results.decompressed + self.entry_id.decompressed
    }
}

/// A fully bit-packed, runnable Bolt engine.
///
/// Dictionary masks/keys live in the packed scan arrays; uncommon-predicate
/// lists, table addresses, stored entry IDs, and result classes are all in
/// packed integer vectors. `classify` decodes on the fly and produces the
/// same answer as the unpacked [`BoltForest`] for unweighted forests (the
/// only regime the paper's Fig. 8 measures).
#[derive(Clone, Debug)]
pub struct PackedBolt {
    /// Universe width (bits of the input mask).
    width: usize,
    /// Per entry: offset into `uncommon_preds`.
    entry_uncommon_offsets: Vec<u32>,
    /// Packed predicate IDs of every entry's uncommon list, concatenated.
    uncommon_preds: PackedIntVec,
    /// Per entry: common mask/key words (reused from the dictionary layout).
    mask_words: Vec<u64>,
    key_words: Vec<u64>,
    /// Entry-blocked SIMD mirror of the full blocks of
    /// `mask_words`/`key_words` (see [`simd::interleave_blocked`]); the
    /// packed engine scans it with the process-selected kernel and falls
    /// back to the flat arrays for the tail.
    blk_mask: Vec<u64>,
    blk_key: Vec<u64>,
    stride: usize,
    /// Open-addressed packed table, same capacity/probing as the source.
    occupied: BitVec,
    slot_entry_ids: PackedIntVec,
    slot_addresses: PackedIntVec,
    /// Per slot: offset into `vote_classes`.
    slot_vote_offsets: Vec<u32>,
    /// Knee-coded class of every vote, concatenated in slot order.
    vote_classes: KneeCodec,
    index_mask: u64,
    constant_votes: Vec<(u32, f64)>,
    n_classes: usize,
}

impl PackedBolt {
    /// Packs a compiled forest. Weighted (boosted) forests are not
    /// supported — Fig. 8's measurement regime is plain random forests.
    ///
    /// # Panics
    ///
    /// Panics if the forest carries non-unit path weights.
    #[must_use]
    pub fn from_bolt(bolt: &BoltForest) -> Self {
        let dict = bolt.dictionary();
        let universe_len = bolt.universe().len().max(1);
        let pred_bits = bits_for(universe_len as u64);
        let mut entry_uncommon_offsets = Vec::with_capacity(dict.len() + 1);
        let mut uncommon_preds = PackedIntVec::new(pred_bits);
        let mut mask_words = Vec::new();
        let mut key_words = Vec::new();
        let stride = dict.stride();
        for entry in dict.entries() {
            entry_uncommon_offsets.push(uncommon_preds.len() as u32);
            for &p in &entry.uncommon {
                uncommon_preds.push(u64::from(p));
            }
            // Re-derive the packed mask/key words from the entry itself.
            let mut mask = vec![0u64; stride];
            let mut key = vec![0u64; stride];
            for &(pred, value) in &entry.common {
                let p = pred as usize;
                mask[p / 64] |= 1 << (p % 64);
                if value {
                    key[p / 64] |= 1 << (p % 64);
                }
            }
            mask_words.extend_from_slice(&mask);
            key_words.extend_from_slice(&key);
        }
        entry_uncommon_offsets.push(uncommon_preds.len() as u32);

        let table = bolt.table();
        let capacity = table.capacity();
        let entry_bits = bits_for(dict.len().max(1) as u64);
        let max_address = table.cells().map(|c| c.address).max().unwrap_or(0);
        let address_bits = bits_for(max_address);
        let mut occupied = BitVec::zeros(capacity);
        let mut slot_entry_ids = PackedIntVec::new(entry_bits);
        let mut slot_addresses = PackedIntVec::new(address_bits);
        let mut slot_vote_offsets = Vec::with_capacity(capacity + 1);
        let mut classes: Vec<u64> = Vec::new();
        // Walk slots in their stored order so probing works identically.
        let mut slot_to_cell: Vec<Option<&crate::table::TableCell>> = vec![None; capacity];
        for cell in table.cells() {
            slot_to_cell[table.slot_of(cell.entry_id, cell.address)] = Some(cell);
        }
        for (slot, cell) in slot_to_cell.iter().enumerate() {
            slot_vote_offsets.push(classes.len() as u32);
            match *cell {
                Some(cell) => {
                    occupied.set(slot, true);
                    slot_entry_ids.push(u64::from(cell.entry_id));
                    slot_addresses.push(cell.address);
                    for &(class, weight) in &cell.votes {
                        assert!(
                            (weight - 1.0).abs() < f64::EPSILON,
                            "PackedBolt supports unweighted forests only"
                        );
                        classes.push(u64::from(class));
                    }
                }
                None => {
                    slot_entry_ids.push(0);
                    slot_addresses.push(0);
                }
            }
        }
        slot_vote_offsets.push(classes.len() as u32);
        let blk_mask = simd::interleave_blocked(&mask_words, stride);
        let blk_key = simd::interleave_blocked(&key_words, stride);
        Self {
            width: dict.width(),
            entry_uncommon_offsets,
            uncommon_preds,
            mask_words,
            key_words,
            blk_mask,
            blk_key,
            stride,
            occupied,
            slot_entry_ids,
            slot_addresses,
            slot_vote_offsets,
            vote_classes: KneeCodec::fit(&classes, 0.99),
            index_mask: (capacity - 1) as u64,
            constant_votes: bolt.constant_votes().to_vec(),
            n_classes: bolt.n_classes(),
        }
    }

    /// Number of dictionary entries.
    #[must_use]
    pub fn n_entries(&self) -> usize {
        self.entry_uncommon_offsets.len() - 1
    }

    /// Classifies an encoded input from packed structures only. Full
    /// blocks of the mask/key columns are scanned through the
    /// process-selected SIMD kernel; the tail takes the flat scalar loop.
    #[must_use]
    pub fn classify_bits(&self, bits: &Mask) -> u32 {
        let words = bits.as_words();
        let mut votes = vec![0.0f64; self.n_classes];
        for &(class, weight) in &self.constant_votes {
            votes[class as usize] += weight;
        }
        let kernel = Kernel::selected();
        let mut tail_start = 0usize;
        if kernel != Kernel::Scalar && !self.blk_mask.is_empty() {
            tail_start = (self.n_entries() / simd::BLOCK) * simd::BLOCK;
            let words = &words[..words.len().min(self.stride)];
            simd::scan_blocked(
                kernel,
                &self.blk_mask,
                &self.blk_key,
                self.stride,
                words,
                &mut |entry| self.accumulate_entry(entry as usize, bits, &mut votes),
            );
        }
        for entry in tail_start..self.n_entries() {
            let base = entry * self.stride;
            let mut diff = 0u64;
            for w in 0..self.stride {
                diff |= (words.get(w).copied().unwrap_or(0) & self.mask_words[base + w])
                    ^ self.key_words[base + w];
            }
            if diff == 0 {
                self.accumulate_entry(entry, bits, &mut votes);
            }
        }
        let mut best = 0usize;
        for (i, &v) in votes.iter().enumerate().skip(1) {
            if v > votes[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Back half of the packed scan for one matched entry: gather the
    /// packed uncommon predicates into an address and probe the packed
    /// table, accumulating unit votes.
    fn accumulate_entry(&self, entry: usize, bits: &Mask, votes: &mut [f64]) {
        let (start, end) = (
            self.entry_uncommon_offsets[entry] as usize,
            self.entry_uncommon_offsets[entry + 1] as usize,
        );
        let mut address = 0u64;
        for (bit, i) in (start..end).enumerate() {
            let pred = self.uncommon_preds.get(i).expect("offset in range") as usize;
            address |= u64::from(bits.get(pred)) << bit;
        }
        let mut idx = table_key(entry as u32, address) & self.index_mask;
        loop {
            if self.occupied.get(idx as usize) != Some(true) {
                break;
            }
            let same = self.slot_entry_ids.get(idx as usize) == Some(entry as u64)
                && self.slot_addresses.get(idx as usize) == Some(address);
            if same {
                let (vs, ve) = (
                    self.slot_vote_offsets[idx as usize] as usize,
                    self.slot_vote_offsets[idx as usize + 1] as usize,
                );
                for v in vs..ve {
                    let class = self.vote_classes.get(v).expect("vote in range");
                    votes[class as usize] += 1.0;
                }
                break;
            }
            idx = (idx + 1) & self.index_mask;
        }
    }

    /// Total packed heap bytes of the engine's data structures.
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.uncommon_preds.packed_bytes()
            + self.entry_uncommon_offsets.len() * 4
            + (self.mask_words.len() + self.key_words.len()) * 8
            + (self.blk_mask.len() + self.blk_key.len()) * 8
            + self.occupied.packed_bytes()
            + self.slot_entry_ids.packed_bytes()
            + self.slot_addresses.packed_bytes()
            + self.slot_vote_offsets.len() * 4
            + self.vote_classes.packed_bytes()
    }

    /// Universe width in bits (for building input masks).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoltConfig;
    use bolt_forest::{Dataset, ForestConfig, RandomForest};

    fn fixture() -> (Dataset, RandomForest, BoltForest) {
        let rows: Vec<Vec<f32>> = (0..140)
            .map(|i| vec![(i % 9) as f32, (i % 6) as f32, ((i * 3) % 7) as f32])
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] + r[2] > 7.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(10).with_max_height(4).with_seed(17),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        (data, forest, bolt)
    }

    #[test]
    fn report_sections_all_compress() {
        let (_, _, bolt) = fixture();
        let report = LayoutReport::for_forest(&bolt);
        assert!(report.masks.compressed < report.masks.decompressed);
        assert!(report.features.compressed < report.features.decompressed);
        assert!(report.results.compressed <= report.results.decompressed);
        assert!(report.entry_id.compressed < report.entry_id.decompressed);
        assert!(report.dictionary_compressed() < report.dictionary_decompressed());
        assert!(report.table_compressed() < report.table_decompressed());
    }

    #[test]
    fn entry_id_is_one_byte_as_in_paper() {
        let (_, _, bolt) = fixture();
        let report = LayoutReport::for_forest(&bolt);
        assert_eq!(report.entry_id.compressed, 1);
        assert_eq!(report.entry_id.decompressed, 4);
        assert_eq!(report.entry_id.ratio(), 4.0);
    }

    #[test]
    fn packed_engine_is_equivalent() {
        let (data, forest, bolt) = fixture();
        let packed = PackedBolt::from_bolt(&bolt);
        for (sample, _) in data.iter() {
            let bits = bolt.encode(sample);
            assert_eq!(packed.classify_bits(&bits), forest.predict(sample));
        }
    }

    #[test]
    fn packed_engine_is_smaller_than_verbose_accounting() {
        let (_, _, bolt) = fixture();
        let packed = PackedBolt::from_bolt(&bolt);
        // Verbose accounting: each table slot as a 16-byte struct plus each
        // dictionary entry as decompressed bytes.
        let report = LayoutReport::for_forest(&bolt);
        let verbose = bolt.table().capacity() * 16
            + bolt.dictionary().len() * report.dictionary_decompressed();
        assert!(
            packed.packed_bytes() < verbose,
            "packed {} >= verbose {verbose}",
            packed.packed_bytes()
        );
    }

    #[test]
    fn packed_handles_unseen_inputs() {
        let (_, forest, bolt) = fixture();
        let packed = PackedBolt::from_bolt(&bolt);
        for i in 0..100 {
            let sample = vec![i as f32 * 0.13, -(i as f32) * 0.7, i as f32];
            let bits = bolt.encode(&sample);
            assert_eq!(packed.classify_bits(&bits), forest.predict(&sample));
        }
    }
}
