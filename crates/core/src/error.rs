//! Error type for Bolt compilation.

use std::fmt;

/// Errors produced while compiling a forest into a Bolt structure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BoltError {
    /// The forest contained no usable paths.
    EmptyForest,
    /// A configuration field was out of its valid range.
    InvalidConfig {
        /// Description of the offending field and value.
        detail: String,
    },
    /// A cluster's uncommon-predicate count exceeded the addressable limit.
    AddressTooWide {
        /// Number of uncommon predicates requested.
        bits: usize,
        /// Maximum supported address width.
        max: usize,
    },
    /// A partition plan does not match the available structures.
    InvalidPartition {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for BoltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyForest => write!(f, "forest contains no usable paths"),
            Self::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            Self::AddressTooWide { bits, max } => {
                write!(f, "cluster address needs {bits} bits, maximum is {max}")
            }
            Self::InvalidPartition { detail } => write!(f, "invalid partition plan: {detail}"),
        }
    }
}

impl std::error::Error for BoltError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_concise() {
        assert_eq!(
            BoltError::EmptyForest.to_string(),
            "forest contains no usable paths"
        );
        let e = BoltError::AddressTooWide { bits: 70, max: 48 };
        assert!(e.to_string().contains("70"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoltError>();
    }
}
