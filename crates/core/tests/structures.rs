//! Property tests over Bolt's compiled structures: packed-engine
//! equivalence, threshold monotonicity, bloom behaviour, and partition
//! latency-model sanity, on randomly shaped forests.

use bolt_core::layout::PackedBolt;
use bolt_core::{BloomFilter, BoltConfig, BoltForest, LayoutReport};
use bolt_forest::{Dataset, ForestConfig, RandomForest};
use proptest::prelude::*;

fn make_dataset(n_features: usize, n_classes: usize, n_samples: usize, seed: u64) -> Dataset {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut rows = Vec::with_capacity(n_samples);
    let mut labels = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let row: Vec<f32> = (0..n_features).map(|_| (next() % 12) as f32).collect();
        labels.push(
            ((row[0] as u32 + next() as u32 % 2) % n_classes as u32).min(n_classes as u32 - 1),
        );
        rows.push(row);
    }
    Dataset::from_rows(rows, labels, n_classes).expect("consistent rows")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fully bit-packed engine classifies identically to the unpacked
    /// one on random forests and random inputs.
    #[test]
    fn packed_engine_equivalence(
        seed in any::<u64>(),
        n_trees in 1usize..7,
        height in 1usize..5,
        threshold in 0usize..8,
    ) {
        let data = make_dataset(4, 3, 70, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(n_trees).with_max_height(height).with_seed(seed),
        );
        let bolt = BoltForest::compile(
            &forest,
            &BoltConfig::default().with_cluster_threshold(threshold),
        ).expect("compiles");
        let packed = PackedBolt::from_bolt(&bolt);
        for (sample, _) in data.iter().take(40) {
            let bits = bolt.encode(sample);
            prop_assert_eq!(packed.classify_bits(&bits), forest.predict(sample));
        }
    }

    /// Raising the clustering threshold never increases the dictionary size
    /// and never decreases occupied table cells (the §4.2 trade-off).
    #[test]
    fn threshold_monotonicity(seed in any::<u64>()) {
        let data = make_dataset(5, 2, 80, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(5).with_max_height(4).with_seed(seed),
        );
        let mut prev_entries = usize::MAX;
        for threshold in [0usize, 1, 2, 4, 8, 16] {
            let bolt = BoltForest::compile(
                &forest,
                &BoltConfig::default().with_cluster_threshold(threshold),
            ).expect("compiles");
            prop_assert!(
                bolt.dictionary().len() <= prev_entries,
                "threshold {threshold} grew the dictionary"
            );
            prev_entries = bolt.dictionary().len();
        }
    }

    /// Layout accounting always reports compression on real forests.
    #[test]
    fn layout_report_is_consistent(seed in any::<u64>()) {
        let data = make_dataset(6, 3, 80, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(4).with_max_height(3).with_seed(seed),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        let report = LayoutReport::for_forest(&bolt);
        prop_assert!(report.masks.compressed <= report.masks.decompressed);
        prop_assert!(report.features.compressed <= report.features.decompressed);
        prop_assert!(report.results.compressed <= report.results.decompressed);
        prop_assert_eq!(report.entry_id.compressed, 1);
    }

    /// Bloom filters built from a table's keys accept every stored key.
    #[test]
    fn bloom_covers_all_table_keys(seed in any::<u64>(), bits in 4usize..16) {
        let data = make_dataset(4, 2, 60, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(4).with_max_height(4).with_seed(seed),
        );
        let bolt = BoltForest::compile(
            &forest,
            &BoltConfig::default().with_bloom_bits_per_key(0),
        ).expect("compiles");
        let filter = BloomFilter::from_keys(bolt.table().keys(), bits);
        for key in bolt.table().keys() {
            prop_assert!(filter.contains(key));
        }
    }
}

/// Inference statistics stay internally consistent across thresholds.
#[test]
fn stats_invariants_across_thresholds() {
    let data = make_dataset(5, 3, 90, 0xFEED);
    let forest = RandomForest::train(&data, &ForestConfig::new(8).with_max_height(4).with_seed(4));
    for threshold in [0usize, 2, 6, 12] {
        let bolt = BoltForest::compile(
            &forest,
            &BoltConfig::default().with_cluster_threshold(threshold),
        )
        .expect("compiles");
        for (sample, _) in data.iter().take(30) {
            let (_, stats) = bolt.classify_with_stats(sample);
            assert_eq!(stats.entries_scanned, bolt.dictionary().len());
            assert_eq!(
                stats.entries_matched,
                stats.bloom_rejects + stats.table_hits + stats.table_misses
            );
            // Every tree votes: at least one hit unless all trees are
            // single leaves (not the case here).
            assert!(stats.table_hits >= 1);
        }
    }
}
