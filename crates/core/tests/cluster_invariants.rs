//! Property tests over the Phase-1 clustering invariants on random path
//! multisets (independent of any trained forest).

use bolt_core::cluster::Clustering;
use bolt_core::paths::SortedPaths;
use bolt_forest::BinaryPath;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a random list of paths over a small predicate universe.
fn arb_paths() -> impl Strategy<Value = Vec<BinaryPath>> {
    proptest::collection::vec(
        (
            proptest::collection::btree_map(0u32..12, any::<bool>(), 1..6),
            0u32..4, // class
            0u32..6, // tree
        ),
        1..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(pairs, class, tree)| BinaryPath {
                pairs: pairs.into_iter().collect(), // BTreeMap gives sorted, unique preds
                class,
                tree,
                weight: 1.0,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every input path lands in exactly one cluster, in order.
    #[test]
    fn clustering_preserves_the_path_multiset(
        paths in arb_paths(),
        threshold in 0usize..10,
    ) {
        let sorted = SortedPaths::from_paths(paths, 6);
        let clustering = Clustering::greedy(&sorted, threshold).expect("clusters");
        let reassembled: Vec<&BinaryPath> = clustering
            .clusters()
            .iter()
            .flat_map(|c| c.paths.iter())
            .collect();
        prop_assert_eq!(reassembled.len(), sorted.len());
        for (a, b) in reassembled.iter().zip(sorted.paths()) {
            prop_assert_eq!(*a, b, "clusters must be contiguous slices of the sorted list");
        }
    }

    /// Common pairs hold in every member path; uncommon predicates are
    /// exactly the remaining predicates; the two sets never overlap.
    #[test]
    fn common_uncommon_partition_is_sound(
        paths in arb_paths(),
        threshold in 0usize..10,
    ) {
        let sorted = SortedPaths::from_paths(paths, 6);
        let clustering = Clustering::greedy(&sorted, threshold).expect("clusters");
        for cluster in clustering.clusters() {
            let common_preds: BTreeSet<u32> =
                cluster.common.iter().map(|&(p, _)| p).collect();
            let uncommon: BTreeSet<u32> = cluster.uncommon.iter().copied().collect();
            prop_assert!(common_preds.is_disjoint(&uncommon));
            for pair in &cluster.common {
                for path in &cluster.paths {
                    prop_assert!(path.pairs.contains(pair));
                }
            }
            let all_preds: BTreeSet<u32> = cluster
                .paths
                .iter()
                .flat_map(|p| p.pairs.iter().map(|&(q, _)| q))
                .collect();
            let expected_uncommon: BTreeSet<u32> =
                all_preds.difference(&common_preds).copied().collect();
            prop_assert_eq!(&uncommon, &expected_uncommon);
        }
    }

    /// Address width stays within the documented cap at any threshold.
    #[test]
    fn address_width_is_capped(paths in arb_paths(), threshold in 0usize..200) {
        let sorted = SortedPaths::from_paths(paths, 6);
        let clustering = Clustering::greedy(&sorted, threshold).expect("clusters");
        for cluster in clustering.clusters() {
            prop_assert!(cluster.address_bits() <= Clustering::MAX_ADDRESS_BITS);
        }
    }

    /// Each cluster's expansions cover every member path at least once, and
    /// every expansion address fits in the cluster's address width.
    #[test]
    fn expansions_cover_members(paths in arb_paths(), threshold in 0usize..8) {
        let sorted = SortedPaths::from_paths(paths, 6);
        let clustering = Clustering::greedy(&sorted, threshold).expect("clusters");
        for cluster in clustering.clusters() {
            let expansions = cluster.expansions();
            let mut covered = vec![false; cluster.paths.len()];
            for (address, path_idx) in expansions {
                covered[path_idx] = true;
                if cluster.address_bits() < 64 {
                    prop_assert!(address < (1u64 << cluster.address_bits()));
                }
            }
            prop_assert!(covered.iter().all(|&c| c), "some member path never expanded");
        }
    }
}
