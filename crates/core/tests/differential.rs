//! Differential safety harness (§4 footnote 1 of the paper).
//!
//! Bolt is only allowed to be fast because it is *identical* to the source
//! forest. This suite drives `bolt_core::oracle`'s randomized forest and
//! adversarial input generators across the full compile-time configuration
//! matrix — every `cluster_threshold` in 1..=8 crossed with bloom filtering
//! and explanations on/off — and asserts bit-exact agreement between
//! `BoltForest::classify` and the reference traversal on every sample,
//! including after a serde round-trip plus `rebuild()`.
//!
//! Every failure message carries the forest seed, so any divergence is
//! reproducible from a single `u64`.

use bolt_core::oracle::{self, ForestSpec, OracleRng};
use bolt_core::{BoltConfig, BoltForest};
use bolt_forest::{Dataset, ForestConfig, RandomForest};

const FOREST_SEEDS: u64 = 25;
const RANDOM_INPUTS_PER_FOREST: usize = 20;

fn compile(forest: &RandomForest, config: &BoltConfig, seed: u64) -> BoltForest {
    BoltForest::compile(forest, config)
        .unwrap_or_else(|e| panic!("compile failed for seed {seed} with config {config:?}: {e}"))
}

/// The tentpole sweep: randomized forests × adversarial inputs × the full
/// 32-entry configuration matrix, with a serde+rebuild leg folded in. The
/// final assertion enforces the issue's acceptance floor of 1,000
/// forest/input/config combinations.
#[test]
fn random_forests_match_reference_across_config_matrix() {
    let configs = oracle::config_matrix();
    let mut combinations = 0usize;

    for seed in 0..FOREST_SEEDS {
        let mut rng = OracleRng::new(seed);
        let spec = ForestSpec::sampled(&mut rng);
        let forest = oracle::random_forest(&spec, &mut rng);
        let thresholds = oracle::forest_thresholds(&forest);
        let inputs = oracle::adversarial_inputs(
            spec.n_features,
            &thresholds,
            &mut rng,
            RANDOM_INPUTS_PER_FOREST,
        );

        for (ci, config) in configs.iter().enumerate() {
            let bolt = compile(&forest, config, seed);
            let checked = oracle::check_forest(&bolt, &forest, &inputs)
                .unwrap_or_else(|m| panic!("seed {seed}, config {config:?}: {m}"));
            combinations += checked;

            // The batched entry-major engine rides every sweep: vote
            // vectors must be bit-identical to the per-sample engine for
            // batch sizes 1, 3, and the full input set, sharded and not.
            let batch_checked = oracle::check_batch(&bolt, &inputs)
                .unwrap_or_else(|m| panic!("seed {seed}, config {config:?}, batched: {m}"));
            combinations += batch_checked;

            // Kernel leg: every SIMD backend the host supports must match
            // the scalar scan entry-for-entry, and the dispatched scan's
            // votes must be bit-identical to forced-scalar votes.
            let kernel_checked = oracle::check_kernels(&bolt, &inputs)
                .unwrap_or_else(|m| panic!("seed {seed}, config {config:?}, kernels: {m}"));
            combinations += kernel_checked;

            // Batched kernel leg: every batched SIMD backend must produce
            // vote vectors bit-identical to the forced-scalar batched
            // engine across several batch shapes.
            let batch_kernel_checked = oracle::check_batch_kernels(&bolt, &inputs)
                .unwrap_or_else(|m| panic!("seed {seed}, config {config:?}, batched kernels: {m}"));
            combinations += batch_kernel_checked;

            // Every 4th configuration also goes through serialize →
            // deserialize → rebuild, so the persisted artifact is held to
            // the same standard as the freshly compiled one.
            if ci % 4 == 0 {
                let json = serde_json::to_string(&bolt).expect("serialize");
                let mut revived: BoltForest = serde_json::from_str(&json).expect("deserialize");
                revived.rebuild();
                let checked =
                    oracle::check_forest(&revived, &forest, &inputs).unwrap_or_else(|m| {
                        panic!("seed {seed}, config {config:?} after round-trip: {m}")
                    });
                combinations += checked;
            }
        }
    }

    assert!(
        combinations >= 1000,
        "acceptance floor is 1,000 combinations, ran only {combinations}"
    );
    eprintln!("differential matrix checked {combinations} forest/input/config combinations");
}

/// Forests trained on a realistic workload (not synthetic node soup) must
/// agree with their compiled form on threshold-boundary and non-finite
/// inputs too.
#[test]
fn trained_forests_match_reference_on_adversarial_inputs() {
    for seed in 0..4u64 {
        let data = bolt_data::lstw_like(400, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(6).with_max_height(5).with_seed(seed),
        );
        let thresholds = oracle::forest_thresholds(&forest);
        let mut rng = OracleRng::new(seed ^ 0x7EA1);
        let inputs = oracle::adversarial_inputs(forest.n_features(), &thresholds, &mut rng, 30);
        for config in [
            BoltConfig::default(),
            BoltConfig::default()
                .with_cluster_threshold(4)
                .with_bloom_bits_per_key(8)
                .with_explanations(true),
        ] {
            let bolt = compile(&forest, &config, seed);
            oracle::check_forest(&bolt, &forest, &inputs)
                .unwrap_or_else(|m| panic!("trained seed {seed}, config {config:?}: {m}"));
            oracle::check_batch(&bolt, &inputs)
                .unwrap_or_else(|m| panic!("trained seed {seed}, config {config:?}, batched: {m}"));
            oracle::check_kernels(&bolt, &inputs)
                .unwrap_or_else(|m| panic!("trained seed {seed}, config {config:?}, kernels: {m}"));
            oracle::check_batch_kernels(&bolt, &inputs).unwrap_or_else(|m| {
                panic!("trained seed {seed}, config {config:?}, batched kernels: {m}")
            });
        }
    }
}

/// Compiled boosted ensembles (real-valued path weights) must reproduce
/// `BoostedForest::predict` exactly.
#[test]
fn boosted_forests_match_reference() {
    for seed in 0..8u64 {
        let boosted = oracle::random_boosted_forest(seed);
        let thresholds = oracle::boosted_thresholds(&boosted);
        let mut rng = OracleRng::new(seed ^ 0xB005);
        let inputs = oracle::adversarial_inputs(boosted.n_features(), &thresholds, &mut rng, 25);
        for threshold in [1usize, 3, 5, 8] {
            for bloom in [0usize, 8] {
                let config = BoltConfig::default()
                    .with_cluster_threshold(threshold)
                    .with_bloom_bits_per_key(bloom);
                let bolt = BoltForest::compile_boosted(&boosted, &config)
                    .unwrap_or_else(|e| panic!("boosted compile failed for seed {seed}: {e}"));
                oracle::check_boosted(&bolt, &boosted, &inputs)
                    .unwrap_or_else(|m| panic!("boosted seed {seed}, config {config:?}: {m}"));
                oracle::check_batch(&bolt, &inputs).unwrap_or_else(|m| {
                    panic!("boosted seed {seed}, config {config:?}, batched: {m}")
                });
            }
        }
    }
}

/// Degenerate shapes the clustering pipeline must not mangle: forests where
/// every tree is a single leaf (pure constant votes, empty predicate
/// universe) and single-tree stumps.
#[test]
fn degenerate_forests_match_reference() {
    // All-leaf forest: classification is decided entirely by constant votes.
    let mut rng = OracleRng::new(99);
    let spec = ForestSpec {
        n_features: 3,
        n_classes: 3,
        n_trees: 5,
        max_depth: 1,
        threshold_pool: vec![0.5],
        single_leaf_prob: 1.0,
    };
    let forest = oracle::random_forest(&spec, &mut rng);
    let inputs = oracle::adversarial_inputs(3, &[], &mut rng, 10);
    for config in oracle::config_matrix() {
        let bolt = compile(&forest, &config, 99);
        oracle::check_forest(&bolt, &forest, &inputs)
            .unwrap_or_else(|m| panic!("all-leaf forest, config {config:?}: {m}"));
        oracle::check_batch(&bolt, &inputs)
            .unwrap_or_else(|m| panic!("all-leaf forest, config {config:?}, batched: {m}"));
    }

    // Single stump: one tree, one split.
    let spec = ForestSpec {
        n_features: 1,
        n_classes: 2,
        n_trees: 1,
        max_depth: 1,
        threshold_pool: vec![0.0],
        single_leaf_prob: 0.0,
    };
    let forest = oracle::random_forest(&spec, &mut rng);
    let inputs = vec![
        vec![-1.0],
        vec![0.0],
        vec![oracle::next_above(0.0)],
        vec![oracle::next_below(0.0)],
        vec![f32::NAN],
        vec![f32::INFINITY],
        vec![f32::NEG_INFINITY],
    ];
    for config in oracle::config_matrix() {
        let bolt = compile(&forest, &config, 100);
        oracle::check_forest(&bolt, &forest, &inputs)
            .unwrap_or_else(|m| panic!("stump, config {config:?}: {m}"));
        oracle::check_batch(&bolt, &inputs)
            .unwrap_or_else(|m| panic!("stump, config {config:?}, batched: {m}"));
    }
}

/// Satellite: the serialized artifact is the product teams deploy (§2 of
/// the paper frames Bolt as a model-serving component), so a round-tripped
/// and `rebuild()`-ed BoltForest must classify identically to both the
/// original compiled object and the source forest.
#[test]
fn serde_roundtrip_preserves_classification() {
    for seed in 200..208u64 {
        let mut rng = OracleRng::new(seed);
        let spec = ForestSpec::sampled(&mut rng);
        let forest = oracle::random_forest(&spec, &mut rng);
        let thresholds = oracle::forest_thresholds(&forest);
        let inputs = oracle::adversarial_inputs(spec.n_features, &thresholds, &mut rng, 15);
        let config = BoltConfig::default()
            .with_cluster_threshold(1 + (seed as usize % 8))
            .with_bloom_bits_per_key(if seed % 2 == 0 { 8 } else { 0 })
            .with_explanations(seed % 3 == 0);
        let bolt = compile(&forest, &config, seed);

        let json = serde_json::to_string(&bolt).expect("serialize");
        let mut revived: BoltForest = serde_json::from_str(&json).expect("deserialize");
        revived.rebuild();

        let mut scratch = revived.scratch();
        for sample in &inputs {
            let original = bolt.classify(sample);
            let roundtripped = revived.classify_with(sample, &mut scratch);
            assert_eq!(
                roundtripped, original,
                "seed {seed}: round-trip diverged from original on {sample:?}"
            );
            assert_eq!(
                roundtripped,
                forest.predict(sample),
                "seed {seed}: round-trip diverged from forest on {sample:?}"
            );
        }
    }
}

/// Satellite: with the bloom filter disabled every matched dictionary
/// entry probes the table, so `table_hits + table_misses` must equal
/// `entries_matched` and `bloom_rejects` must be zero — and predictions
/// must be unchanged relative to a bloom-enabled build.
#[test]
fn stats_invariants_bloom_disabled() {
    for seed in 300..306u64 {
        let mut rng = OracleRng::new(seed);
        let spec = ForestSpec::sampled(&mut rng);
        let forest = oracle::random_forest(&spec, &mut rng);
        let thresholds = oracle::forest_thresholds(&forest);
        let inputs = oracle::adversarial_inputs(spec.n_features, &thresholds, &mut rng, 20);

        let base = BoltConfig::default().with_cluster_threshold(1 + (seed as usize % 8));
        let plain = compile(&forest, &base.clone().with_bloom_bits_per_key(0), seed);
        let bloomed = compile(&forest, &base.with_bloom_bits_per_key(8), seed);

        for sample in &inputs {
            let (class, stats) = plain.classify_with_stats(sample);
            assert_eq!(
                stats.bloom_rejects, 0,
                "seed {seed}: rejects without a filter"
            );
            assert_eq!(
                stats.table_hits + stats.table_misses,
                stats.entries_matched,
                "seed {seed}: unfiltered probes must cover every matched entry on {sample:?}"
            );
            assert_eq!(
                class,
                bloomed.classify(sample),
                "seed {seed}: disabling the bloom filter changed the prediction on {sample:?}"
            );
        }
    }
}

/// Satellite: the bloom filter is only allowed to skip probes that would
/// have missed. Vote vectors (not just the argmax) must be bit-identical
/// with the filter on and off, table hits must match exactly, and the
/// probe accounting must balance.
#[test]
fn bloom_never_suppresses_a_true_lookup() {
    for seed in 400..406u64 {
        let mut rng = OracleRng::new(seed);
        let spec = ForestSpec::sampled(&mut rng);
        let forest = oracle::random_forest(&spec, &mut rng);
        let thresholds = oracle::forest_thresholds(&forest);
        let inputs = oracle::adversarial_inputs(spec.n_features, &thresholds, &mut rng, 20);

        let base = BoltConfig::default().with_cluster_threshold(1 + (seed as usize % 8));
        let plain = compile(&forest, &base.clone().with_bloom_bits_per_key(0), seed);
        let bloomed = compile(&forest, &base.with_bloom_bits_per_key(6), seed);

        for sample in &inputs {
            let bits = plain.encode(sample);
            let (votes_off, stats_off) = plain.votes_with_stats(&bits);
            let (votes_on, stats_on) = bloomed.votes_with_stats(&bloomed.encode(sample));
            assert_eq!(
                votes_on, votes_off,
                "seed {seed}: bloom filter altered the vote vector on {sample:?}"
            );
            assert_eq!(
                stats_on.table_hits, stats_off.table_hits,
                "seed {seed}: bloom filter suppressed a true path lookup on {sample:?}"
            );
            assert_eq!(
                stats_on.bloom_rejects + stats_on.table_hits + stats_on.table_misses,
                stats_on.entries_matched,
                "seed {seed}: probe accounting does not balance on {sample:?}"
            );
        }
    }
}

/// `verify_against` (the library's own spot-check entry point) must agree
/// with the oracle's verdict on a dataset-shaped batch.
#[test]
fn verify_against_agrees_with_oracle() {
    for seed in 500..504u64 {
        let mut rng = OracleRng::new(seed);
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..4).map(|_| rng.uniform(-4.0, 4.0)).collect())
            .collect();
        let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] + r[1] > 0.0)).collect();
        let data = Dataset::from_rows(rows, labels, 2).expect("valid dataset");
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(4).with_max_height(4).with_seed(seed),
        );
        let bolt = compile(&forest, &BoltConfig::default(), seed);
        let samples: Vec<&[f32]> = data.iter().map(|(s, _)| s).collect();
        let verified = bolt
            .verify_against(&forest, samples.iter().copied())
            .expect("bolt must verify against its source forest");
        assert_eq!(verified, samples.len());
    }
}
