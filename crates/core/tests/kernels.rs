//! Property tests pinning every SIMD scan kernel to the scalar reference.
//!
//! The scalar flat scan in `dictionary.rs` is the semantic source of truth
//! (`entry_diff`); the blocked-layout kernels in `bolt_core::simd` must
//! agree with it bit-for-bit on *any* dictionary bytes — including shapes
//! `from_clustering` never produces (all-zero-mask entries that match
//! everything, corrupted key ⊄ mask words that reject everything) — and
//! on any input width (stride tails, narrow inputs, empty inputs).

use bolt_bitpack::Mask;
use bolt_core::simd::{self, Kernel};
use bolt_core::DictView;
use proptest::prelude::*;

/// Deterministic splitmix64 stream so every array is reproducible from
/// the case's single seed.
fn words(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// Builds an input `Mask` whose backing words are exactly `input_words`.
fn mask_from_words(input_words: &[u64]) -> Mask {
    let mut mask = Mask::zeros(input_words.len() * 64);
    for (w, &word) in input_words.iter().enumerate() {
        for b in 0..64 {
            if word >> b & 1 == 1 {
                mask.set(w * 64 + b, true);
            }
        }
    }
    mask
}

/// One randomized dictionary: sparse masks, keys under the masks, plus the
/// optional hostile shapes the kernels must handle identically.
struct Case {
    stride: usize,
    mask: Vec<u64>,
    key: Vec<u64>,
}

impl Case {
    fn build(seed: u64, stride: usize, n_entries: usize, zero_mask: bool, corrupt: bool) -> Self {
        let n = n_entries * stride;
        // Quarter-density masks so entries actually match sometimes.
        let mask: Vec<u64> = words(seed, n)
            .iter()
            .zip(&words(seed ^ 0xA5A5, n))
            .map(|(a, b)| a & b)
            .collect();
        let mut mask = mask;
        let mut key: Vec<u64> = words(seed ^ 0x5A5A, n)
            .iter()
            .zip(&mask)
            .map(|(k, m)| k & m)
            .collect();
        if zero_mask && n_entries > 0 {
            // Entry 0 becomes all-zero mask/key: matches every input.
            for w in 0..stride {
                mask[w] = 0;
                key[w] = 0;
            }
        }
        if corrupt && n_entries > 1 {
            // Entry 1 gets a key bit outside its mask: rejects every input.
            let w = stride; // first word of entry 1
            let outside = !mask[w];
            key[w] |= outside & outside.wrapping_neg(); // lowest zero-mask bit
        }
        Self { stride, mask, key }
    }

    fn view<'a>(&'a self, offsets: &'a [u32]) -> DictView<'a> {
        DictView::new(self.stride * 64, &self.mask, &self.key, &[], offsets)
    }
}

fn scan_ids(view: &DictView<'_>, input: &Mask, kernel: Kernel) -> Vec<u32> {
    let mut out = Vec::new();
    view.scan_with_kernel(input, kernel, |id| out.push(id));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every supported kernel reports exactly the scalar scan's matches,
    /// in the same ascending order, on randomized dictionaries and inputs
    /// of every width from empty through full stride.
    #[test]
    fn kernels_agree_with_scalar_on_random_dictionaries(
        seed in any::<u64>(),
        stride in 1usize..=5,
        n_entries in 0usize..=13,
        zero_mask in any::<bool>(),
        corrupt in any::<bool>(),
        input_sel in 0usize..=6,
    ) {
        let case = Case::build(seed, stride, n_entries, zero_mask, corrupt);
        let offsets = vec![0u32; n_entries + 1];
        let blk_mask = simd::interleave_blocked(&case.mask, stride);
        let blk_key = simd::interleave_blocked(&case.key, stride);
        let view = case.view(&offsets).with_blocked(&blk_mask, &blk_key);

        // Inputs: random at every width 0..=stride, or an entry's own key
        // (a guaranteed match when that entry's key ⊆ mask).
        let input_words = if input_sel <= stride {
            words(seed ^ 0xF00D, input_sel)
        } else if n_entries > 0 {
            let e = (seed as usize) % n_entries;
            case.key[e * stride..(e + 1) * stride].to_vec()
        } else {
            Vec::new()
        };
        let input = mask_from_words(&input_words);

        let reference = scan_ids(&view, &input, Kernel::Scalar);
        for kernel in Kernel::all_supported() {
            let got = scan_ids(&view, &input, kernel);
            prop_assert_eq!(
                &got,
                &reference,
                "kernel {} diverged (seed {seed}, stride {stride}, {} entries)",
                kernel,
                n_entries
            );
        }

        // `matches` (the per-entry test) agrees with scan membership,
        // including on inputs narrower than the dictionary.
        for id in 0..n_entries as u32 {
            prop_assert_eq!(view.matches(id, &input), reference.contains(&id));
        }

        // Semantics of the hostile shapes, pinned explicitly.
        if zero_mask && n_entries > 0 {
            prop_assert!(reference.contains(&0), "all-zero-mask entry matches everything");
        }
        if corrupt && n_entries > 1 {
            prop_assert!(!reference.contains(&1), "key outside mask rejects everything");
        }
    }

    /// Every supported *batched* kernel reports exactly the flat
    /// entry-major reference's `(entry, matched samples)` stream — same
    /// entries, same ascending sample lists, same order — and that stream
    /// decomposes per sample into exactly the single-sample scalar scan.
    /// Sample counts sweep 0 through 17 so every kernel's lane tail
    /// (W = 2, 4, and 8) is exercised.
    #[test]
    fn batched_kernels_agree_with_flat_reference(
        seed in any::<u64>(),
        stride in 1usize..=5,
        n_entries in 0usize..=13,
        n_samples in 0usize..=17,
        zero_mask in any::<bool>(),
        corrupt in any::<bool>(),
    ) {
        let case = Case::build(seed, stride, n_entries, zero_mask, corrupt);
        let offsets = vec![0u32; n_entries + 1];
        let blk_mask = simd::interleave_blocked(&case.mask, stride);
        let blk_key = simd::interleave_blocked(&case.key, stride);
        let view = case.view(&offsets).with_blocked(&blk_mask, &blk_key);

        // Lane-pack the batch; every third sample is an entry's own key so
        // matches actually occur.
        let mut lanes = vec![0u64; stride * n_samples];
        for b in 0..n_samples {
            let input = if n_entries > 0 && b % 3 == 0 {
                case.key[(b % n_entries) * stride..][..stride].to_vec()
            } else {
                words(seed ^ (b as u64).wrapping_mul(0x1234_5679), stride)
            };
            for (w, &word) in input.iter().enumerate() {
                lanes[w * n_samples + b] = word;
            }
        }

        let collect = |kernel: Kernel| {
            let mut diffs = vec![0u64; simd::BLOCK * n_samples];
            let mut matched = Vec::new();
            let mut hits: Vec<(u32, Vec<u32>)> = Vec::new();
            view.scan_lanes_with_kernel(
                &lanes,
                n_samples,
                kernel,
                &mut diffs,
                &mut matched,
                |id, m| hits.push((id, m.to_vec())),
            );
            hits
        };
        let reference = collect(Kernel::Scalar);
        for kernel in Kernel::all_supported() {
            let got = collect(kernel);
            prop_assert_eq!(
                &got,
                &reference,
                "batched kernel {} diverged (seed {seed}, stride {stride}, \
                 {} entries, {} samples)",
                kernel,
                n_entries,
                n_samples
            );
        }

        // The entry-major stream regroups into the per-sample scalar scan.
        for b in 0..n_samples {
            let sample_words: Vec<u64> =
                (0..stride).map(|w| lanes[w * n_samples + b]).collect();
            let input = mask_from_words(&sample_words);
            let expected = scan_ids(&view, &input, Kernel::Scalar);
            let got: Vec<u32> = reference
                .iter()
                .filter(|(_, m)| m.contains(&(b as u32)))
                .map(|(id, _)| *id)
                .collect();
            prop_assert_eq!(got, expected, "sample {} (seed {seed})", b);
        }
    }

    /// A view without the blocked layout silently degrades to the scalar
    /// path no matter which kernel is requested — same matches, same order.
    #[test]
    fn missing_blocked_layout_degrades_to_scalar(
        seed in any::<u64>(),
        stride in 1usize..=3,
        n_entries in 0usize..=9,
    ) {
        let case = Case::build(seed, stride, n_entries, false, false);
        let offsets = vec![0u32; n_entries + 1];
        let view = case.view(&offsets); // no with_blocked
        let input = mask_from_words(&words(seed ^ 0xBEEF, stride));
        let reference = scan_ids(&view, &input, Kernel::Scalar);
        for kernel in Kernel::all_supported() {
            prop_assert_eq!(scan_ids(&view, &input, kernel), reference.clone());
        }
    }
}
