//! Property-based enforcement of Bolt's safety property (§4, footnote 1):
//! "transformations preserve classification results for all inputs".
//!
//! Random forests are trained on random datasets, compiled at random
//! clustering thresholds, and checked for exact classification equivalence
//! on both in-distribution and adversarial inputs.

use bolt_core::{BoltConfig, BoltForest, PartitionPlan, PartitionedBolt};
use bolt_forest::{Dataset, ForestConfig, RandomForest};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a dataset from proptest-chosen parameters.
fn make_dataset(n_features: usize, n_classes: usize, n_samples: usize, seed: u64) -> Dataset {
    let mut rows = Vec::with_capacity(n_samples);
    let mut labels = Vec::with_capacity(n_samples);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..n_samples {
        let row: Vec<f32> = (0..n_features)
            .map(|_| (next() % 16) as f32 - 4.0)
            .collect();
        // Label depends on a couple of features plus noise so trees are
        // non-trivial but learnable.
        let raw = row[0] + row[n_features / 2] * 0.5 + ((next() % 4) as f32 - 1.5);
        labels.push(((raw.abs() as u32) % n_classes as u32).min(n_classes as u32 - 1));
        rows.push(row);
    }
    Dataset::from_rows(rows, labels, n_classes).expect("generated rows are consistent")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bolt classification equals forest prediction for every training
    /// sample and a grid of adversarial unseen samples, across random
    /// shapes, heights, tree counts, and clustering thresholds.
    #[test]
    fn bolt_is_equivalent_to_forest(
        n_features in 2usize..6,
        n_classes in 2usize..5,
        n_trees in 1usize..8,
        max_height in 1usize..5,
        threshold in 0usize..10,
        seed in any::<u64>(),
    ) {
        let data = make_dataset(n_features, n_classes, 80, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(n_trees)
                .with_max_height(max_height)
                .with_seed(seed ^ 0xABCD),
        );
        let config = BoltConfig::default().with_cluster_threshold(threshold);
        let bolt = BoltForest::compile(&forest, &config).expect("compiles");

        for (sample, _) in data.iter() {
            prop_assert_eq!(bolt.classify(sample), forest.predict(sample));
        }
        // Adversarial off-grid inputs, including extremes.
        for i in 0..40 {
            let sample: Vec<f32> = (0..n_features)
                .map(|f| (i as f32 * 0.77 + f as f32 * 1.31) % 23.0 - 11.0)
                .collect();
            prop_assert_eq!(bolt.classify(&sample), forest.predict(&sample));
        }
        let extremes = vec![f32::MAX; n_features];
        prop_assert_eq!(bolt.classify(&extremes), forest.predict(&extremes));
        let lows = vec![f32::MIN; n_features];
        prop_assert_eq!(bolt.classify(&lows), forest.predict(&lows));
    }

    /// The clustering threshold never changes results, only layout.
    #[test]
    fn thresholds_agree_with_each_other(
        seed in any::<u64>(),
        t1 in 0usize..12,
        t2 in 0usize..12,
    ) {
        let data = make_dataset(4, 3, 60, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(5).with_max_height(3).with_seed(seed),
        );
        let a = BoltForest::compile(
            &forest,
            &BoltConfig::default().with_cluster_threshold(t1),
        ).expect("compiles");
        let b = BoltForest::compile(
            &forest,
            &BoltConfig::default().with_cluster_threshold(t2),
        ).expect("compiles");
        for (sample, _) in data.iter().take(40) {
            prop_assert_eq!(a.classify(sample), b.classify(sample));
        }
    }

    /// Partitioned inference (any d×t plan) matches the original forest.
    #[test]
    fn partitions_preserve_results(
        seed in any::<u64>(),
        dict_parts in 1usize..5,
        table_parts in 1usize..5,
    ) {
        let data = make_dataset(4, 3, 60, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(6).with_max_height(4).with_seed(seed),
        );
        let bolt = Arc::new(
            BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles"),
        );
        let plan = PartitionPlan::new(dict_parts, table_parts);
        prop_assume!(table_parts <= bolt.table().capacity());
        let partitioned = PartitionedBolt::new(bolt, plan).expect("valid plan");
        for (sample, _) in data.iter().take(25) {
            prop_assert_eq!(partitioned.classify(sample), forest.predict(sample));
        }
    }

    /// Vote totals always equal the tree count (each tree votes once).
    #[test]
    fn vote_conservation(seed in any::<u64>(), n_trees in 1usize..10) {
        let data = make_dataset(3, 2, 50, seed);
        let forest = RandomForest::train(
            &data,
            &ForestConfig::new(n_trees).with_max_height(3).with_seed(seed),
        );
        let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
        for (sample, _) in data.iter().take(20) {
            let votes = bolt.votes_for_bits(&bolt.encode(sample));
            prop_assert_eq!(votes.iter().sum::<f64>(), n_trees as f64);
        }
    }
}

/// NaN and infinity inputs classify identically to the original forest
/// (NaN fails every `<=` test, so traversal always takes the false edge —
/// and so does Bolt's encoder).
#[test]
fn non_finite_inputs_stay_equivalent() {
    let data = make_dataset(4, 3, 60, 0xD00D);
    let forest = RandomForest::train(&data, &ForestConfig::new(6).with_max_height(4).with_seed(3));
    let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
    let specials = [
        vec![f32::NAN, 0.0, 1.0, 2.0],
        vec![0.0, f32::NAN, f32::NAN, f32::NAN],
        vec![f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 0.0],
        vec![f32::NAN; 4],
    ];
    for sample in &specials {
        assert_eq!(bolt.classify(sample), forest.predict(sample), "{sample:?}");
    }
}

/// A deterministic end-to-end check on the realistic MNIST-shaped workload.
#[test]
fn mnist_like_end_to_end_equivalence() {
    let train = bolt_data::mnist_like(400, 1);
    let test = bolt_data::mnist_like(200, 2);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(10).with_max_height(4).with_seed(42),
    );
    let bolt = BoltForest::compile(&forest, &BoltConfig::default()).expect("compiles");
    for (sample, _) in train.iter().chain(test.iter()) {
        assert_eq!(bolt.classify(sample), forest.predict(sample));
    }
    assert_eq!(bolt.accuracy(&test), forest.accuracy(&test));
}
