//! End-to-end checks for the load generator's run-bounding modes:
//! fixed-duration runs and the reconnect-storm mix, against a live
//! in-process server on the event-loop front-end.

use bolt_baselines::ScikitLikeForest;
use bolt_bench::loadgen::{run_open_loop, OpenLoopConfig, Target};
use bolt_forest::{Dataset, ForestConfig, RandomForest};
use bolt_server::ServerBuilder;
use std::sync::Arc;
use std::time::Duration;

fn serve() -> (
    bolt_server::TcpClassificationServer,
    Vec<Vec<f32>>,
    Vec<u32>,
) {
    let rows: Vec<Vec<f32>> = (0..120)
        .map(|i| vec![(i % 6) as f32, (i % 5) as f32])
        .collect();
    let labels: Vec<u32> = rows.iter().map(|r| u32::from(r[0] > 2.0)).collect();
    let data = Dataset::from_rows(rows, labels, 2).expect("valid");
    let forest = RandomForest::train(&data, &ForestConfig::new(4).with_max_height(3).with_seed(3));
    let samples: Vec<Vec<f32>> = (0..data.len()).map(|i| data.sample(i).to_vec()).collect();
    let expected: Vec<u32> = samples.iter().map(|s| forest.predict(s)).collect();
    let server = ServerBuilder::new()
        .register("m", Arc::new(ScikitLikeForest::from_forest(&forest)))
        .bind_tcp("127.0.0.1:0")
        .expect("binds");
    (server, samples, expected)
}

#[test]
fn duration_bounds_the_run_instead_of_the_request_count() {
    let (server, samples, expected) = serve();
    let target = Target::Tcp(server.local_addr());
    let mut cfg = OpenLoopConfig::new("duration_mode", 2, 2000.0, 0);
    cfg.duration = Some(Duration::from_millis(250));
    let report = run_open_loop(&target, &samples, Some(&expected), &cfg).expect("runs");
    // The schedule stops at the deadline: ~rate × duration frames, never
    // unbounded. Allow generous slack for slow CI hosts.
    assert!(report.frames_sent > 0, "sent nothing in 250 ms");
    assert!(
        report.frames_sent <= 501,
        "sent {} frames, schedule overran the deadline",
        report.frames_sent
    );
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.wrong_class, 0);
    assert_eq!(report.responses_ok, report.frames_sent);
    server.shutdown();
}

#[test]
fn duration_caps_a_request_bounded_run_early() {
    let (server, samples, _) = serve();
    let target = Target::Tcp(server.local_addr());
    // 1M requests at 2k fps would take ~8 minutes; the 200 ms deadline
    // must cut it off.
    let mut cfg = OpenLoopConfig::new("duration_cap", 2, 2000.0, 1_000_000);
    cfg.duration = Some(Duration::from_millis(200));
    let report = run_open_loop(&target, &samples, None, &cfg).expect("runs");
    assert!(report.frames_sent < 1000, "deadline ignored");
    assert_eq!(report.protocol_errors, 0);
    server.shutdown();
}

#[test]
fn reconnect_storm_churns_connections_without_errors() {
    let (server, samples, expected) = serve();
    let target = Target::Tcp(server.local_addr());
    let mut cfg = OpenLoopConfig::new("reconnect_mode", 2, 4000.0, 120);
    cfg.reconnect_every = 3;
    let report = run_open_loop(&target, &samples, Some(&expected), &cfg).expect("runs");
    assert_eq!(report.frames_sent, 120);
    assert_eq!(report.responses_ok, 120);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.wrong_class, 0);
    // Each worker reconnects after every 3rd sent frame.
    assert_eq!(report.reconnects, 120 / 3);
    assert_eq!(server.stats().requests, 120);
    server.shutdown();
}
