//! Fig. 12 — execution-efficiency metrics (instructions, branches, branch
//! misses, cache misses) for all four platforms on MNIST (10 trees,
//! height 4, full test set).
//!
//! Hardware counters are unavailable here, so the counts come from the
//! `bolt-simcpu` substrate replaying each platform's real data-structure
//! walk (see DESIGN.md substitution #2). Expected shape: Bolt issues the
//! fewest branches and by far the fewest cache misses; Scikit is orders of
//! magnitude worse on instructions and cache misses.
//!
//! Run: `cargo run -p bolt-bench --release --bin fig12_metrics`

use bolt_bench::{print_table, test_samples, train_workload};
use bolt_core::{BoltConfig, BoltForest};
use bolt_core::{CostModel, ParameterSearch};
use bolt_data::Workload;
use bolt_simcpu::instrument::{self, FpLayout, RangerLayout};
use bolt_simcpu::{hw, Counters, SimCpu};

fn main() {
    let trained = train_workload(Workload::MnistLike, 10, 4, 2000, test_samples());
    // Phase 2 first, as the paper does before measuring: pick the setting
    // with the best measured single-core latency.
    let report = ParameterSearch::new()
        .with_thresholds([0, 1, 2, 4, 8, 16])
        .with_bloom_options([0, 10])
        .with_max_cores(1)
        .with_calibration_samples(256)
        .run(&trained.forest, &trained.test, &CostModel::default())
        .expect("sweep runs");
    let tuned = report
        .trials
        .iter()
        .filter(|t| t.measured_ns.is_some())
        .min_by(|a, b| {
            a.measured_ns
                .partial_cmp(&b.measured_ns)
                .expect("finite latencies")
        })
        .expect("at least one measured trial");
    println!(
        "phase-2 pick: threshold={} bloom={} ({:.3} µs measured)",
        tuned.threshold,
        tuned.bloom_bits,
        tuned.measured_ns.expect("measured") / 1000.0
    );
    let bolt = BoltForest::compile(
        &trained.forest,
        &BoltConfig::default()
            .with_cluster_threshold(tuned.threshold)
            .with_bloom_bits_per_key(tuned.bloom_bits),
    )
    .expect("MNIST forest is table-mappable");
    let ranger_layout = RangerLayout::new(&trained.forest);
    let fp_layout = FpLayout::new(&trained.forest, &trained.train);
    let profile = hw::xeon_e5_2650_v4();

    let mut bolt_cpu = SimCpu::new(&profile);
    let mut scikit_cpu = SimCpu::new(&profile);
    let mut ranger_cpu = SimCpu::new(&profile);
    let mut fp_cpu = SimCpu::new(&profile);
    for (i, (sample, _)) in trained.test.iter().enumerate() {
        instrument::run_bolt(&bolt, &bolt.encode(sample), &mut bolt_cpu);
        instrument::run_scikit(&trained.forest, sample, i as u64, &mut scikit_cpu);
        instrument::run_ranger(&trained.forest, &ranger_layout, sample, &mut ranger_cpu);
        instrument::run_forest_packing(&trained.forest, &fp_layout, sample, &mut fp_cpu);
    }

    let named: Vec<(&str, Counters)> = vec![
        ("BOLT", bolt_cpu.counters()),
        ("Scikit", scikit_cpu.counters()),
        ("Ranger", ranger_cpu.counters()),
        ("FP", fp_cpu.counters()),
    ];
    let rows: Vec<Vec<String>> = named
        .iter()
        .map(|(name, c)| {
            vec![
                (*name).to_owned(),
                format!("{}", c.instructions),
                format!("{}", c.branches),
                format!("{}", c.branch_misses),
                format!("{}", c.l1_misses),
                format!("{}", c.l2_misses),
                format!("{}", c.cache_misses),
                format!(
                    "{:.1}%",
                    100.0 * c.branch_misses as f64 / c.branches.max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 12: execution metrics over {} MNIST samples [10 trees, height 4]",
            trained.test.len()
        ),
        &[
            "platform",
            "instructions",
            "branches",
            "branch misses",
            "L1 misses",
            "L2 misses",
            "LLC misses",
            "miss %",
        ],
        &rows,
    );
    println!(
        "\nnote: Scikit includes a conservative interpreter-overhead model \
         ({} instr + {} heap lines per call); see EXPERIMENTS.md.",
        instrument::PY_CALL_INSTRUCTIONS,
        instrument::PY_TOUCH_LINES
    );
}
