//! Ad-hoc hot-path timing breakdown (developer tool, not a paper figure).
//!
//! Run: `cargo run -p bolt-bench --release --bin profile_hotpath`

use bolt_bench::train_workload;
use bolt_core::{BoltConfig, BoltForest};
use bolt_data::Workload;
use std::time::Instant;

fn main() {
    let trained = train_workload(Workload::MnistLike, 10, 4, 2000, 2000);
    let samples: Vec<&[f32]> = (0..trained.test.len())
        .map(|i| trained.test.sample(i))
        .collect();
    let n = samples.len();
    let mut sink = 0u64;

    for threshold in [0usize, 1, 2, 4, 8, 16] {
        for bloom in [0usize, 10] {
            let bolt = BoltForest::compile(
                &trained.forest,
                &BoltConfig::default()
                    .with_cluster_threshold(threshold)
                    .with_bloom_bits_per_key(bloom),
            )
            .expect("compiles");
            let mut scratch = bolt.scratch();
            // Warm.
            for s in samples.iter().take(64) {
                sink = sink.wrapping_add(u64::from(bolt.classify_with(s, &mut scratch)));
            }
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let start = Instant::now();
                for s in &samples {
                    sink = sink.wrapping_add(u64::from(bolt.classify_with(s, &mut scratch)));
                }
                best = best.min(start.elapsed().as_nanos() as f64 / n as f64);
            }
            let (_, stats) = bolt.classify_with_stats(samples[0]);
            println!(
                "threshold={threshold:<2} bloom={bloom:<2} -> {best:7.1} ns  entries={:<4} cells={:<5} matched~{}",
                bolt.dictionary().len(),
                bolt.table().n_cells(),
                stats.entries_matched,
            );
        }
    }
    std::hint::black_box(sink);
}
