//! Extra experiment (beyond the paper's figures): the batching trade-off of
//! §2.1 — "when batching queries Ranger can benefit from its optimizations
//! and achieve very low response times", whereas Bolt targets the no-batching
//! service regime. Compares single-sample vs amortized-batch cost for
//! Ranger-style traversal and for Bolt (sequential and sample-parallel).
//!
//! Run: `cargo run -p bolt-bench --release --bin extra_batching`

use bolt_baselines::{InferenceEngine, RangerLikeForest};
use bolt_bench::{fmt_us, print_table, test_samples, train_workload, Platforms};
use bolt_core::{PartitionPlan, PartitionedBolt};
use bolt_data::Workload;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let trained = train_workload(Workload::MnistLike, 10, 4, 2000, test_samples());
    let platforms = Platforms::build_tuned(&trained);
    let ranger = RangerLikeForest::from_forest(&trained.forest);
    let samples: Vec<&[f32]> = (0..trained.test.len())
        .map(|i| trained.test.sample(i))
        .collect();
    let n = samples.len() as f64;

    let time_it = |f: &dyn Fn()| {
        f(); // warm
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_nanos() as f64 / n);
        }
        best
    };

    let ranger_single = time_it(&|| {
        for s in &samples {
            std::hint::black_box(ranger.classify(s));
        }
    });
    let ranger_batch = time_it(&|| {
        std::hint::black_box(ranger.classify_batch(&samples));
    });
    let bolt_single = time_it(&|| {
        let mut scratch = platforms.bolt.scratch();
        for s in &samples {
            std::hint::black_box(platforms.bolt.classify_with(s, &mut scratch));
        }
    });
    let partitioned = PartitionedBolt::new(Arc::clone(&platforms.bolt), PartitionPlan::new(2, 2))
        .expect("valid plan");
    let bolt_parallel_batch = time_it(&|| {
        std::hint::black_box(partitioned.classify_batch(&samples));
    });

    print_table(
        "Batching trade-off (amortized µs/sample) [MNIST, 10 trees, height 4]",
        &["configuration", "µs/sample"],
        &[
            vec![
                "Ranger, single-sample service".into(),
                fmt_us(ranger_single),
            ],
            vec![
                "Ranger, full-batch (its §2.1 strength)".into(),
                fmt_us(ranger_batch),
            ],
            vec!["BOLT, single-sample service".into(), fmt_us(bolt_single)],
            vec![
                "BOLT, sample-parallel batch (4 workers)".into(),
                fmt_us(bolt_parallel_batch),
            ],
        ],
    );
    println!(
        "\nthe paper's positioning: batching favours traversal engines, but \
         \"inference workloads increasingly demand low response times and \
         cannot wait to batch queries\" (§1)."
    );
}
