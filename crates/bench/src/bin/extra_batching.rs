//! Extra experiment (beyond the paper's figures): the batching trade-off of
//! §2.1 — "when batching queries Ranger can benefit from its optimizations
//! and achieve very low response times", whereas Bolt targets the no-batching
//! service regime. Compares single-sample vs amortized-batch cost for
//! Ranger-style traversal and for Bolt (sequential, entry-major batched,
//! thread-sharded, and sample-parallel), then sweeps the entry-major kernel
//! across batch sizes.
//!
//! Run: `cargo run -p bolt-bench --release --bin extra_batching`

use bolt_baselines::{InferenceEngine, RangerLikeForest};
use bolt_bench::{fmt_us, print_table, test_samples, train_workload, Platforms};
use bolt_core::{PartitionPlan, PartitionedBolt};
use bolt_data::Workload;
use std::sync::Arc;
use std::time::Instant;

fn batch_size_sweep(bolt: &bolt_core::BoltForest, samples: &[&[f32]], tag: &str) {
    let mut rows = Vec::new();
    let scratch = std::cell::RefCell::new(bolt.scratch());
    let batch_scratch = std::cell::RefCell::new(bolt.batch_scratch());
    for batch in [1usize, 8, 64, 512] {
        let slice = &samples[..batch.min(samples.len())];
        let b = slice.len() as f64;
        let time_batch = |f: &dyn Fn()| {
            f(); // warm
            let mut best = f64::INFINITY;
            // Repeat small batches so each timing covers >= ~512 samples.
            let reps = (512 / slice.len()).max(1);
            for _ in 0..5 {
                let start = Instant::now();
                for _ in 0..reps {
                    f();
                }
                best = best.min(start.elapsed().as_nanos() as f64 / (reps as f64 * b));
            }
            best
        };
        let per_sample = time_batch(&|| {
            let mut scratch = scratch.borrow_mut();
            for s in slice {
                std::hint::black_box(bolt.classify_with(s, &mut scratch));
            }
        });
        let entry_major = time_batch(&|| {
            let mut out = Vec::new();
            bolt.classify_batch_with(slice, &mut batch_scratch.borrow_mut(), &mut out);
            std::hint::black_box(out.len());
        });
        let sharded = time_batch(&|| {
            std::hint::black_box(bolt.classify_batch_sharded(slice, 4));
        });
        rows.push(vec![
            batch.to_string(),
            fmt_us(per_sample),
            fmt_us(entry_major),
            format!("{:.2}x", per_sample / entry_major),
            fmt_us(sharded),
            format!("{:.2}x", per_sample / sharded),
        ]);
    }
    print_table(
        &format!("Entry-major kernel by batch size (amortized µs/sample) [{tag}]"),
        &[
            "batch",
            "per-sample",
            "entry-major",
            "speedup",
            "sharded(4)",
            "speedup",
        ],
        &rows,
    );
}

fn main() {
    let trained = train_workload(Workload::MnistLike, 10, 4, 2000, test_samples());
    let platforms = Platforms::build_tuned(&trained);
    let ranger = RangerLikeForest::from_forest(&trained.forest);
    let samples: Vec<&[f32]> = (0..trained.test.len())
        .map(|i| trained.test.sample(i))
        .collect();
    let n = samples.len() as f64;

    let time_it = |f: &dyn Fn()| {
        f(); // warm
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_nanos() as f64 / n);
        }
        best
    };

    let ranger_single = time_it(&|| {
        for s in &samples {
            std::hint::black_box(ranger.classify(s));
        }
    });
    let ranger_batch = time_it(&|| {
        std::hint::black_box(ranger.classify_batch(&samples));
    });
    let bolt_single = time_it(&|| {
        let mut scratch = platforms.bolt.scratch();
        for s in &samples {
            std::hint::black_box(platforms.bolt.classify_with(s, &mut scratch));
        }
    });
    let bolt_entry_major = time_it(&|| {
        let mut scratch = platforms.bolt.batch_scratch();
        let mut out = Vec::new();
        platforms
            .bolt
            .classify_batch_with(&samples, &mut scratch, &mut out);
        std::hint::black_box(out.len());
    });
    let bolt_sharded = time_it(&|| {
        std::hint::black_box(platforms.bolt.classify_batch_sharded(&samples, 4));
    });
    let partitioned = PartitionedBolt::new(Arc::clone(&platforms.bolt), PartitionPlan::new(2, 2))
        .expect("valid plan");
    let bolt_parallel_batch = time_it(&|| {
        std::hint::black_box(partitioned.classify_batch(&samples));
    });

    print_table(
        "Batching trade-off (amortized µs/sample) [MNIST, 10 trees, height 4]",
        &["configuration", "µs/sample"],
        &[
            vec![
                "Ranger, single-sample service".into(),
                fmt_us(ranger_single),
            ],
            vec![
                "Ranger, full-batch (its §2.1 strength)".into(),
                fmt_us(ranger_batch),
            ],
            vec!["BOLT, single-sample service".into(), fmt_us(bolt_single)],
            vec![
                "BOLT, entry-major batch (1 thread)".into(),
                fmt_us(bolt_entry_major),
            ],
            vec![
                "BOLT, entry-major sharded (4 threads)".into(),
                fmt_us(bolt_sharded),
            ],
            vec![
                "BOLT, sample-parallel batch (4 workers)".into(),
                fmt_us(bolt_parallel_batch),
            ],
        ],
    );

    // Entry-major kernel across batch sizes: where does amortizing the
    // dictionary's mask/key loads start paying off? Swept on two forests:
    // the tuned service forest above (encode-bound, small dictionary) and a
    // scan-bound forest compiled at threshold 0 (one dictionary entry per
    // path), where the entry-major inversion has the most to amortize.
    batch_size_sweep(&platforms.bolt, &samples, "tuned service forest");
    let scan_heavy = bolt_core::BoltForest::compile(
        &trained.forest,
        &bolt_core::BoltConfig::default().with_cluster_threshold(0),
    )
    .expect("threshold-0 forest compiles");
    batch_size_sweep(&scan_heavy, &samples, "scan-bound forest (threshold 0)");

    // A deeper forest (height 8) stresses the scan hardest: ~3k dictionary
    // entries whose mask/key words dominate per-sample cost, so the
    // entry-major amortization shows its full effect.
    let deep = train_workload(Workload::LstwLike, 20, 8, 2000, test_samples());
    let deep_bolt = bolt_core::BoltForest::compile(
        &deep.forest,
        &bolt_core::BoltConfig::default().with_cluster_threshold(0),
    )
    .expect("threshold-0 forest compiles");
    let deep_samples: Vec<&[f32]> = (0..deep.test.len()).map(|i| deep.test.sample(i)).collect();
    batch_size_sweep(
        &deep_bolt,
        &deep_samples,
        "deep scan-bound forest (LSTW, 20 trees, height 8, threshold 0)",
    );

    println!(
        "\nthe paper's positioning: batching favours traversal engines, but \
         \"inference workloads increasingly demand low response times and \
         cannot wait to batch queries\" (§1). the entry-major kernel closes \
         that gap when queries do arrive together."
    );
}
