//! Fig. 15 — two-layer deep forests (gcForest style), Bolt vs Scikit, on
//! MNIST (heights 5, 15, 20) and LSTW (heights 5, 8, 12).
//!
//! Expected shape: execution times are higher than single random forests
//! (two layers plus the feature copy) but stay in single-digit microseconds
//! for modest forests, and Bolt outperforms Scikit on every deep forest,
//! degrading with tree height.
//!
//! Run: `cargo run -p bolt-bench --release --bin fig15_deep_forest`

use bolt_baselines::ScikitLikeForest;
use bolt_bench::{fmt_us, print_table, test_samples};
use bolt_core::{BoltConfig, DeepBolt};
use bolt_data::Workload;
use bolt_forest::{DeepForest, DeepForestConfig, ForestConfig};
use std::time::Instant;

/// Scikit-style deep forest: each layer is a scikit-like engine; layer
/// outputs are copied and appended exactly as in the Bolt pipeline.
struct ScikitDeep {
    layers: Vec<ScikitLikeForest>,
    n_features: usize,
}

impl ScikitDeep {
    fn new(deep: &DeepForest) -> Self {
        Self {
            layers: deep
                .layers()
                .iter()
                .map(ScikitLikeForest::from_forest)
                .collect(),
            n_features: deep.n_features(),
        }
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        let mut augmented = sample[..self.n_features].to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let proba = layer.predict_proba(&augmented);
            if i + 1 == self.layers.len() {
                let mut best = 0usize;
                for (c, &p) in proba.iter().enumerate().skip(1) {
                    if p > proba[best] {
                        best = c;
                    }
                }
                return best as u32;
            }
            augmented.extend(proba.iter().map(|&p| p as f32));
        }
        unreachable!("at least one layer")
    }
}

fn main() {
    let n_test = test_samples().min(1000);
    let mut rows = Vec::new();
    let settings: [(Workload, &[usize]); 2] = [
        (Workload::MnistLike, &[5, 15, 20]),
        (Workload::LstwLike, &[5, 8, 12]),
    ];
    for (workload, heights) in settings {
        for &height in heights {
            let train = bolt_data::generate(workload, 1200, 0xBEEF);
            let test = bolt_data::generate(workload, n_test, 0xF00D);
            let cfg = DeepForestConfig::two_layers(
                ForestConfig::new(5).with_max_height(height).with_seed(42),
            );
            let deep = DeepForest::train(&train, &cfg).expect("trains");
            // Deeper layers need tight clustering to stay table-mappable.
            let bolt_cfg =
                BoltConfig::default().with_cluster_threshold(if height <= 6 { 2 } else { 0 });
            let compiled = match DeepBolt::compile(&deep, &bolt_cfg) {
                Ok(c) => c,
                Err(e) => {
                    rows.push(vec![
                        workload.name().to_owned(),
                        format!("{height}"),
                        format!("n/a ({e})"),
                        "-".to_owned(),
                        "-".to_owned(),
                    ]);
                    continue;
                }
            };
            let scikit = ScikitDeep::new(&deep);

            let bolt_ns = time_deep(|s| compiled.classify(s), &test);
            let scikit_ns = time_deep(|s| scikit.classify(s), &test);
            rows.push(vec![
                workload.name().to_owned(),
                format!("{height}"),
                fmt_us(bolt_ns),
                fmt_us(scikit_ns),
                format!("{:.1}x", scikit_ns / bolt_ns),
            ]);
        }
    }
    print_table(
        "Figure 15: deep forest (2 layers, 5 trees/layer) µs/sample",
        &["dataset", "height", "BOLT", "Scikit", "speedup"],
        &rows,
    );
}

fn time_deep<F: Fn(&[f32]) -> u32>(f: F, test: &bolt_forest::Dataset) -> f64 {
    let mut sink = 0u32;
    for (sample, _) in test.iter().take(32) {
        sink = sink.wrapping_add(f(sample));
    }
    let start = Instant::now();
    for (sample, _) in test.iter() {
        sink = sink.wrapping_add(f(sample));
    }
    std::hint::black_box(sink);
    start.elapsed().as_nanos() as f64 / test.len() as f64
}
