//! Fig. 9 — Bolt execution time across architectures (MNIST, 10 trees,
//! height 4).
//!
//! The paper shows Bolt's average response time in the hundreds of
//! nanoseconds on an on-prem Xeon E5-2650 v4 and two Google Cloud E2
//! instances. Per DESIGN.md's substitution note, the three machines are
//! reproduced as hardware profiles driving the CPU-metrics simulator; the
//! host machine's wall clock is printed alongside for reference.
//!
//! Run: `cargo run -p bolt-bench --release --bin fig09_architectures`

use bolt_bench::{
    fmt_us, print_table, test_samples, time_engine_hot_ns, train_workload, BoltAdapter,
};
use bolt_core::{BoltConfig, BoltForest};
use bolt_data::Workload;
use bolt_simcpu::{hw, instrument, SimCpu};

fn main() {
    let trained = train_workload(Workload::MnistLike, 10, 4, 2000, test_samples());
    let bolt = BoltForest::compile(
        &trained.forest,
        &BoltConfig::default().with_cluster_threshold(2),
    )
    .expect("MNIST forest is table-mappable");

    let mut rows = Vec::new();
    for profile in hw::all_profiles() {
        let mut cpu = SimCpu::new(&profile);
        // Warm-up then steady-state measurement.
        for (sample, _) in trained.test.iter().take(64) {
            instrument::run_bolt(&bolt, &bolt.encode(sample), &mut cpu);
        }
        let warm_ns = cpu.elapsed_ns();
        let warm_n = 64.min(trained.test.len());
        for (sample, _) in trained.test.iter() {
            instrument::run_bolt(&bolt, &bolt.encode(sample), &mut cpu);
        }
        let per_sample_ns = (cpu.elapsed_ns() - warm_ns) / trained.test.len() as f64;
        let _ = warm_n;
        rows.push(vec![
            profile.name.clone(),
            fmt_us(per_sample_ns),
            format!("{}", profile.cores),
            format!("{}", profile.llc_bytes / (1024 * 1024)),
            format!("{:.2}", profile.freq_ghz),
        ]);
    }

    print_table(
        "Figure 9: Bolt avg response time by architecture [MNIST, 10 trees, height 4]",
        &[
            "architecture",
            "modeled µs/sample",
            "cores",
            "LLC MiB",
            "GHz",
        ],
        &rows,
    );

    let host_ns = time_engine_hot_ns(&BoltAdapter::new(&bolt), &trained.test);
    println!(
        "\nhost wall-clock reference: {} µs/sample on this machine",
        fmt_us(host_ns)
    );
}
