//! Fig. 10 — Bolt vs Scikit vs Ranger vs Forest Packing on a small random
//! forest (MNIST, 10 trees, height 4, single core, no batching).
//!
//! The paper: "Bolt can process samples in an average time of 0.4µs against
//! the 0.9µs of Forest Packing, while Scikit-Learn achieves 1460µs and
//! Ranger 160µs." The *shape* to reproduce: BOLT < FP < Ranger < Scikit,
//! with Bolt at least ~2× ahead of FP. (The Scikit/Ranger columns here lack
//! their Python/R interpreter overhead, so their gap is smaller than the
//! paper's; see EXPERIMENTS.md.)
//!
//! Run: `cargo run -p bolt-bench --release --bin fig10_platforms`

use bolt_bench::{
    fmt_us, print_table, test_samples, time_engine_hot_ns, train_workload, Platforms,
};
use bolt_data::Workload;

fn main() {
    let trained = train_workload(Workload::MnistLike, 10, 4, 2000, test_samples());
    let platforms = Platforms::build_tuned(&trained);

    let mut results: Vec<(&'static str, f64)> = platforms
        .engines()
        .iter()
        .map(|(name, engine)| (*name, time_engine_hot_ns(engine.as_ref(), &trained.test)))
        .collect();
    let bolt_ns = results
        .iter()
        .find(|(n, _)| *n == "BOLT")
        .map(|&(_, ns)| ns)
        .expect("BOLT timed");

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(name, ns)| vec![name.to_owned(), fmt_us(ns), format!("{:.1}x", ns / bolt_ns)])
        .collect();
    print_table(
        "Figure 10: avg response time, small forest [MNIST, 10 trees, height 4]",
        &["platform", "µs/sample", "vs BOLT"],
        &rows,
    );

    results.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite latencies"));
    println!(
        "\nfastest to slowest: {}",
        results
            .iter()
            .map(|&(n, _)| n)
            .collect::<Vec<_>>()
            .join(" < ")
    );
    println!(
        "samples: {}   bolt dictionary entries: {}   table cells: {}",
        trained.test.len(),
        platforms.bolt.dictionary().len(),
        platforms.bolt.table().n_cells(),
    );
}
