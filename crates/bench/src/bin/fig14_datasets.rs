//! Fig. 14 — Bolt vs Scikit across datasets: LSTW (heights 5, 8) and Yelp
//! (heights 4, 6, 8).
//!
//! Expected shape: Bolt achieves sub-microsecond-scale response for modest
//! forests on both heterogeneous (LSTW) and sparse NLP (Yelp) workloads,
//! orders below the Scikit-style traversal.
//!
//! Run: `cargo run -p bolt-bench --release --bin fig14_datasets`

use bolt_baselines::{InferenceEngine, ScikitLikeForest};
use bolt_bench::{
    fmt_us, print_table, test_samples, time_engine_hot_ns, train_workload, BoltAdapter, Platforms,
    TrainedWorkload,
};
use bolt_core::{BoltConfig, BoltForest, BoltScratch};
use bolt_data::Workload;
use bolt_forest::{Quantizer, RandomForest};

/// Bolt behind the paper's §5 byte quantization: the forest trains on the
/// quantized grid (collapsing thresholds onto shared predicates) and the
/// timed path includes the per-sample quantization a service would do.
struct QuantizedBolt {
    quantizer: Quantizer,
    bolt: BoltForest,
    scratch: std::sync::Mutex<BoltScratch>,
}

impl QuantizedBolt {
    fn build(trained: &TrainedWorkload, bits: u32) -> Self {
        let quantizer = Quantizer::fit(&trained.train, bits);
        let q_train = quantizer.apply(&trained.train);
        let q_forest = RandomForest::train(
            &q_train,
            &bolt_forest::ForestConfig::new(trained.forest.n_trees())
                .with_max_height(trained.forest.height())
                .with_seed(42),
        );
        // Mini Phase-2 over thresholds for the quantized forest.
        let calibration: Vec<Vec<f32>> = (0..trained.test.len().min(64))
            .map(|i| quantizer.apply_sample(trained.test.sample(i)))
            .collect();
        let mut best: Option<(f64, BoltForest)> = None;
        for threshold in [0usize, 1, 2, 4, 8] {
            let Ok(bolt) = BoltForest::compile(
                &q_forest,
                &BoltConfig::default()
                    .with_cluster_threshold(threshold)
                    .with_bloom_bits_per_key(0),
            ) else {
                continue;
            };
            let mut scratch = bolt.scratch();
            let start = std::time::Instant::now();
            let mut sink = 0u32;
            for s in &calibration {
                sink = sink.wrapping_add(bolt.classify_with(s, &mut scratch));
            }
            std::hint::black_box(sink);
            let ns = start.elapsed().as_nanos() as f64;
            if best.as_ref().is_none_or(|(b, _)| ns < *b) {
                best = Some((ns, bolt));
            }
        }
        let (_, bolt) = best.expect("at least one threshold compiles");
        let scratch = std::sync::Mutex::new(bolt.scratch());
        Self {
            quantizer,
            bolt,
            scratch,
        }
    }
}

impl InferenceEngine for QuantizedBolt {
    fn name(&self) -> &'static str {
        "BOLT-q8"
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        let quantized = self.quantizer.apply_sample(sample);
        let mut scratch = self.scratch.lock().expect("scratch mutex");
        self.bolt.classify_with(&quantized, &mut scratch)
    }
}

fn main() {
    let n_test = test_samples();
    let mut rows = Vec::new();
    // The paper's Fig. 14 x-axis: LSTW heights {5, 8}, YELP heights {4, 6, 8}.
    let settings: [(Workload, &[usize]); 2] = [
        (Workload::LstwLike, &[5, 8]),
        (Workload::YelpLike, &[4, 6, 8]),
    ];
    for (workload, heights) in settings {
        for &height in heights {
            let trained = train_workload(workload, 10, height, 2000, n_test);
            let platforms = Platforms::build_tuned(&trained);
            let scikit = ScikitLikeForest::from_forest(&trained.forest);
            let quantized = QuantizedBolt::build(&trained, 8);
            let bolt_ns = time_engine_hot_ns(&BoltAdapter::new(&platforms.bolt), &trained.test);
            let q_ns = time_engine_hot_ns(&quantized, &trained.test);
            let scikit_ns = time_engine_hot_ns(&scikit, &trained.test);
            rows.push(vec![
                workload.name().to_owned(),
                format!("{height}"),
                fmt_us(bolt_ns),
                fmt_us(q_ns),
                fmt_us(scikit_ns),
                format!("{:.1}x", scikit_ns / q_ns.min(bolt_ns)),
            ]);
        }
    }
    print_table(
        "Figure 14: µs/sample by dataset and tree height [10 trees]",
        &["dataset", "height", "BOLT", "BOLT-q8", "Scikit", "speedup"],
        &rows,
    );
    println!(
        "\nBOLT-q8 = Bolt behind the paper's §5 byte quantization (forest \
         retrained on an 8-bit grid; per-sample quantization included in the \
         timed path)."
    );
}
