//! Fig. 11 — latency scaling with (A) maximum tree height and (B) number
//! of trees, for all four platforms (MNIST).
//!
//! Expected shapes from the paper: Bolt wins at shallow heights but Forest
//! Packing overtakes it as height grows past ~8 (lookup tables and
//! dictionaries balloon with depth); when the *tree count* grows at fixed
//! height, Bolt's advantage persists across all settings because paths grow
//! linearly.
//!
//! Run: `cargo run -p bolt-bench --release --bin fig11_scaling [-- height|trees]`

use bolt_bench::{
    fmt_us, print_table, test_samples, time_engine_hot_ns, train_workload, Platforms,
};
use bolt_data::Workload;

/// The paper's Fig. 11A x-axis.
const HEIGHTS: [usize; 5] = [4, 5, 6, 8, 10];
/// The paper's Fig. 11B x-axis.
const TREE_COUNTS: [usize; 6] = [10, 14, 18, 22, 26, 30];

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let n_test = test_samples();
    if mode == "height" || mode == "all" {
        let mut rows = Vec::new();
        for height in HEIGHTS {
            let trained = train_workload(Workload::MnistLike, 10, height, 2000, n_test);
            let platforms = Platforms::build_tuned(&trained);
            let mut row = vec![format!("{height}")];
            for (_, engine) in platforms.engines() {
                row.push(fmt_us(time_engine_hot_ns(engine.as_ref(), &trained.test)));
            }
            rows.push(row);
        }
        print_table(
            "Figure 11A: µs/sample by max tree height [MNIST, 10 trees]",
            &["height", "BOLT", "Scikit", "Ranger", "FP"],
            &rows,
        );
    }
    if mode == "trees" || mode == "all" {
        let mut rows = Vec::new();
        for n_trees in TREE_COUNTS {
            let trained = train_workload(Workload::MnistLike, n_trees, 4, 2000, n_test);
            let platforms = Platforms::build_tuned(&trained);
            let mut row = vec![format!("{n_trees}")];
            for (_, engine) in platforms.engines() {
                row.push(fmt_us(time_engine_hot_ns(engine.as_ref(), &trained.test)));
            }
            rows.push(row);
        }
        print_table(
            "Figure 11B: µs/sample by number of trees [MNIST, height 4]",
            &["trees", "BOLT", "Scikit", "Ranger", "FP"],
            &rows,
        );
    }
}
