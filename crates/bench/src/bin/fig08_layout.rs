//! Fig. 8 — compressed vs decompressed bytes per entry (MNIST).
//!
//! "Our implementation compresses memory-mapped data structures to reduce
//! storage demand. Results shown are for the MNIST data set." The paper's
//! bars compare Bolt's packed layouts against verbose ones for dictionary
//! masks, dictionary features, table results, and the stored dictionary
//! entry ID.
//!
//! Run: `cargo run -p bolt-bench --release --bin fig08_layout`

use bolt_bench::{print_table, train_workload};
use bolt_core::layout::PackedBolt;
use bolt_core::{BoltConfig, BoltForest, LayoutReport};
use bolt_data::Workload;

fn main() {
    // The paper's Fig. 8 forest: MNIST with 100 constituent trees (§5).
    let trained = train_workload(Workload::MnistLike, 100, 8, 2000, 200);
    let bolt = BoltForest::compile(
        &trained.forest,
        &BoltConfig::default().with_cluster_threshold(2),
    )
    .expect("MNIST forest is table-mappable");
    let report = LayoutReport::for_forest(&bolt);

    print_table(
        "Figure 8: bytes per entry, Bolt (compressed) vs decompressed [MNIST, 100 trees]",
        &["section", "BOLT", "decompressed", "ratio"],
        &[
            row(
                "Dictionary: masks",
                report.masks.compressed,
                report.masks.decompressed,
            ),
            row(
                "Dictionary: features",
                report.features.compressed,
                report.features.decompressed,
            ),
            row(
                "Lookup table: results",
                report.results.compressed,
                report.results.decompressed,
            ),
            row(
                "Lookup table: dictionary entry ID",
                report.entry_id.compressed,
                report.entry_id.decompressed,
            ),
            row(
                "Dictionary total",
                report.dictionary_compressed(),
                report.dictionary_decompressed(),
            ),
            row(
                "Lookup table total",
                report.table_compressed(),
                report.table_decompressed(),
            ),
        ],
    );

    // Prove the packed layout is executable, not just accounting.
    let packed = PackedBolt::from_bolt(&bolt);
    let mut agree = 0usize;
    for (sample, _) in trained.test.iter() {
        if packed.classify_bits(&bolt.encode(sample)) == trained.forest.predict(sample) {
            agree += 1;
        }
    }
    println!(
        "\npacked engine: {} dictionary entries, {} table cells, {} KiB packed heap",
        bolt.dictionary().len(),
        bolt.table().n_cells(),
        packed.packed_bytes() / 1024,
    );
    println!(
        "packed-engine equivalence on {} test samples: {agree}/{}",
        trained.test.len(),
        trained.test.len()
    );
}

fn row(name: &str, compressed: usize, decompressed: usize) -> Vec<String> {
    vec![
        name.to_owned(),
        format!("{compressed}"),
        format!("{decompressed}"),
        format!("{:.1}x", decompressed as f64 / compressed.max(1) as f64),
    ]
}
