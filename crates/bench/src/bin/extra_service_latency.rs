//! Extra experiment (beyond the paper's figures): end-to-end *service*
//! latency through the Fig. 7 front-end — Unix-domain-socket round trip
//! included — for every platform on the Fig. 10 forest.
//!
//! One server process hosts all four engines in its model registry; the
//! client routes to each by name over a single connection, so every
//! platform is measured through the identical socket and framing path.
//!
//! The paper excludes network delays from its timings; this binary shows
//! both numbers so the transport share is visible: `service µs` is the
//! client-observed round trip, `engine µs` is the server-side
//! receipt-to-result time the paper reports.
//!
//! Run: `cargo run -p bolt-bench --release --bin extra_service_latency`

use bolt_baselines::{ForestPackingForest, RangerLikeForest, ScikitLikeForest};
use bolt_bench::{fmt_us, print_table, test_samples, train_workload};
use bolt_data::Workload;
use bolt_server::{BoltEngine, ClassificationClient, ServerBuilder};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let trained = train_workload(Workload::MnistLike, 10, 4, 2000, test_samples().min(1000));
    let platforms = bolt_bench::Platforms::build_tuned(&trained);
    let socket = std::env::temp_dir().join(format!("bolt-svc-{}.sock", std::process::id()));
    let server = ServerBuilder::new()
        .register(
            "bolt",
            Arc::new(BoltEngine::new(Arc::clone(&platforms.bolt))),
        )
        .register(
            "scikit",
            Arc::new(ScikitLikeForest::from_forest(&trained.forest)),
        )
        .register(
            "ranger",
            Arc::new(RangerLikeForest::from_forest(&trained.forest)),
        )
        .register(
            "fp",
            Arc::new(ForestPackingForest::from_forest(
                &trained.forest,
                &trained.train,
            )),
        )
        .default_model("bolt")
        .bind_uds(&socket)
        .expect("binds");
    let mut client = ClassificationClient::connect(&socket).expect("connects");

    let mut rows = Vec::new();
    for model in ["bolt", "scikit", "ranger", "fp"] {
        for (sample, _) in trained.test.iter().take(32) {
            let _ = client.classify_with(model, sample).expect("classifies");
        }
        let before = server.stats_for(model).expect("registered");
        let start = Instant::now();
        for (sample, _) in trained.test.iter() {
            let _ = client.classify_with(model, sample).expect("classifies");
        }
        let round_trip_ns = start.elapsed().as_nanos() as f64 / trained.test.len() as f64;
        let after = server.stats_for(model).expect("registered");
        let engine_ns = (after.total_latency_ns - before.total_latency_ns) as f64
            / (after.requests - before.requests) as f64;
        let engine_name = server
            .registry()
            .resolve(Some(model))
            .expect("registered")
            .engine()
            .name()
            .to_owned();
        rows.push(vec![
            engine_name,
            fmt_us(engine_ns),
            fmt_us(round_trip_ns),
            format!(
                "{:.0}%",
                100.0 * (round_trip_ns - engine_ns) / round_trip_ns
            ),
        ]);
    }
    server.shutdown();

    print_table(
        "Service latency through the UDS front-end [MNIST, 10 trees, height 4]",
        &["platform", "engine µs", "service µs", "transport share"],
        &rows,
    );
    println!(
        "\nAll four platforms served by one process over one socket (named \
         model routing). 'engine µs' is the paper's measurement boundary \
         (receipt to aggregation); 'service µs' adds the domain-socket \
         round trip."
    );
}
