//! Fig. 13 — (A) the impact of parallelizing one sample across cores and
//! (B) the latency spread across hyper-parameter settings.
//!
//! Expected shapes from the paper: partitioning helps roughly linearly up
//! to ~4 cores for a small forest, then aggregation overhead wins; and
//! arbitrary (threshold, partition) settings spread latency by up to ≈4×,
//! motivating Phase-2 search.
//!
//! Run: `cargo run -p bolt-bench --release --bin fig13_hyperparams [-- cores|grid]`

use bolt_bench::{fmt_us, print_table, train_workload};
use bolt_core::{BoltConfig, BoltForest, ParameterSearch, PartitionPlan, PartitionedBolt};
use bolt_data::Workload;
use bolt_simcpu::hw;
use std::sync::Arc;

const CORE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let trained = train_workload(Workload::MnistLike, 10, 4, 2000, 400);
    let model = hw::xeon_e5_2650_v4().to_cost_model();

    if mode == "cores" || mode == "all" {
        let bolt = Arc::new(
            BoltForest::compile(
                &trained.forest,
                &BoltConfig::default().with_cluster_threshold(2),
            )
            .expect("compiles"),
        );
        let bits = bolt.encode(trained.test.sample(0));
        let mut rows = Vec::new();
        for cores in CORE_COUNTS {
            // Best plan for this core count (the paper picks the best
            // dictionary/table split per setting).
            let best = PartitionPlan::plans_for_cores(cores)
                .into_iter()
                .filter_map(|plan| {
                    let p = PartitionedBolt::new(Arc::clone(&bolt), plan).ok()?;
                    Some((plan, p.estimate_latency_ns(&bits, &model)))
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("at least the 1x1 plan");
            rows.push(vec![
                format!("{cores}"),
                fmt_us(best.1),
                format!("{}x{}", best.0.dict_parts, best.0.table_parts),
            ]);
        }
        print_table(
            "Figure 13A: modeled µs/sample by available cores [MNIST, 10 trees, height 4]",
            &["cores", "µs/sample", "best plan (dict x table)"],
            &rows,
        );
    }

    if mode == "grid" || mode == "all" {
        let report = ParameterSearch::new()
            .with_thresholds([0, 1, 2, 4, 8, 12, 16])
            .with_max_cores(4)
            .with_calibration_samples(128)
            .run(&trained.forest, &trained.test, &model)
            .expect("sweep runs");
        let mut rows: Vec<Vec<String>> = report
            .trials
            .iter()
            .map(|t| {
                vec![
                    format!("{}", t.threshold),
                    format!("{}", t.bloom_bits),
                    format!("{}x{}", t.plan.dict_parts, t.plan.table_parts),
                    fmt_us(t.modeled_ns),
                    t.measured_ns.map_or_else(|| "-".to_owned(), fmt_us),
                    format!("{}", t.dict_entries),
                    format!("{}", t.table_cells),
                ]
            })
            .collect();
        rows.sort_by_key(|r| {
            (
                r[0].parse::<usize>().expect("threshold column"),
                r[1].parse::<usize>().expect("bloom column"),
            )
        });
        print_table(
            "Figure 13B: latency across hyper-parameter settings",
            &[
                "threshold",
                "bloom b/k",
                "plan",
                "modeled µs",
                "measured µs",
                "dict entries",
                "table cells",
            ],
            &rows,
        );
        let best = report.best();
        println!(
            "\nbest setting: threshold={} bloom={} plan={}x{} ({} µs modeled); spread worst/best = {:.1}x",
            best.threshold,
            best.bloom_bits,
            best.plan.dict_parts,
            best.plan.table_parts,
            fmt_us(best.modeled_ns),
            report.spread()
        );
    }
}
