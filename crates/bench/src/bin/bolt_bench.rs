//! `bolt-bench` — open-loop load harness for the classification server.
//!
//! The criterion benches measure the engine in-process; this binary
//! measures the *serving path* — framing, routing, per-connection threads
//! — under concurrent open-loop load, and records the latency
//! distribution as versioned `BENCH_<workload>.json` snapshots (schema in
//! DESIGN.md) so tail behaviour is tracked across PRs, not just means.
//!
//! ```text
//! # Self-hosted suite: spin up in-process UDS + TCP servers sharing one
//! # registry, run every workload mix, write snapshots under results/:
//! bolt-bench [--out DIR] [--quick]
//!
//! # Drive an external boltd (what scripts/run_loadgen.sh does):
//! bolt-bench --connect uds:/tmp/bolt.sock --workload uds_smoke \
//!            --data lstw --requests 2000 --rate 4000 --threads 4 \
//!            [--batch N] [--model NAME]... [--error-every N] \
//!            [--duration-secs S] [--reconnect-every N] \
//!            [--hostile-every N] [--out DIR]
//!
//! # Validate snapshot files against the current schema (CI):
//! bolt-bench --check results/BENCH_uds_single.json ...
//!
//! # Compare two snapshot sets (files or directories) by workload and
//! # exit nonzero when p99 grows or throughput shrinks past the
//! # threshold (default 25 %):
//! bolt-bench --compare results OLD_DIR [--threshold PCT]
//! ```
//!
//! The suite covers the mixes the serving path must survive together:
//! single vs `ClassifyBatch` frames on both transports, named-model
//! fan-out via v2 `ClassifyWith`, deliberate unknown-model error traffic,
//! hot-swap churn re-registering a model under fire, a hostile mix
//! interleaving fuzz-shaped frames on live data connections (the server
//! must answer structured errors or drop the connection — never stall,
//! never panic), and a model-churn fleet cycling 16 directory artifacts
//! through a resident-bytes budget
//! that admits 4 (evict + re-map on nearly every routed request). Every
//! response in self-hosted mode is checked bit-identical to the direct
//! `forest.predict` answer; any mismatch or protocol error fails the run.

use bolt_baselines::ScikitLikeForest;
use bolt_bench::loadgen::{BenchSnapshot, OpenLoopConfig, Target};
use bolt_bench::{print_table, train_workload};
use bolt_core::{BoltConfig, BoltForest};
use bolt_data::Workload;
use bolt_server::{BoltEngine, ModelRegistry, ServerBuilder};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if args.first().map(String::as_str) == Some("--check") {
        check(&args[1..])
    } else if args.first().map(String::as_str) == Some("--compare") {
        compare_cmd(&args[1..])
    } else {
        match Cli::parse(&args) {
            Ok(cli) if cli.connect.is_some() => connect_run(&cli),
            Ok(cli) => suite(&cli),
            Err(e) => Err(e),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bolt-bench [--out DIR] [--quick]\n\
                 \x20      bolt-bench --connect uds:PATH|tcp:ADDR --workload NAME \
                 [--data lstw|mnist|yelp] [--samples N] [--requests N] [--rate R] \
                 [--threads N] [--batch N] [--model NAME]... [--error-every N] \
                 [--duration-secs S] [--reconnect-every N] [--hostile-every N] [--out DIR]\n\
                 \x20      bolt-bench --check FILE...\n\
                 \x20      bolt-bench --compare OLD NEW [--threshold PCT]   \
                 (OLD/NEW: BENCH_*.json files or directories)"
            );
            ExitCode::FAILURE
        }
    }
}

/// Parsed command line (suite and `--connect` modes share the knobs).
struct Cli {
    connect: Option<Target>,
    workload: String,
    data: Workload,
    samples: usize,
    requests: u64,
    rate: f64,
    threads: usize,
    batch: usize,
    models: Vec<String>,
    error_every: u64,
    duration_secs: f64,
    reconnect_every: u64,
    hostile_every: u64,
    out: PathBuf,
    quick: bool,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut cli = Self {
            connect: None,
            workload: "connect".to_owned(),
            data: Workload::LstwLike,
            samples: 256,
            requests: 0, // 0 → per-mode default
            rate: 0.0,
            threads: 4,
            batch: 1,
            models: Vec::new(),
            error_every: 0,
            duration_secs: 0.0,
            reconnect_every: 0,
            hostile_every: 0,
            out: PathBuf::from("results"),
            quick: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if arg == "--quick" {
                cli.quick = true;
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("{arg} needs a value"))?
                .clone();
            match arg.as_str() {
                "--connect" => cli.connect = Some(parse_target(&value)?),
                "--workload" => cli.workload = value,
                "--data" => {
                    cli.data = match value.as_str() {
                        "lstw" => Workload::LstwLike,
                        "mnist" => Workload::MnistLike,
                        "yelp" => Workload::YelpLike,
                        other => return Err(format!("unknown --data {other:?}")),
                    }
                }
                "--samples" => cli.samples = parse_num(&value, "--samples")?,
                "--requests" => cli.requests = parse_num(&value, "--requests")?,
                "--rate" => {
                    cli.rate = value
                        .parse::<f64>()
                        .map_err(|_| format!("--rate wants a number, got {value:?}"))?;
                    if !cli.rate.is_finite() || cli.rate <= 0.0 {
                        return Err("--rate must be a positive finite number".to_owned());
                    }
                }
                "--threads" => cli.threads = parse_num(&value, "--threads")?,
                "--batch" => cli.batch = parse_num(&value, "--batch")?,
                "--model" => cli.models.push(value),
                "--error-every" => cli.error_every = parse_num(&value, "--error-every")?,
                "--duration-secs" => {
                    cli.duration_secs = value
                        .parse::<f64>()
                        .map_err(|_| format!("--duration-secs wants a number, got {value:?}"))?;
                    if !cli.duration_secs.is_finite() || cli.duration_secs <= 0.0 {
                        return Err("--duration-secs must be a positive finite number".to_owned());
                    }
                }
                "--reconnect-every" => {
                    cli.reconnect_every = parse_num(&value, "--reconnect-every")?;
                }
                "--hostile-every" => {
                    cli.hostile_every = parse_num(&value, "--hostile-every")?;
                }
                "--out" => cli.out = PathBuf::from(value),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if cli.samples == 0 || cli.threads == 0 || cli.batch == 0 {
            return Err("--samples, --threads, and --batch must be positive".to_owned());
        }
        Ok(cli)
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} wants a number, got {value:?}"))
}

fn parse_target(value: &str) -> Result<Target, String> {
    if let Some(path) = value.strip_prefix("uds:") {
        return Ok(Target::Uds(PathBuf::from(path)));
    }
    if let Some(addr) = value.strip_prefix("tcp:") {
        return addr
            .parse()
            .map(Target::Tcp)
            .map_err(|e| format!("--connect tcp address {addr:?}: {e}"));
    }
    Err(format!(
        "--connect wants uds:PATH or tcp:ADDR, got {value:?}"
    ))
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_owned())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Validates snapshot files against the current schema; any failure makes
/// the whole invocation fail.
fn check(files: &[String]) -> Result<(), String> {
    if files.is_empty() {
        return Err("--check needs at least one file".to_owned());
    }
    let mut failures = 0usize;
    for file in files {
        match BenchSnapshot::validate_file(std::path::Path::new(file)) {
            Ok(snapshot) => println!(
                "ok {file}: workload {} ({}, {} frames, p99 {:.1} µs)",
                snapshot.workload,
                snapshot.transport,
                snapshot.frames_sent,
                snapshot.client_latency.p99_ns as f64 / 1000.0
            ),
            Err(e) => {
                eprintln!("FAIL {file}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} snapshot file(s) failed validation"));
    }
    Ok(())
}

/// `--compare OLD NEW [--threshold PCT]`: per-workload p50/p99/throughput
/// deltas between two snapshot sets, failing the invocation when any
/// workload regresses past the threshold.
fn compare_cmd(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = bolt_bench::compare::DEFAULT_THRESHOLD_PCT;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            let value = iter.next().ok_or("--threshold needs a value")?;
            threshold = value
                .parse::<f64>()
                .map_err(|_| format!("--threshold wants a number, got {value:?}"))?;
            if !threshold.is_finite() || threshold <= 0.0 {
                return Err("--threshold must be a positive finite number".to_owned());
            }
        } else {
            paths.push(arg);
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err("--compare wants exactly two paths: OLD NEW".to_owned());
    };
    let old = bolt_bench::compare::load_snapshots(std::path::Path::new(old_path.as_str()))?;
    let new = bolt_bench::compare::load_snapshots(std::path::Path::new(new_path.as_str()))?;
    let cmp = bolt_bench::compare::compare(&old, &new, threshold)?;

    let us = |ns: u64| format!("{:.1}", ns as f64 / 1000.0);
    let signed = |pct: f64| format!("{pct:+.1}%");
    let rows: Vec<Vec<String>> = cmp
        .deltas
        .iter()
        .map(|d| {
            vec![
                d.workload.clone(),
                us(d.old_p50_ns),
                us(d.new_p50_ns),
                signed(d.p50_pct),
                us(d.old_p99_ns),
                us(d.new_p99_ns),
                signed(d.p99_pct),
                format!("{:.0}", d.old_fps),
                format!("{:.0}", d.new_fps),
                signed(d.fps_pct),
                if d.regressed { "REGRESSED" } else { "ok" }.to_owned(),
            ]
        })
        .collect();
    print_table(
        &format!("{old_path} -> {new_path} (client latency µs, threshold {threshold}%)"),
        &[
            "workload", "p50 old", "p50 new", "Δp50", "p99 old", "p99 new", "Δp99", "fps old",
            "fps new", "Δfps", "verdict",
        ],
        &rows,
    );
    for gone in &cmp.only_in_old {
        println!("warning: workload {gone} present only in {old_path} (coverage dropped)");
    }
    for added in &cmp.only_in_new {
        println!("note: workload {added} present only in {new_path}");
    }
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!(
            "compare clean: {} workload(s) within {threshold}% on p99 and throughput",
            cmp.deltas.len()
        );
        Ok(())
    } else {
        Err(format!(
            "{} workload(s) regressed past {threshold}%: {}",
            regressions.len(),
            regressions
                .iter()
                .map(|d| d.workload.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }
}

/// One workload against an external server (`--connect` mode). No ground
/// truth is available for an external model, so responses are counted but
/// not class-checked.
fn connect_run(cli: &Cli) -> Result<(), String> {
    let target = cli.connect.as_ref().expect("checked by caller");
    let data = bolt_data::generate(cli.data, cli.samples, 0xF00D);
    let samples: Vec<Vec<f32>> = (0..data.len()).map(|i| data.sample(i).to_vec()).collect();
    // Fixed-duration mode: the wall clock bounds the run; an explicit
    // --requests still caps it, otherwise the schedule is open-ended.
    let requests = if cli.requests > 0 {
        cli.requests
    } else if cli.duration_secs > 0.0 {
        0
    } else {
        2000
    };
    let mut cfg = OpenLoopConfig::new(
        cli.workload.clone(),
        cli.threads,
        if cli.rate > 0.0 { cli.rate } else { 4000.0 },
        requests,
    );
    cfg.batch_size = cli.batch;
    cfg.models = cli.models.clone();
    cfg.error_every = cli.error_every;
    cfg.duration = (cli.duration_secs > 0.0).then(|| Duration::from_secs_f64(cli.duration_secs));
    cfg.reconnect_every = cli.reconnect_every;
    cfg.hostile_every = cli.hostile_every;
    let report = bolt_bench::loadgen::run_open_loop(target, &samples, None, &cfg)
        .map_err(|e| format!("connect {target:?}: {e}"))?;
    let snapshot = BenchSnapshot::from_report(
        &report,
        &git_rev(),
        // Client-side kernel resolution; boltd logs its own at startup
        // and run_loadgen.sh runs both in one environment.
        &bolt_core::Kernel::selected().to_string(),
        data.n_features(),
        0,
    );
    let path = snapshot
        .write_to(&cli.out)
        .map_err(|e| format!("write snapshot: {e}"))?;
    print_reports(&[snapshot]);
    println!("wrote {}", path.display());
    if report.protocol_errors > 0 {
        return Err(format!(
            "{} protocol error(s) during the run",
            report.protocol_errors
        ));
    }
    Ok(())
}

/// The self-hosted suite: one registry, both transports, every mix.
fn suite(cli: &Cli) -> Result<(), String> {
    let (requests, rate) = if cli.quick {
        (1500u64, 6000.0)
    } else {
        (8000u64, 8000.0)
    };
    let requests = if cli.requests > 0 {
        cli.requests
    } else {
        requests
    };
    let rate = if cli.rate > 0.0 { cli.rate } else { rate };

    println!("training LSTW-like forest for the self-hosted servers...");
    let trained = train_workload(Workload::LstwLike, 16, 6, 1200, 512);
    let bolt = Arc::new(
        BoltForest::compile(
            &trained.forest,
            &BoltConfig::default().with_cluster_threshold(4),
        )
        .map_err(|e| format!("bolt compile: {e}"))?,
    );
    let scikit = Arc::new(ScikitLikeForest::from_forest(&trained.forest));
    let samples: Vec<Vec<f32>> = (0..trained.test.len())
        .map(|i| trained.test.sample(i).to_vec())
        .collect();
    // Ground truth for bit-identical verification of every response.
    let expected: Vec<u32> = (0..trained.test.len())
        .map(|i| trained.forest.predict(trained.test.sample(i)))
        .collect();

    // One registry behind both transports, as boltd deploys it.
    let registry = ModelRegistry::new();
    registry
        .register("bolt", Arc::new(BoltEngine::new(Arc::clone(&bolt))))
        .map_err(|e| format!("register bolt: {e}"))?;
    registry
        .register("scikit", Arc::clone(&scikit) as Arc<_>)
        .map_err(|e| format!("register scikit: {e}"))?;
    registry
        .register("swap", Arc::new(BoltEngine::new(Arc::clone(&bolt))))
        .map_err(|e| format!("register swap: {e}"))?;
    registry
        .set_default("bolt")
        .map_err(|e| format!("set default: {e}"))?;
    let uds_path = std::env::temp_dir().join(format!("bolt-bench-{}.sock", std::process::id()));
    let uds = ServerBuilder::with_registry(registry.clone())
        .bind_uds(&uds_path)
        .map_err(|e| format!("bind uds: {e}"))?;
    let tcp = ServerBuilder::with_registry(registry.clone())
        .bind_tcp("127.0.0.1:0")
        .map_err(|e| format!("bind tcp: {e}"))?;
    let uds_target = Target::Uds(uds_path.clone());
    let tcp_target = Target::Tcp(tcp.local_addr());

    // Model-churn fleet: 16 copies of the compiled artifact served from
    // a model directory through a resident-bytes budget that admits only
    // 4 at once, so round-robin routing pays an evict + re-map on nearly
    // every request. Identical trees in every artifact keep the
    // bit-identical check meaningful no matter which model a frame
    // lands on.
    const CHURN_FLEET: usize = 16;
    let churn_dir = std::env::temp_dir().join(format!("bolt-bench-models-{}", std::process::id()));
    std::fs::create_dir_all(&churn_dir).map_err(|e| format!("churn model dir: {e}"))?;
    let churn_artifact = bolt_artifact::ArtifactWriter::serialize_forest_versioned(&bolt, 1);
    let churn_names: Vec<String> = (0..CHURN_FLEET).map(|i| format!("churn{i:02}")).collect();
    for name in &churn_names {
        std::fs::write(churn_dir.join(format!("{name}@1.blt")), &churn_artifact)
            .map_err(|e| format!("write churn artifact: {e}"))?;
    }
    let churn_budget = churn_artifact.len() as u64 * 9 / 2;
    let churn_sock =
        std::env::temp_dir().join(format!("bolt-bench-churn-{}.sock", std::process::id()));
    let churn_server = ServerBuilder::new()
        .model_dir(&churn_dir)
        .resident_bytes(churn_budget)
        .bind_uds(&churn_sock)
        .map_err(|e| format!("bind churn server: {e}"))?;
    let churn_target = Target::Uds(churn_sock.clone());
    let churn_refs: Vec<&str> = churn_names.iter().map(String::as_str).collect();
    let kernel = bolt_core::Kernel::selected().to_string();
    let rev = git_rev();
    println!(
        "servers up: uds {} + tcp {} (kernel {kernel}), {requests} frames per workload at \
         {rate} fps",
        uds_path.display(),
        tcp.local_addr()
    );

    let mk = |name: &str, batch: usize, models: &[&str], error_every: u64| {
        let mut cfg = OpenLoopConfig::new(name, cli.threads, rate, requests);
        cfg.batch_size = batch;
        cfg.models = models.iter().map(|&m| m.to_owned()).collect();
        cfg.error_every = error_every;
        cfg
    };
    // Reconnect storm: every worker churns its connection after each 4
    // frames, keeping accept/close hot for the whole run.
    let mut reconnect = mk("uds_reconnect", 1, &[], 0);
    reconnect.reconnect_every = 4;
    // Hostile mix: every 4th arrival also injects a fuzz-shaped frame on
    // a raw side connection. The well-formed traffic alongside must stay
    // bit-identical; the garbage must be answered with structured errors
    // or a dropped connection, never a stall.
    let mut hostile = mk("uds_hostile", 1, &[], 0);
    hostile.hostile_every = 4;
    // The evict + re-map path sustains roughly 1k fps; offer well under
    // that so the snapshot records reload latency, not queueing backlog.
    let mut model_churn = mk("model_churn", 1, &churn_refs, 0);
    model_churn.rate = rate.min(600.0);
    model_churn.requests = requests.min(3000);
    // (config, target, swap churn interval)
    let workloads: Vec<(OpenLoopConfig, &Target, u64)> = vec![
        (mk("uds_single", 1, &[], 0), &uds_target, 0),
        (mk("uds_batch", 16, &[], 0), &uds_target, 0),
        (mk("tcp_single", 1, &[], 0), &tcp_target, 0),
        (mk("tcp_batch", 16, &[], 0), &tcp_target, 0),
        (mk("uds_fanout", 1, &["bolt", "scikit"], 0), &uds_target, 0),
        (mk("uds_errmix", 1, &[], 8), &uds_target, 0),
        (mk("uds_swap", 1, &["swap"], 0), &uds_target, 25),
        (reconnect, &uds_target, 0),
        (hostile, &uds_target, 0),
        (model_churn, &churn_target, 0),
    ];

    let mut snapshots = Vec::new();
    let mut failures = Vec::new();
    for (cfg, target, swap_ms) in workloads {
        println!("running {} ({})...", cfg.name, target.transport());
        let churn = (swap_ms > 0).then(|| spawn_swap_churn(&registry, &bolt, &scikit, swap_ms));
        let report = bolt_bench::loadgen::run_open_loop(target, &samples, Some(&expected), &cfg)
            .map_err(|e| format!("{}: {e}", cfg.name))?;
        if let Some((stop, handle)) = churn {
            stop.store(true, Ordering::Release);
            handle.join().expect("swap churn thread");
        }
        if report.protocol_errors > 0 || report.wrong_class > 0 {
            failures.push(format!(
                "{}: {} protocol error(s), {} wrong class(es)",
                cfg.name, report.protocol_errors, report.wrong_class
            ));
        }
        // The hostile mix must actually have injected garbage and seen
        // every frame handled the acceptable way (misbehaviour already
        // landed in protocol_errors above; this catches a silent no-op).
        if cfg.hostile_every > 0 && report.hostile_sent == 0 {
            failures.push(format!("{}: hostile mix injected nothing", cfg.name));
        }
        let snapshot =
            BenchSnapshot::from_report(&report, &rev, &kernel, trained.test.n_features(), swap_ms);
        let path = snapshot
            .write_to(&cli.out)
            .map_err(|e| format!("write snapshot: {e}"))?;
        println!("  wrote {}", path.display());
        snapshots.push(snapshot);
    }

    // The suite drove every model; the registry's books must balance.
    let total = registry.total_stats().requests;
    let per_model: u64 = registry.list().iter().map(|model| model.requests).sum();
    if total != per_model {
        failures.push(format!(
            "stats mismatch: total {total} != per-model sum {per_model}"
        ));
    }

    // The churn fleet must have ended inside its budget with evictions
    // actually exercised (resident bytes bounded, not the whole fleet).
    let churn_resident = churn_server.store().resident_bytes();
    if churn_resident > churn_budget {
        failures.push(format!(
            "model_churn: {churn_resident} resident bytes over the {churn_budget} budget"
        ));
    }
    uds.shutdown();
    tcp.shutdown();
    churn_server.shutdown();
    std::fs::remove_dir_all(&churn_dir).ok();
    print_reports(&snapshots);
    if failures.is_empty() {
        println!("suite clean: every response bit-identical, zero protocol errors");
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Re-registers the `swap` model on an interval, alternating between the
/// Bolt and scikit engines (identical predictions, different engines), so
/// the swap workload exercises resolution-under-churn.
fn spawn_swap_churn(
    registry: &ModelRegistry,
    bolt: &Arc<BoltForest>,
    scikit: &Arc<ScikitLikeForest>,
    interval_ms: u64,
) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let registry = registry.clone();
    let bolt = Arc::clone(bolt);
    let scikit = Arc::clone(scikit);
    let handle = std::thread::spawn(move || {
        let mut flip = false;
        while !thread_stop.load(Ordering::Acquire) {
            if flip {
                registry
                    .swap("swap", Arc::clone(&scikit) as Arc<_>)
                    .expect("hot-swap");
            } else {
                registry
                    .swap("swap", Arc::new(BoltEngine::new(Arc::clone(&bolt))))
                    .expect("hot-swap");
            }
            flip = !flip;
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
    });
    (stop, handle)
}

/// Human-readable summary table over the written snapshots.
fn print_reports(snapshots: &[BenchSnapshot]) {
    let us = |ns: u64| format!("{:.1}", ns as f64 / 1000.0);
    let rows: Vec<Vec<String>> = snapshots
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                s.transport.clone(),
                format!("{}", s.batch_size),
                format!("{:.0}", s.throughput_fps),
                us(s.client_latency.p50_ns),
                us(s.client_latency.p90_ns),
                us(s.client_latency.p99_ns),
                us(s.client_latency.p999_ns),
                us(s.client_latency.max_ns),
                us(s.service_latency.p99_ns),
                format!("{}", s.protocol_errors),
            ]
        })
        .collect();
    print_table(
        "open-loop serving latency (client-observed, µs)",
        &[
            "workload",
            "transport",
            "batch",
            "fps",
            "p50",
            "p90",
            "p99",
            "p999",
            "max",
            "svc p99",
            "errors",
        ],
        &rows,
    );
}
