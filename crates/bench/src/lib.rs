//! Shared harness for reproducing the Bolt paper's figures.
//!
//! Each `fig*` binary in this crate regenerates one figure of the paper's
//! evaluation (§6); this library holds the common machinery: workload
//! training, platform construction, single-sample service timing, and
//! plain-text report tables. See DESIGN.md's per-experiment index for the
//! figure ↔ binary map and EXPERIMENTS.md for recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod hist;
pub mod loadgen;

use bolt_baselines::{ForestPackingForest, InferenceEngine, RangerLikeForest, ScikitLikeForest};
use bolt_core::{BoltConfig, BoltForest};
use bolt_data::Workload;
use bolt_forest::{Dataset, ForestConfig, RandomForest};
use std::sync::Arc;
use std::time::Instant;

/// Default training-set size for harness workloads.
pub const DEFAULT_TRAIN: usize = 2000;
/// Default test-set (service request) size. The paper uses MNIST's 10 000
/// test samples; this default keeps full-figure runs in CI budgets and can
/// be raised with [`test_samples`].
pub const DEFAULT_TEST: usize = 2000;

/// Returns the number of service requests to time, honouring the
/// `BOLT_BENCH_SAMPLES` environment variable.
#[must_use]
pub fn test_samples() -> usize {
    std::env::var("BOLT_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_TEST)
}

/// A trained workload: train/test splits plus the scikit-equivalent forest.
#[derive(Clone, Debug)]
pub struct TrainedWorkload {
    /// Which dataset family.
    pub workload: Workload,
    /// Training data.
    pub train: Dataset,
    /// Held-out service requests.
    pub test: Dataset,
    /// The trained forest all platforms re-lay.
    pub forest: RandomForest,
}

/// Trains a forest of `n_trees` trees with max height `height` on the given
/// workload (deterministic seeds).
#[must_use]
pub fn train_workload(
    workload: Workload,
    n_trees: usize,
    height: usize,
    n_train: usize,
    n_test: usize,
) -> TrainedWorkload {
    let train = bolt_data::generate(workload, n_train, 0xBEEF);
    let test = bolt_data::generate(workload, n_test, 0xF00D);
    let forest = RandomForest::train(
        &train,
        &ForestConfig::new(n_trees)
            .with_max_height(height)
            .with_seed(42),
    );
    TrainedWorkload {
        workload,
        train,
        test,
        forest,
    }
}

/// All four platforms of the paper's comparison, built from one forest.
pub struct Platforms {
    /// Bolt, compiled at the given clustering threshold.
    pub bolt: Arc<BoltForest>,
    /// Scikit-Learn-style object-graph engine.
    pub scikit: ScikitLikeForest,
    /// Ranger-style compact-array engine.
    pub ranger: RangerLikeForest,
    /// Forest-Packing-style packed-arena engine.
    pub fp: ForestPackingForest,
}

impl Platforms {
    /// Builds every platform from a trained workload. `threshold` is Bolt's
    /// clustering threshold (Phase 2 output; the figure binaries use the
    /// sweep in `fig13` to justify their choices).
    ///
    /// # Panics
    ///
    /// Panics if Bolt compilation fails (trees too deep to table-map), a
    /// regime the figure binaries avoid or report explicitly.
    #[must_use]
    pub fn build(trained: &TrainedWorkload, threshold: usize) -> Self {
        let bolt = Arc::new(
            BoltForest::compile(
                &trained.forest,
                &BoltConfig::default().with_cluster_threshold(threshold),
            )
            .expect("forest is table-mappable"),
        );
        Self {
            bolt,
            scikit: ScikitLikeForest::from_forest(&trained.forest),
            ranger: RangerLikeForest::from_forest(&trained.forest),
            fp: ForestPackingForest::from_forest(&trained.forest, &trained.train),
        }
    }

    /// Builds platforms with Bolt's setting chosen by a measured Phase-2
    /// mini-sweep: thresholds × bloom budgets are compiled, timed on up to
    /// 128 calibration samples, and the fastest wins (§4.2: "Bolt explores
    /// different parameter strategies and outputs ... the best performance
    /// given a forest and the specified hardware").
    #[must_use]
    pub fn build_tuned(trained: &TrainedWorkload) -> Self {
        let calibration: Vec<&[f32]> = (0..trained.test.len().min(128))
            .map(|i| trained.test.sample(i))
            .collect();
        let mut best: Option<(f64, Arc<BoltForest>)> = None;
        for threshold in [0usize, 1, 2, 4, 8, 16] {
            for bloom in [0usize, 10] {
                let Ok(bolt) = BoltForest::compile(
                    &trained.forest,
                    &BoltConfig::default()
                        .with_cluster_threshold(threshold)
                        .with_bloom_bits_per_key(bloom),
                ) else {
                    continue;
                };
                let mut scratch = bolt.scratch();
                let mut sink = 0u32;
                for s in &calibration {
                    sink = sink.wrapping_add(bolt.classify_with(s, &mut scratch));
                }
                let start = Instant::now();
                for _ in 0..3 {
                    for s in &calibration {
                        sink = sink.wrapping_add(bolt.classify_with(s, &mut scratch));
                    }
                }
                let ns = start.elapsed().as_nanos() as f64;
                std::hint::black_box(sink);
                if best.as_ref().is_none_or(|(b, _)| ns < *b) {
                    best = Some((ns, Arc::new(bolt)));
                }
            }
        }
        let (_, bolt) = best.expect("at least one setting compiles");
        Self {
            bolt,
            scikit: ScikitLikeForest::from_forest(&trained.forest),
            ranger: RangerLikeForest::from_forest(&trained.forest),
            fp: ForestPackingForest::from_forest(&trained.forest, &trained.train),
        }
    }

    /// `(name, engine)` pairs in the paper's figure order.
    #[must_use]
    pub fn engines(&self) -> Vec<(&'static str, Box<dyn InferenceEngine + '_>)> {
        vec![
            ("BOLT", Box::new(BoltAdapter::new(&self.bolt))),
            ("Scikit", Box::new(&self.scikit)),
            ("Ranger", Box::new(&self.ranger)),
            ("FP", Box::new(&self.fp)),
        ]
    }
}

/// Borrowing adapter so a [`BoltForest`] can be timed through the common
/// engine interface. Uses the allocation-free scratch path, guarded by a
/// mutex to satisfy the engine trait's `Sync` bound (uncontended in the
/// single-threaded service loop).
pub struct BoltAdapter<'a> {
    bolt: &'a BoltForest,
    scratch: std::sync::Mutex<bolt_core::BoltScratch>,
}

impl<'a> BoltAdapter<'a> {
    /// Wraps a compiled forest with its own scratch buffer.
    #[must_use]
    pub fn new(bolt: &'a BoltForest) -> Self {
        Self {
            bolt,
            scratch: std::sync::Mutex::new(bolt.scratch()),
        }
    }
}

impl InferenceEngine for BoltAdapter<'_> {
    fn name(&self) -> &'static str {
        "BOLT"
    }

    fn classify(&self, sample: &[f32]) -> u32 {
        let mut scratch = self.scratch.lock().expect("scratch mutex");
        self.bolt.classify_with(sample, &mut scratch)
    }
}

/// Times single-sample sequential service execution (no batching, as in
/// §6). Runs three measurement passes after a warm-up and reports the best
/// mean nanoseconds per sample, damping scheduler noise on shared hosts.
#[must_use]
pub fn time_engine_ns(engine: &dyn InferenceEngine, test: &Dataset) -> f64 {
    let mut sink = 0u32;
    for (sample, _) in test.iter().take(64) {
        sink = sink.wrapping_add(engine.classify(sample));
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for (sample, _) in test.iter() {
            sink = sink.wrapping_add(engine.classify(sample));
        }
        best = best.min(start.elapsed().as_nanos() as f64 / test.len() as f64);
    }
    std::hint::black_box(sink);
    best
}

/// Times classification with *receipt-hot* inputs: the paper's service
/// measures "from the time input samples are received", at which point the
/// sample bytes were just written by the front-end and sit in cache. Each
/// sample row is touched (untimed) before the timed classify; the timer's
/// own calibrated overhead is subtracted.
#[must_use]
pub fn time_engine_hot_ns(engine: &dyn InferenceEngine, test: &Dataset) -> f64 {
    // Calibrate the Instant::now()/elapsed() pair.
    let mut cal = 0u128;
    for _ in 0..4096 {
        let t = Instant::now();
        cal += t.elapsed().as_nanos();
    }
    let overhead = cal as f64 / 4096.0;

    let mut sink = 0u32;
    for (sample, _) in test.iter().take(64) {
        sink = sink.wrapping_add(engine.classify(sample));
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut total = 0u128;
        for (sample, _) in test.iter() {
            // Bring the input row into cache, as a fresh socket read would.
            let warm: f32 = sample.iter().sum();
            std::hint::black_box(warm);
            let start = Instant::now();
            sink = sink.wrapping_add(engine.classify(sample));
            total += start.elapsed().as_nanos();
        }
        best = best.min((total as f64 / test.len() as f64 - overhead).max(0.1));
    }
    std::hint::black_box(sink);
    best
}

/// Formats nanoseconds as the paper's microsecond axis.
#[must_use]
pub fn fmt_us(ns: f64) -> String {
    format!("{:.3}", ns / 1000.0)
}

/// Prints a fixed-width text table (first column left-aligned).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[0]));
            } else {
                out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
            }
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| (*s).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_agree_on_predictions() {
        let trained = train_workload(Workload::MnistLike, 5, 3, 300, 100);
        let platforms = Platforms::build(&trained, 4);
        for (sample, _) in trained.test.iter().take(40) {
            let expected = trained.forest.predict(sample);
            for (name, engine) in platforms.engines() {
                assert_eq!(engine.classify(sample), expected, "platform {name}");
            }
        }
    }

    #[test]
    fn timing_returns_positive_latency() {
        let trained = train_workload(Workload::LstwLike, 3, 3, 300, 50);
        let platforms = Platforms::build(&trained, 4);
        let ns = time_engine_ns(&BoltAdapter::new(&platforms.bolt), &trained.test);
        assert!(ns > 0.0);
        assert_eq!(fmt_us(1500.0), "1.500");
    }

    #[test]
    fn sample_count_env_override() {
        // Default path (no env var assumed in tests).
        assert!(test_samples() > 0);
    }
}
